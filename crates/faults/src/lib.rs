//! `cup-faults`: a deterministic, scriptable fault-injection plane.
//!
//! The CUP paper's economic argument — propagate updates only while
//! queries justify them — has to survive an unreliable network, yet a
//! loss-free simulation never exercises the recovery half of the
//! protocol. This crate is the one fault model shared by *both* runtimes:
//! the discrete-event harness in `cup-simnet` and the sharded worker-pool
//! runtime in `cup-runtime` consult the same [`FaultState`] with the same
//! decision function, so a scripted [`FaultPlan`] produces byte-identical
//! outcomes in either world (and across reruns and worker counts).
//!
//! # The fault model
//!
//! A [`FaultPlan`] is an ordered script of timed [`FaultEvent`]s:
//!
//! * **link loss** — every peer message is dropped with probability
//!   `rate`, decided *at send time* (before a mailbox enqueue or event
//!   schedule), which keeps the live runtime's `quiesce()` barrier exact;
//! * **latency spikes** — a multiplicative factor on the per-hop latency
//!   model (a DES-side effect; the live runtime has no modeled latency);
//! * **node crash / restart** — a crash wipes the node's protocol state
//!   (cold cache, empty directory, lost interest sets) and drops all
//!   traffic to it; a restart brings the cold node back;
//! * **overlay partition / heal** — nodes are split into k groups by a
//!   seeded hash, and every message crossing a group boundary is dropped
//!   until the heal event;
//! * **behavior faults** — Byzantine peers that stay up and routable but
//!   misbehave, via a per-node override table: `stale-serve` swallows
//!   inbound deletions and audit repairs (the node keeps answering from
//!   entries the rest of the network retired), `drop-updates` suppresses
//!   outbound maintenance updates while still forwarding queries, and
//!   `lie-refresh` rewrites forwarded deletions into fresh-looking
//!   refreshes. The defense — a LOCKSS-style rate-limited sampled cache
//!   audit — lives in `cup-core` (`AuditConfig`); this crate only
//!   supplies the adversary.
//!
//! # Determinism
//!
//! Loss decisions use a *counter-mode* hash, not a shared RNG stream:
//! message `n` on link `(from, to)` is dropped iff
//! `hash(seed, epoch, from, to, n)` lands under the loss rate. Per-link
//! sequence numbers are advanced by the sender's thread only (drops are
//! decided before enqueue), and every protocol cascade touches a given
//! link in a deterministic order, so the DES and an M-worker live run
//! make the same decisions in the same places. The `epoch` term (bumped
//! on every applied fault action) decorrelates successive loss phases.
//!
//! # Recovery
//!
//! The plane injects faults; *recovery* is the protocol's job, and the
//! pieces are already in CUP once faults make them reachable:
//!
//! * a lost first-time response leaves the Pending-First-Update flag set;
//!   `NodeConfig::pfu_timeout` retries the query on the next miss;
//! * a restarted node comes back cold and **re-fetches interest-bearing
//!   state query by query** — its first miss per key re-registers
//!   interest along the path, exactly like a fresh join;
//! * parents holding **stale interest bits** for a crashed child keep
//!   pushing until the restarted (cold) node's cut-off policy answers
//!   with a Clear-Bit — pruning by clear-bit instead of assuming the
//!   original delivery; lost Clear-Bits re-send on the next unwanted
//!   update for the same reason;
//! * a restarted *authority* rebuilds its directory from replica
//!   refreshes (`LocalDirectory` treats a refresh of an unknown replica
//!   as a birth);
//! * the justification accounting only ever counts *delivered* updates —
//!   a dropped propagation opens no window, so loss can never inflate the
//!   justified ratio.

pub mod plan;
pub mod state;

pub use plan::{
    Behavior, FaultAction, FaultEvent, FaultKind, FaultPlan, FaultSpec, SpecParam, SpecWindow,
};
pub use state::{DropVerdict, FaultCounters, FaultState};
