//! Node arrival/departure schedules (§2.9).
//!
//! The paper's experiments run on a static overlay, but CUP "must be able
//! to handle both node arrivals and departures seamlessly"; this schedule
//! drives the churn integration tests and the churn example.

use cup_des::{DetRng, SimDuration, SimTime};

/// One churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new node joins the overlay.
    Join {
        /// When it joins.
        at: SimTime,
    },
    /// A randomly selected live node departs.
    Leave {
        /// When it departs.
        at: SimTime,
        /// Graceful departures hand their index entries to the takeover
        /// node; ungraceful ones simply vanish.
        graceful: bool,
    },
}

impl ChurnEvent {
    /// When the event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            ChurnEvent::Join { at } => at,
            ChurnEvent::Leave { at, .. } => at,
        }
    }
}

/// A pre-generated churn schedule.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// No churn.
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Alternating joins and leaves at a fixed period over `[start, end)`,
    /// with each leave graceful with probability `graceful_p`.
    pub fn alternating(
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        graceful_p: f64,
        rng: &mut DetRng,
    ) -> Self {
        let mut events = Vec::new();
        let mut t = start + period;
        let mut join = true;
        while t < end {
            events.push(if join {
                ChurnEvent::Join { at: t }
            } else {
                ChurnEvent::Leave {
                    at: t,
                    graceful: rng.next_bool(graceful_p),
                }
            });
            join = !join;
            t += period;
        }
        ChurnSchedule { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no churn is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(ChurnSchedule::none().is_empty());
    }

    #[test]
    fn alternating_produces_joins_and_leaves_in_order() {
        let mut rng = DetRng::seed_from(1);
        let s = ChurnSchedule::alternating(
            SimTime::ZERO,
            SimTime::from_secs(100),
            SimDuration::from_secs(10),
            0.5,
            &mut rng,
        );
        assert_eq!(s.len(), 9);
        let mut prev = SimTime::ZERO;
        let mut joins = 0;
        for e in s.events() {
            assert!(e.at() > prev);
            prev = e.at();
            if matches!(e, ChurnEvent::Join { .. }) {
                joins += 1;
            }
        }
        assert_eq!(joins, 5, "alternating starts with a join");
    }

    #[test]
    fn graceful_probability_extremes() {
        let mut rng = DetRng::seed_from(2);
        let all_graceful = ChurnSchedule::alternating(
            SimTime::ZERO,
            SimTime::from_secs(200),
            SimDuration::from_secs(10),
            1.0,
            &mut rng,
        );
        for e in all_graceful.events() {
            if let ChurnEvent::Leave { graceful, .. } = e {
                assert!(graceful);
            }
        }
    }
}
