//! Replica lifecycles.
//!
//! Replicas of content send *birth* messages to the key's authority node,
//! periodically *refresh* their index entries ("for all experiments,
//! refreshes of index entries occur at expiration", §3.2), and may send
//! explicit *deletion* messages when they stop serving content (§2.1).
//!
//! The paper's experiments use an entry lifetime of 300 s and vary the
//! number of replicas per key (Table 3). Births are staggered across the
//! first lifetime so refreshes for different replicas of a key interleave,
//! which is exactly the situation that breaks the naive cut-off of §3.6.

use cup_des::{DetRng, KeyId, ReplicaId, SimDuration, SimTime};

use crate::scenario::Scenario;

/// One replica lifecycle event to feed to the authority node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaAction {
    /// When the replica message reaches the authority.
    pub at: SimTime,
    /// The key served.
    pub key: KeyId,
    /// The replica.
    pub replica: ReplicaId,
    /// What happens.
    pub kind: ReplicaActionKind,
}

/// The kind of lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaActionKind {
    /// Replica announces itself (index entry created).
    Birth,
    /// Replica renews its entry for another lifetime.
    Refresh,
    /// Replica stops serving (index entry deleted).
    Death,
}

/// The replica population plan for one scenario.
#[derive(Debug, Clone)]
pub struct ReplicaPlan {
    /// Entry lifetime (refresh period).
    pub lifetime: SimDuration,
    /// Initial events: one birth per (key, replica).
    births: Vec<ReplicaAction>,
    /// Optional death time per (key index, replica index); `SimTime::MAX`
    /// means the replica lives for the whole run.
    deaths: Vec<Vec<SimTime>>,
}

impl ReplicaPlan {
    /// Builds the plan for a scenario: `scenario.replicas_per_key`
    /// replicas per key, born staggered across the first lifetime, living
    /// until the end (or until an exponential death when
    /// `scenario.replica_mean_life` is set).
    pub fn build(scenario: &Scenario, rng: &mut DetRng) -> Self {
        let lifetime = scenario.entry_lifetime;
        let mut births = Vec::new();
        let mut deaths = Vec::new();
        let mut next_replica = 0u32;
        for k in 0..scenario.keys {
            let mut key_deaths = Vec::new();
            for _ in 0..scenario.replicas_per_key {
                let replica = ReplicaId(next_replica);
                next_replica += 1;
                let offset = rng.next_below(lifetime.as_micros().max(1));
                births.push(ReplicaAction {
                    at: SimTime::from_micros(offset),
                    key: KeyId(k),
                    replica,
                    kind: ReplicaActionKind::Birth,
                });
                let death = match scenario.replica_mean_life {
                    Some(mean) => {
                        let life = rng.next_exp(1.0 / mean.as_secs_f64());
                        SimTime::from_micros(offset) + SimDuration::from_secs_f64(life)
                    }
                    None => SimTime::MAX,
                };
                key_deaths.push(death);
            }
            deaths.push(key_deaths);
        }
        ReplicaPlan {
            lifetime,
            births,
            deaths,
        }
    }

    /// The initial birth events, ordered by time.
    pub fn births(&self) -> Vec<ReplicaAction> {
        let mut b = self.births.clone();
        b.sort_by_key(|a| a.at);
        b
    }

    /// Total number of replicas across all keys.
    pub fn replica_count(&self) -> usize {
        self.births.len()
    }

    /// Given a birth or refresh that just happened at `now`, returns the
    /// replica's next lifecycle event: a refresh one lifetime later
    /// ("refreshes occur at expiration") or its death, whichever comes
    /// first. Returns `None` after the death.
    pub fn next_event(&self, action: &ReplicaAction, now: SimTime) -> Option<ReplicaAction> {
        if action.kind == ReplicaActionKind::Death {
            return None;
        }
        let death = self.death_of(action);
        let refresh_at = now + self.lifetime;
        if death <= refresh_at {
            Some(ReplicaAction {
                at: death,
                key: action.key,
                replica: action.replica,
                kind: ReplicaActionKind::Death,
            })
        } else {
            Some(ReplicaAction {
                at: refresh_at,
                key: action.key,
                replica: action.replica,
                kind: ReplicaActionKind::Refresh,
            })
        }
    }

    /// The scheduled death instant of the replica behind `action`.
    fn death_of(&self, action: &ReplicaAction) -> SimTime {
        // Replica ids are allocated densely per key in build order.
        let key_idx = action.key.index();
        let per_key = self.deaths[key_idx].len();
        let base: usize = self.deaths[..key_idx].iter().map(Vec::len).sum();
        let replica_idx = action.replica.index() - base;
        debug_assert!(replica_idx < per_key);
        self.deaths[key_idx][replica_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn scenario(replicas: u32) -> Scenario {
        Scenario {
            replicas_per_key: replicas,
            keys: 4,
            ..Scenario::default()
        }
    }

    #[test]
    fn one_birth_per_replica_staggered_within_lifetime() {
        let mut rng = DetRng::seed_from(1);
        let plan = ReplicaPlan::build(&scenario(3), &mut rng);
        let births = plan.births();
        assert_eq!(births.len(), 12);
        assert_eq!(plan.replica_count(), 12);
        for b in &births {
            assert!(b.at < SimTime::ZERO + plan.lifetime);
            assert_eq!(b.kind, ReplicaActionKind::Birth);
        }
        // Replica ids are unique.
        let mut ids: Vec<u32> = births.iter().map(|b| b.replica.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn refreshes_recur_at_expiration() {
        let mut rng = DetRng::seed_from(2);
        let plan = ReplicaPlan::build(&scenario(1), &mut rng);
        let birth = plan.births()[0];
        let r1 = plan.next_event(&birth, birth.at).unwrap();
        assert_eq!(r1.kind, ReplicaActionKind::Refresh);
        assert_eq!(r1.at, birth.at + plan.lifetime);
        let r2 = plan.next_event(&r1, r1.at).unwrap();
        assert_eq!(r2.at, r1.at + plan.lifetime);
        assert_eq!(r2.replica, birth.replica);
    }

    #[test]
    fn death_preempts_refresh_and_ends_lifecycle() {
        let mut s = scenario(1);
        s.replica_mean_life = Some(SimDuration::from_secs(100));
        let mut rng = DetRng::seed_from(3);
        let plan = ReplicaPlan::build(&s, &mut rng);
        // Follow each replica until death; it must terminate.
        for birth in plan.births() {
            let mut ev = birth;
            let mut steps = 0;
            while let Some(next) = plan.next_event(&ev, ev.at) {
                assert!(next.at >= ev.at);
                ev = next;
                steps += 1;
                assert!(steps < 10_000, "lifecycle did not terminate");
            }
            assert_eq!(ev.kind, ReplicaActionKind::Death);
        }
    }

    #[test]
    fn immortal_replicas_never_die() {
        let mut rng = DetRng::seed_from(4);
        let plan = ReplicaPlan::build(&scenario(2), &mut rng);
        let birth = plan.births()[0];
        let mut ev = birth;
        for _ in 0..100 {
            ev = plan.next_event(&ev, ev.at).unwrap();
            assert_eq!(ev.kind, ReplicaActionKind::Refresh);
        }
    }
}
