//! Structured peer-to-peer overlays with deterministic routing.
//!
//! The CUP paper assumes that "anytime a node issues a query for key K, the
//! query will be routed along a well-defined structured path with a bounded
//! number of hops from the querying node to the authority node for K"
//! (§2.2), and evaluates on a two-dimensional "bare-bones"
//! content-addressable network (CAN). This crate provides:
//!
//! * the [`Overlay`] trait — deterministic next-hop routing, authority
//!   lookup, and neighbor sets, plus join/leave churn operations;
//! * [`can::CanOverlay`] — a two-dimensional CAN over a toroidal coordinate
//!   space with zone splits on join and zone takeover on departure;
//! * [`chord::ChordOverlay`] — a Chord identifier ring with finger tables,
//!   demonstrating that CUP is overlay-agnostic (the paper names Chord,
//!   Pastry, and Tapestry as equally valid substrates).
//!
//! # Examples
//!
//! ```
//! use cup_des::{DetRng, KeyId};
//! use cup_overlay::{can::CanOverlay, Overlay};
//!
//! let mut rng = DetRng::seed_from(1);
//! let overlay = CanOverlay::build(64, &mut rng).unwrap();
//! let key = KeyId(7);
//! let authority = overlay.authority(key);
//! // Routing from the authority terminates immediately.
//! assert!(overlay.next_hop(authority, key).unwrap().is_none());
//! ```

pub mod any;
pub mod can;
pub mod chord;
pub mod churn;
pub mod hashing;
pub mod point;
pub mod traits;
pub mod zone;

pub use any::{AnyOverlay, OverlayKind};
pub use churn::{ChurnReport, NeighborChange};
pub use traits::{Overlay, OverlayError};
