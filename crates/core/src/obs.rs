//! Deterministic observability: integer histograms and event tracing.
//!
//! Every latency-flavored metric in the workspace used to be a sum, so
//! million-event runs could only report averages. This module provides
//! the two measurement substrates ROADMAP item 5 asks for, built so the
//! DES and the live runtime stay byte-identical:
//!
//! * [`Hist`] — an HDR-style **log-linear integer histogram**: u64
//!   counts over power-of-two buckets with linear sub-buckets, an exact
//!   [`Hist::merge`], an integer [`Hist::quantile`], and a compact
//!   serialized form. There is **no floating point anywhere in the
//!   recording or read path**, so two runs that record the same multiset
//!   of values hold byte-identical state — whatever order the values
//!   arrived in. That order-independence is what lets M live workers
//!   record concurrently and still match the serial DES exactly.
//! * [`TraceBuf`] — a ring-buffered **structured event trace**
//!   ([`TraceEvent`]`{ t, node, kind, key, detail }`, virtual-clock
//!   timestamped) with canonical ordering, JSONL export, and
//!   [`trace_diff`], which pinpoints the first diverging event between
//!   two runs instead of a whole-struct mismatch. Tracing is off by
//!   default and costs one branch (sim) or one atomic load (live) when
//!   disabled.

use cup_des::{KeyId, NodeId, SimTime};

/// Linear sub-bucket bits: each power-of-two range splits into
/// `2^SUB_BITS` equal sub-buckets, bounding the relative quantization
/// error at `1/2^SUB_BITS` (25%).
const SUB_BITS: u32 = 2;

/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;

/// Total buckets. Values `0..4` are exact; the top bucket saturates at
/// ~1.5e10 (≈ 4.2 hours in µs) — far beyond any latency, staleness age,
/// or batch size the workloads record, while keeping the struct small
/// enough to live inside every per-node [`crate::stats::NodeStats`].
pub const HIST_BUCKETS: usize = 128;

/// An integer log-linear histogram (HDR-style, fixed footprint).
///
/// `Copy + Eq` on purpose: it embeds in [`crate::stats::NodeStats`] and
/// the simnet `NetMetrics`, which are copied and compared byte-exactly
/// by the conformance suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: [0; HIST_BUCKETS],
            total: 0,
        }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Bucket index of `v`: exact below `SUB`, then `SUB` linear
    /// sub-buckets per power-of-two range, clamped into the top bucket.
    fn index_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let h = 63 - v.leading_zeros();
        let sub = ((v >> (h - SUB_BITS)) as usize) & (SUB - 1);
        let idx = (h - SUB_BITS + 1) as usize * SUB + sub;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Lower bound of bucket `idx` (the value [`Hist::quantile`]
    /// reports).
    fn floor_of(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let g = (idx / SUB) as u32;
        let s = (idx % SUB) as u64;
        let h = g + SUB_BITS - 1;
        (1u64 << h) + (s << (h - SUB_BITS))
    }

    /// Records one value. Integer-only; saturates into the top bucket.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.total += 1;
    }

    /// Exact merge: bucket-wise addition. Associative and commutative,
    /// so per-worker histograms folded in any order equal the serial
    /// recording byte-for-byte.
    pub fn merge(&mut self, other: &Hist) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
        self.total += other.total;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `permille/1000` quantile, as the lower bound of the bucket
    /// where the cumulative count crosses the rank. `quantile(500)` is
    /// the median, `quantile(999)` is p99.9. Integer arithmetic only;
    /// returns 0 for an empty histogram. Monotone in `permille`.
    pub fn quantile(&self, permille: u32) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = u128::from(permille.min(1000));
        // Rank of the quantile element, 1-based, rounded up.
        let rank = ((u128::from(self.total) * p).div_ceil(1000)).max(1);
        let mut cum: u128 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += u128::from(c);
            if cum >= rank {
                return Self::floor_of(i);
            }
        }
        Self::floor_of(HIST_BUCKETS - 1)
    }

    /// Compact serialized form: a little-endian `u16` count of occupied
    /// buckets, then `(u8 index, u64 count)` pairs in index order. An
    /// empty histogram is two zero bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let occupied = self.counts.iter().filter(|&&c| c != 0).count() as u16;
        let mut out = Vec::with_capacity(2 + 9 * occupied as usize);
        out.extend_from_slice(&occupied.to_le_bytes());
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                out.push(i as u8);
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Parses [`Hist::to_bytes`] output; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Hist> {
        let n = u16::from_le_bytes([*bytes.first()?, *bytes.get(1)?]) as usize;
        if bytes.len() != 2 + 9 * n {
            return None;
        }
        let mut h = Hist::new();
        for pair in bytes[2..].chunks_exact(9) {
            let idx = pair[0] as usize;
            if idx >= HIST_BUCKETS || h.counts[idx] != 0 {
                return None;
            }
            let c = u64::from_le_bytes(pair[1..9].try_into().ok()?);
            h.counts[idx] = c;
            h.total = h.total.checked_add(c)?;
        }
        Some(h)
    }
}

/// What a [`TraceEvent`] records. Variants order the canonical sort, so
/// two runs that handled the same multiset of events export identical
/// JSONL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// A client posted a query at a node (`detail` = client id).
    ClientQuery,
    /// A peer query message was handled (`detail` = sending node).
    Query,
    /// A first-time update was handled (`detail` = sending node).
    UpdateFirstTime,
    /// A refresh update was handled (`detail` = sending node).
    UpdateRefresh,
    /// A delete update was handled (`detail` = sending node).
    UpdateDelete,
    /// An append update was handled (`detail` = sending node).
    UpdateAppend,
    /// A clear-bit message was handled (`detail` = sending node).
    ClearBit,
    /// An audit probe was handled (`detail` = sending node).
    AuditProbe,
    /// An audit reply was handled (`detail` = sending node).
    AuditReply,
    /// A replica birth reached the authority (`detail` = replica id).
    ReplicaBirth,
    /// A replica refresh reached the authority (`detail` = replica id).
    ReplicaRefresh,
    /// A replica deletion reached the authority (`detail` = replica id).
    ReplicaDeletion,
    /// A client was answered (`detail` = number of entries returned).
    Respond,
}

impl TraceKind {
    /// Stable lower-case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::ClientQuery => "client-query",
            TraceKind::Query => "query",
            TraceKind::UpdateFirstTime => "update-first-time",
            TraceKind::UpdateRefresh => "update-refresh",
            TraceKind::UpdateDelete => "update-delete",
            TraceKind::UpdateAppend => "update-append",
            TraceKind::ClearBit => "clear-bit",
            TraceKind::AuditProbe => "audit-probe",
            TraceKind::AuditReply => "audit-reply",
            TraceKind::ReplicaBirth => "replica-birth",
            TraceKind::ReplicaRefresh => "replica-refresh",
            TraceKind::ReplicaDeletion => "replica-deletion",
            TraceKind::Respond => "respond",
        }
    }
}

/// One structured, virtual-clock-timestamped protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Logical time the event was handled.
    pub t: SimTime,
    /// Node the event happened at (the receiver/handler).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
    /// The key involved.
    pub key: KeyId,
    /// Kind-specific payload (sender, client, replica, or entry count).
    pub detail: u64,
}

impl TraceEvent {
    /// The event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\": {}, \"node\": {}, \"kind\": \"{}\", \"key\": {}, \"detail\": {}}}",
            self.t.as_micros(),
            self.node.0,
            self.kind.name(),
            self.key.index(),
            self.detail
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest event is overwritten and `dropped` counts the
/// loss — a long run with a small buffer keeps its tail. Two runs are
/// only meaningfully diffable while neither dropped.
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Ring cursor: index of the oldest event once the buffer wrapped.
    next: usize,
    dropped: u64,
}

impl TraceBuf {
    /// An empty buffer keeping at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        TraceBuf {
            events: Vec::new(),
            cap: cap.max(1),
            next: 0,
            dropped: 0,
        }
    }

    /// Records one event, overwriting the oldest when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events in canonical order: sorted by
    /// `(t, node, kind, key, detail)`. Two runs that handled the same
    /// multiset of events — however their workers interleaved — export
    /// the same sequence, which is what makes [`trace_diff`] exact.
    pub fn sorted(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.clone();
        evs.sort_unstable();
        evs
    }

    /// The whole buffer as JSONL, in canonical order.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.sorted() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// The first point where two traces disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index into the canonical order where the traces differ.
    pub index: usize,
    /// The left trace's event at that index (`None` = left ended).
    pub left: Option<TraceEvent>,
    /// The right trace's event at that index (`None` = right ended).
    pub right: Option<TraceEvent>,
}

/// Compares two traces in canonical order and reports the first
/// diverging event, or `None` when the traces are identical. This is
/// the debugging primitive the conformance matrix lacked: instead of a
/// whole-`Outcome` mismatch, the answer to "where did the live run leave
/// the simulation" is one event.
pub fn trace_diff(a: &TraceBuf, b: &TraceBuf) -> Option<TraceDivergence> {
    let (left, right) = (a.sorted(), b.sorted());
    let n = left.len().max(right.len());
    for i in 0..n {
        let (l, r) = (left.get(i).copied(), right.get(i).copied());
        if l != r {
            return Some(TraceDivergence {
                index: i,
                left: l,
                right: r,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..8u64 {
            h.record(v);
        }
        // 0..8 land in distinct buckets (exact then pairwise-exact).
        assert_eq!(h.count(), 8);
        for p in [1, 500, 999] {
            assert!(h.quantile(p) < 8);
        }
        assert_eq!(h.quantile(1), 0);
        assert_eq!(h.quantile(1000), 7);
    }

    #[test]
    fn index_and_floor_are_consistent() {
        for v in [0u64, 1, 3, 4, 7, 8, 15, 100, 1000, 1 << 20, u64::MAX] {
            let idx = Hist::index_of(v);
            assert!(idx < HIST_BUCKETS);
            let floor = Hist::floor_of(idx);
            assert!(floor <= v, "floor {floor} must not exceed value {v}");
            if idx + 1 < HIST_BUCKETS {
                assert!(Hist::floor_of(idx + 1) > v, "value {v} below next bucket");
            }
        }
        // Bucket floors are strictly increasing.
        for i in 1..HIST_BUCKETS {
            assert!(Hist::floor_of(i) > Hist::floor_of(i - 1));
        }
    }

    #[test]
    fn huge_values_saturate_into_the_top_bucket() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1000), Hist::floor_of(HIST_BUCKETS - 1));
    }

    #[test]
    fn merge_equals_serial_recording() {
        let (mut a, mut b, mut serial) = (Hist::new(), Hist::new(), Hist::new());
        for v in [0u64, 5, 5, 17, 40_000, 1_000_000] {
            serial.record(v);
        }
        for v in [0u64, 5, 40_000] {
            a.record(v);
        }
        for v in [5u64, 17, 1_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 100_000] {
            h.record(v);
        }
        let mut last = 0;
        for p in 0..=1000 {
            let q = h.quantile(p);
            assert!(q >= last, "quantile must be monotone in p");
            last = q;
        }
        assert!(h.quantile(1000) <= 100_000);
    }

    #[test]
    fn bytes_round_trip() {
        let mut h = Hist::new();
        for v in [0u64, 0, 9, 77, 1 << 30] {
            h.record(v);
        }
        let bytes = h.to_bytes();
        assert_eq!(Hist::from_bytes(&bytes), Some(h));
        // Compact: 4 occupied buckets → 2 + 4·9 bytes.
        assert_eq!(bytes.len(), 2 + 9 * 4);
        assert_eq!(Hist::from_bytes(&[]), None);
        assert_eq!(Hist::from_bytes(&[1, 0]), None);
        assert_eq!(Hist::from_bytes(&Hist::new().to_bytes()), Some(Hist::new()));
    }

    fn ev(t: u64, node: u32, kind: TraceKind, key: u32, detail: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_micros(t),
            node: NodeId(node),
            kind,
            key: KeyId(key),
            detail,
        }
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let mut buf = TraceBuf::new(2);
        for i in 0..5 {
            buf.record(ev(i, 0, TraceKind::Query, 0, 0));
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let tail: Vec<u64> = buf.sorted().iter().map(|e| e.t.as_micros()).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn export_is_canonically_ordered_jsonl() {
        let mut buf = TraceBuf::new(8);
        buf.record(ev(20, 1, TraceKind::Respond, 2, 1));
        buf.record(ev(10, 9, TraceKind::ClientQuery, 2, 0));
        let jsonl = buf.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"client-query\""));
        assert!(lines[1].contains("\"kind\": \"respond\""));
        assert!(lines[0].contains("\"t\": 10"));
    }

    #[test]
    fn trace_diff_pinpoints_the_first_divergence() {
        let mut a = TraceBuf::new(8);
        let mut b = TraceBuf::new(8);
        for t in [1, 2, 3] {
            a.record(ev(t, 0, TraceKind::Query, 1, 7));
            b.record(ev(t, 0, TraceKind::Query, 1, 7));
        }
        assert_eq!(trace_diff(&a, &b), None);
        // Recording order must not matter: same multiset, shuffled.
        let mut c = TraceBuf::new(8);
        for t in [3, 1, 2] {
            c.record(ev(t, 0, TraceKind::Query, 1, 7));
        }
        assert_eq!(trace_diff(&a, &c), None);
        b.record(ev(4, 5, TraceKind::ClearBit, 1, 0));
        let d = trace_diff(&a, &b).expect("must diverge");
        assert_eq!(d.index, 3);
        assert_eq!(d.left, None);
        assert_eq!(d.right.map(|e| e.kind), Some(TraceKind::ClearBit));
    }
}
