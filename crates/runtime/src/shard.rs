//! The sharded worker pool behind [`crate::LiveNetwork`].
//!
//! The node population is cut into contiguous shards of equal size; one
//! OS worker thread owns each shard's [`CupNode`]s and its mpsc mailbox.
//! A message whose target lives on the same shard is handled inline
//! through a local FIFO (no channel round-trip); a cross-shard message
//! goes through the target shard's mailbox. An atomic in-flight counter
//! brackets every mailbox envelope from send to fully-dispatched, which
//! is what makes the [`Shared::wait_quiescent`] barrier exact: zero
//! in-flight envelopes means every mailbox is drained *and* no worker is
//! mid-dispatch (workers send an envelope's children before finishing
//! it, so the counter can never dip to zero while work remains).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use cup_core::clock::Clock;
use cup_core::justify::JustificationTracker;
use cup_core::stats::NodeStats;
use cup_core::{
    Action, ClientId, CupNode, IndexEntry, Message, NodeConfig, ReplicaEvent, Requester, UpdateKind,
};
use cup_des::{KeyId, NodeId, ReplicaId, SimTime};
use cup_faults::{DropVerdict, FaultState};
use cup_overlay::{AnyOverlay, Overlay};

/// What a shard mailbox can receive.
pub(crate) enum Envelope {
    /// A protocol message for `to` from peer `from`.
    Peer {
        /// Receiving node (owned by this shard).
        to: NodeId,
        /// Sending neighbor.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A local client query posted at `at`; the response goes to the
    /// registered client channel.
    Client {
        /// The posting node.
        at: NodeId,
        /// The key queried.
        key: KeyId,
        /// Who is waiting for the answer.
        client: ClientId,
    },
    /// A replica lifecycle message for `at`, the key's authority.
    Replica {
        /// The authority node.
        at: NodeId,
        /// Birth, refresh, or deletion.
        event: ReplicaEvent,
    },
    /// Fault plane: wipe `at`'s protocol state (a crash). The node comes
    /// back cold; its counters are folded into the crash-retained
    /// aggregate so network-wide statistics stay conserved.
    CrashReset {
        /// The crashing node (owned by this shard).
        at: NodeId,
    },
    /// Stop the worker. Not tracked as in-flight work: shutdown is the
    /// one envelope [`Shared::wait_quiescent`] must not wait for.
    Shutdown,
}

/// Marker for a failed overlay routing lookup: the message carrying the
/// lookup is dropped (and counted) instead of panicking the worker.
pub(crate) struct RoutingFailed;

/// State shared between the runtime handle and every worker.
pub(crate) struct Shared {
    /// Per-shard mailbox senders, indexed by shard.
    pub(crate) mailboxes: Vec<Sender<Envelope>>,
    /// Total node population (ids are dense `0..population`).
    population: usize,
    /// Shard count; nodes map onto shards by the balanced contiguous
    /// partition (shard sizes differ by at most one node).
    shards: usize,
    /// The static overlay all routing decisions come from.
    pub(crate) overlay: AnyOverlay,
    /// Client response channels, keyed by the id carried in the query.
    pub(crate) clients: Mutex<HashMap<ClientId, Sender<Vec<IndexEntry>>>>,
    /// Where "now" comes from: wall-mapped for real deployments,
    /// virtual (stepped at quiesce barriers) for deterministic runs —
    /// see [`cup_core::clock`].
    pub(crate) clock: Clock,
    /// Total peer messages delivered (the live equivalent of hop counts).
    pub(crate) hops: AtomicU64,
    /// Peer messages that crossed a shard boundary (subset of `hops`).
    pub(crate) cross_shard: AtomicU64,
    /// Messages dropped because the overlay failed to route them.
    pub(crate) routing_failures: AtomicU64,
    /// §3.1 justified-update accounting, shared with the DES through
    /// [`cup_core::justify`]. Gated by `justify_on` so the disabled path
    /// costs one relaxed load per event, not a lock.
    pub(crate) justify: Mutex<JustificationTracker>,
    /// Whether the justification tracker records events.
    pub(crate) justify_on: AtomicBool,
    /// The node configuration every node was built with (crash resets
    /// rebuild cold nodes from it).
    pub(crate) config: NodeConfig,
    /// The fault plane, shared with the DES through [`cup_faults`]:
    /// drops are decided here *before* a message enters a mailbox, so a
    /// dropped message never becomes in-flight work and `wait_quiescent`
    /// stays exact. Gated by `faults_on` so the fault-free path costs
    /// one relaxed load per send, not a lock.
    pub(crate) faults: Mutex<FaultState>,
    /// Whether the fault plane vets sends.
    pub(crate) faults_on: AtomicBool,
    /// Whether a fault plane was ever armed this run. Unlike `faults_on`
    /// (which tracks *current* activity and heals back to false), this
    /// latches: staleness ground truth keeps being recorded after the
    /// fault window closes, exactly like the DES's `faults.is_some()`.
    pub(crate) faults_armed: AtomicBool,
    /// Ground truth for staleness: globally deleted replicas and when
    /// they died (tracked only while a fault plane is armed — the live
    /// mirror of the DES network's map).
    pub(crate) dead_replicas: Mutex<HashMap<(KeyId, ReplicaId), SimTime>>,
    /// Client answers that served a globally dead replica.
    pub(crate) stale_answers: AtomicU64,
    /// Summed staleness age of those answers (µs since the deletion).
    pub(crate) stale_age_micros: AtomicU64,
    /// Counters retained from crashed nodes (the live mirror of the
    /// DES arena's departed-stats aggregate).
    pub(crate) crash_retained: Mutex<NodeStats>,
    /// In-flight envelopes: incremented before a mailbox send,
    /// decremented after the receiving worker fully dispatched the
    /// envelope, including its inline intra-shard cascade.
    pending: AtomicU64,
    /// Set when a worker unwinds mid-dispatch; `wait_quiescent` turns
    /// it into a panic instead of waiting forever on an in-flight
    /// counter that will never reach zero.
    panicked: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    pub(crate) fn new(
        mailboxes: Vec<Sender<Envelope>>,
        population: usize,
        overlay: AnyOverlay,
        config: NodeConfig,
        clock: Clock,
    ) -> Self {
        let shards = mailboxes.len();
        Shared {
            mailboxes,
            population,
            shards,
            overlay,
            clients: Mutex::new(HashMap::new()),
            clock,
            hops: AtomicU64::new(0),
            cross_shard: AtomicU64::new(0),
            routing_failures: AtomicU64::new(0),
            justify: Mutex::new(JustificationTracker::new()),
            justify_on: AtomicBool::new(false),
            config,
            faults: Mutex::new(FaultState::new(0)),
            faults_on: AtomicBool::new(false),
            faults_armed: AtomicBool::new(false),
            dead_replicas: Mutex::new(HashMap::new()),
            stale_answers: AtomicU64::new(0),
            stale_age_micros: AtomicU64::new(0),
            crash_retained: Mutex::new(NodeStats::default()),
            pending: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    /// The live clock's current time (wall-mapped or virtual).
    pub(crate) fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shard owning `node`: the balanced contiguous partition of
    /// `0..population` into `shards` ranges whose sizes differ by at
    /// most one. Shard `s` owns ids `⌈s·N/M⌉..⌈(s+1)·N/M⌉`, and this
    /// is its O(1) inverse.
    pub(crate) fn shard_of(&self, node: NodeId) -> usize {
        node.index() * self.shards / self.population
    }

    /// First node id owned by `shard` under the balanced partition.
    pub(crate) fn shard_base(population: usize, shards: usize, shard: usize) -> usize {
        (shard * population).div_ceil(shards)
    }

    /// Sends an envelope to the shard owning its target, tracking it as
    /// in-flight work for the quiesce barrier.
    pub(crate) fn post(&self, shard: usize, env: Envelope) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        if self.mailboxes[shard].send(env).is_err() {
            // Shutdown raced the send; losing a message then is
            // acceptable, but the barrier must stay honest.
            self.finish();
        }
    }

    /// Marks one posted envelope as fully dispatched, waking quiescing
    /// threads when the network drains.
    pub(crate) fn finish(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.idle_cv.notify_all();
        }
    }

    /// Flags a worker unwind and wakes every quiescing thread so the
    /// failure surfaces instead of hanging.
    pub(crate) fn flag_panic(&self) {
        self.panicked.store(true, Ordering::SeqCst);
        let _idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.idle_cv.notify_all();
    }

    /// Blocks until every mailbox is drained and no worker is
    /// mid-dispatch. Exact, not heuristic: see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked — the counter can then never
    /// drain, and a loud failure beats a silent permanent hang.
    pub(crate) fn wait_quiescent(&self) {
        let mut idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            assert!(
                !self.panicked.load(Ordering::SeqCst),
                "a live-runtime worker panicked (see its message above); the network cannot quiesce"
            );
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            idle = self.idle_cv.wait(idle).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Next hop from `at` toward `key`'s authority (`None` at the
    /// authority itself). A failed lookup bumps the failure counter and
    /// tells the caller to drop the message — one bad route must not
    /// take a whole shard of nodes down.
    pub(crate) fn upstream_of(
        &self,
        at: NodeId,
        key: KeyId,
    ) -> Result<Option<NodeId>, RoutingFailed> {
        if self.overlay.authority(key) == at {
            return Ok(None);
        }
        match self.overlay.next_hop(at, key) {
            Ok(hop) => Ok(hop),
            Err(_) => {
                self.routing_failures.fetch_add(1, Ordering::Relaxed);
                Err(RoutingFailed)
            }
        }
    }

    /// Whether justification accounting is live. Acquire pairs with the
    /// SeqCst store in `track_justification`: a worker that observes the
    /// flag also observes the tracker state installed before the flip.
    pub(crate) fn justify_enabled(&self) -> bool {
        self.justify_on.load(Ordering::Acquire)
    }

    /// Whether the fault plane vets sends. Acquire pairs with the SeqCst
    /// store in `enable_faults`, so a worker that sees the flag also
    /// sees the fault state it guards.
    pub(crate) fn faults_enabled(&self) -> bool {
        self.faults_on.load(Ordering::Acquire)
    }

    /// Sender-side fault verdict for one message (call exactly once per
    /// send, before any enqueue — see [`cup_faults::FaultState::roll`]).
    pub(crate) fn fault_roll(&self, from: NodeId, to: NodeId) -> DropVerdict {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .roll(from, to)
    }

    /// Sender-side behavior-fault pass over one outgoing message (call
    /// before [`Shared::fault_roll`], exactly like the DES applies
    /// [`FaultState::behavior_send`] before its loss roll). Returns
    /// `false` when the sender's behavior fault suppressed the message.
    pub(crate) fn behavior_send(&self, from: NodeId, msg: &mut Message) -> bool {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .behavior_send(from, msg)
    }

    /// Receiver-side behavior-fault pass (after the hop was charged,
    /// before the protocol handler — the DES interception point).
    /// Returns `false` when the receiver's behavior fault swallowed it.
    pub(crate) fn behavior_recv(&self, to: NodeId, msg: &Message) -> bool {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .behavior_recv(to, msg)
    }

    /// Whether staleness ground truth is being recorded (a fault plane
    /// was armed at some point this run). Acquire for the same reason as
    /// [`Shared::faults_enabled`]: the flag guards the dead-replica map.
    pub(crate) fn faults_armed(&self) -> bool {
        self.faults_armed.load(Ordering::Acquire)
    }

    /// Records a replica as globally dead from `now` (first death wins,
    /// matching the DES's `or_insert`).
    pub(crate) fn note_dead_replica(&self, key: KeyId, replica: ReplicaId, now: SimTime) {
        self.dead_replicas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry((key, replica))
            .or_insert(now);
    }

    /// Staleness check on one client answer: if any served entry names a
    /// globally dead replica, the answer is poisoned — count it and its
    /// age, byte-for-byte like the DES's `RespondClient` accounting.
    pub(crate) fn note_client_answer(&self, entries: &[IndexEntry], now: SimTime) {
        let dead = self.dead_replicas.lock().unwrap_or_else(|e| e.into_inner());
        if dead.is_empty() {
            return;
        }
        let stale_since = entries
            .iter()
            .filter_map(|e| dead.get(&(e.key, e.replica)))
            .min();
        if let Some(&died) = stale_since {
            self.stale_answers.fetch_add(1, Ordering::Relaxed);
            self.stale_age_micros
                .fetch_add(now.saturating_since(died).as_micros(), Ordering::Relaxed);
        }
    }

    /// Returns `true` if the fault plane currently marks `node` crashed.
    pub(crate) fn fault_is_crashed(&self, node: NodeId) -> bool {
        self.faults_enabled()
            && self
                .faults
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_crashed(node)
    }

    /// Runs `f` on the locked fault plane (counter bumps).
    pub(crate) fn with_faults(&self, f: impl FnOnce(&mut FaultState)) {
        f(&mut self.faults.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// Records a delivered maintenance update with the shared tracker.
    pub(crate) fn justify_update(&self, to: NodeId, key: KeyId, now: SimTime, closes: SimTime) {
        self.justify
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_update_delivered(to, key, now, closes);
    }

    /// Records a posted client query's virtual path with the tracker
    /// (mirrors the DES harness: one `on_query` per posted query, never
    /// per forwarded hop).
    pub(crate) fn justify_query(&self, at: NodeId, key: KeyId, now: SimTime) {
        if let Ok(path) = self.overlay.route(at, key) {
            self.justify
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .on_query(key, now, &path);
        }
    }

    /// Delivers a query answer to a waiting client, if it still waits.
    /// A poisoned registry is recovered, not propagated: the map only
    /// holds channel senders, so it is valid after any panic, and a
    /// worker must keep dispatching (the barrier reports the panic).
    fn respond_client(&self, client: ClientId, entries: Vec<IndexEntry>) {
        if let Some(tx) = self
            .clients
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&client)
        {
            let _ = tx.send(entries);
        }
    }
}

/// One worker thread's state: its shard of nodes plus reusable buffers.
struct Worker {
    shard: usize,
    /// Dense id of the first node this shard owns.
    base: usize,
    nodes: Vec<CupNode>,
    shared: Arc<Shared>,
    /// Intra-shard messages handled inline, FIFO (to, from, msg).
    local: VecDeque<(NodeId, NodeId, Message)>,
    /// Reusable action buffer for the allocation-free `_into` handlers.
    actions: Vec<Action>,
}

/// Flags the unwind of a worker that panics mid-dispatch, so quiescing
/// threads fail loudly instead of waiting forever ([`Shared::flag_panic`]);
/// `shutdown()`'s join then surfaces the original panic payload.
struct PanicGuard(Arc<Shared>);

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.flag_panic();
        }
    }
}

/// The worker thread body: drain the mailbox until shutdown, then hand
/// the shard's final node states back.
pub(crate) fn worker_main(
    shard: usize,
    base: usize,
    nodes: Vec<CupNode>,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
) -> Vec<CupNode> {
    let guard = PanicGuard(Arc::clone(&shared));
    let mut worker = Worker {
        shard,
        base,
        nodes,
        shared,
        local: VecDeque::new(),
        actions: Vec::new(),
    };
    while let Ok(env) = rx.recv() {
        if matches!(env, Envelope::Shutdown) {
            break;
        }
        worker.dispatch(env);
        worker.shared.finish();
    }
    drop(guard);
    worker.nodes
}

impl Worker {
    fn node_mut(&mut self, id: NodeId) -> &mut CupNode {
        &mut self.nodes[id.index() - self.base]
    }

    fn owns(&self, id: NodeId) -> bool {
        self.shared.shard_of(id) == self.shard
    }

    /// Handles one mailbox envelope plus the whole intra-shard cascade
    /// it sets off.
    fn dispatch(&mut self, env: Envelope) {
        match env {
            Envelope::Shutdown => unreachable!("worker_main filters Shutdown before dispatch"),
            Envelope::CrashReset { at } => {
                let idx = at.index() - self.base;
                let cold = CupNode::new(at, self.shared.config);
                let dead = std::mem::replace(&mut self.nodes[idx], cold);
                self.shared
                    .crash_retained
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .merge(&dead.stats);
            }
            Envelope::Peer { to, from, msg } => self.handle_peer(to, from, msg),
            Envelope::Client { at, key, client } => {
                // A crashed node accepts no connections: the query is
                // swallowed exactly like the DES harness swallows it
                // (the waiting client observes no answer).
                if self.shared.fault_is_crashed(at) {
                    self.shared.with_faults(FaultState::note_query_at_crashed);
                    return;
                }
                let now = self.shared.now();
                match self.shared.upstream_of(at, key) {
                    Ok(upstream) => {
                        // Justification bookkeeping first, exactly like
                        // the DES harness: the posted query covers every
                        // node on its virtual path (§3.1).
                        if self.shared.justify_enabled() {
                            self.shared.justify_query(at, key, now);
                        }
                        let mut actions = std::mem::take(&mut self.actions);
                        self.node_mut(at).handle_query_into(
                            now,
                            key,
                            Requester::Client(client),
                            upstream,
                            &mut actions,
                        );
                        self.deliver(at, &mut actions);
                        self.actions = actions;
                    }
                    // The query is dead on arrival; answer the client
                    // empty now rather than letting it stew until its
                    // timeout (the counter records the failure).
                    Err(RoutingFailed) => self.shared.respond_client(client, Vec::new()),
                }
            }
            Envelope::Replica { at, event } => {
                // Ground truth for the staleness metric, recorded before
                // the crashed-authority gate like the DES: the replica
                // is globally dead from this instant whether or not its
                // deletion reaches (or survives at) the authority.
                if self.shared.faults_armed() {
                    if let ReplicaEvent::Deletion { key, replica } = event {
                        self.shared
                            .note_dead_replica(key, replica, self.shared.now());
                    }
                }
                // A crashed authority hears nothing from its replicas.
                if self.shared.fault_is_crashed(at) {
                    self.shared.with_faults(FaultState::note_replica_at_crashed);
                    return;
                }
                let now = self.shared.now();
                let mut actions = std::mem::take(&mut self.actions);
                self.node_mut(at)
                    .handle_replica_event_into(now, event, &mut actions);
                self.deliver(at, &mut actions);
                self.actions = actions;
            }
        }
        while let Some((to, from, msg)) = self.local.pop_front() {
            self.handle_peer(to, from, msg);
        }
    }

    /// Runs one peer message through its target node. A message whose
    /// routing lookup fails is dropped (counted in `routing_failures`).
    fn handle_peer(&mut self, to: NodeId, from: NodeId, msg: Message) {
        // In flight when its receiver crashed (the sender's verdict
        // predates the crash): a crashed node processes nothing.
        if self.shared.fault_is_crashed(to) {
            self.shared
                .with_faults(|f| f.counters.dropped_to_crashed += 1);
            return;
        }
        // Byzantine receivers: a stale-serve node swallows inbound
        // deletions and audit repairs after the hop was paid (the hop
        // was counted at the sender in `deliver`).
        if self.shared.faults_enabled() && !self.shared.behavior_recv(to, &msg) {
            return;
        }
        let now = self.shared.now();
        let mut actions = std::mem::take(&mut self.actions);
        match msg {
            Message::Query { key } => {
                if let Ok(upstream) = self.shared.upstream_of(to, key) {
                    self.node_mut(to).handle_query_into(
                        now,
                        key,
                        Requester::Neighbor(from),
                        upstream,
                        &mut actions,
                    );
                }
            }
            Message::Update(update) => {
                if update.kind != UpdateKind::FirstTime && self.shared.justify_enabled() {
                    self.shared
                        .justify_update(to, update.key, now, update.window_end);
                }
                self.node_mut(to)
                    .handle_update_into(now, from, update, &mut actions);
            }
            Message::ClearBit { key } => {
                if let Ok(upstream) = self.shared.upstream_of(to, key) {
                    self.node_mut(to)
                        .handle_clear_bit_into(now, key, from, upstream, &mut actions);
                }
            }
            Message::AuditProbe { key, round } => {
                self.node_mut(to)
                    .handle_audit_probe_into(now, key, round, from, &mut actions);
            }
            Message::AuditReply {
                key,
                round,
                entries,
                retired,
            } => {
                self.node_mut(to)
                    .handle_audit_reply(now, key, round, &entries, &retired);
            }
        }
        self.deliver(to, &mut actions);
        self.actions = actions;
    }

    /// Turns `from`'s protocol actions into traffic: intra-shard sends
    /// join the inline FIFO, cross-shard sends go through mailboxes,
    /// client responses go to their waiting channel.
    fn deliver(&mut self, from: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, mut msg } => {
                    // Decide-before-enqueue: a fault-plane drop never
                    // enters a mailbox (the quiesce barrier stays exact)
                    // and never counts as a hop — exactly like the DES,
                    // which never schedules the delivery. Behavior
                    // faults run first: a suppressed (or rewritten) send
                    // never advances the per-link loss counter, in
                    // either runtime.
                    if self.shared.faults_enabled() {
                        if !self.shared.behavior_send(from, &mut msg) {
                            continue;
                        }
                        if self.shared.fault_roll(from, to) != DropVerdict::Deliver {
                            continue;
                        }
                    }
                    self.shared.hops.fetch_add(1, Ordering::Relaxed);
                    if self.owns(to) {
                        self.local.push_back((to, from, msg));
                    } else {
                        self.shared.cross_shard.fetch_add(1, Ordering::Relaxed);
                        let shard = self.shared.shard_of(to);
                        self.shared.post(shard, Envelope::Peer { to, from, msg });
                    }
                }
                Action::RespondClient {
                    client, entries, ..
                } => {
                    if self.shared.faults_armed() {
                        self.shared.note_client_answer(&entries, self.shared.now());
                    }
                    self.shared.respond_client(client, entries);
                }
            }
        }
    }
}
