//! Pluggable node→shard assignment for the live worker pool.
//!
//! The pool historically hard-coded the balanced *contiguous* partition:
//! shard `s` owns ids `⌈s·N/M⌉..⌈(s+1)·N/M⌉`. That stays the default,
//! but node ids carry no locality — CAN assigns ids in join order and
//! Chord hashes them onto the ring — so overlay neighbors usually land
//! on different shards and most protocol traffic pays the cross-shard
//! path. The [`ShardMapMode::OverlayAware`] mode instead sorts nodes by
//! an overlay locality key (Chord: position on the ring, so successor
//! arcs stay together; CAN: Morton/Z-order of the zone center, so zone
//! neighbors cluster) and cuts the *sorted* order into the same balanced
//! runs. Either way the map is a static table built once at start-up:
//! `shard_of`/`slot_of` are O(1) dense-vector lookups on the hot path,
//! and shard sizes still differ by at most one node.

use cup_des::NodeId;
use cup_overlay::{AnyOverlay, Overlay};

/// How the node population maps onto worker shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMapMode {
    /// Balanced contiguous id ranges (the default). Placement ignores
    /// the overlay entirely.
    Contiguous,
    /// Balanced runs of the overlay-locality order: CAN zone neighbors
    /// and Chord successor arcs co-locate, so neighbor-heavy protocol
    /// traffic (interest trees, update propagation) stays intra-shard.
    OverlayAware,
}

cup_core::string_surface!(ShardMapMode { Contiguous => "contiguous", OverlayAware => "overlay-aware" });

/// A frozen node→shard assignment: which shard owns each node, and at
/// which slot of that shard's dense node vector it lives. Built once at
/// start-up; shared read-only by every worker afterwards.
pub struct ShardMap {
    mode: ShardMapMode,
    shards: usize,
    /// Owning shard per node id (dense, ids `0..population`).
    shard_of: Vec<u32>,
    /// Index into the owning shard's node vector, per node id.
    slot_of: Vec<u32>,
    /// Per shard: the node ids it owns, in slot order.
    owned: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Builds the map for `overlay`'s population over `shards` workers
    /// (clamped to `1..=population`). Shard sizes differ by at most one
    /// node in both modes; only the *membership* changes.
    pub fn build(mode: ShardMapMode, overlay: &AnyOverlay, shards: usize) -> ShardMap {
        let population = overlay.nodes().len();
        let shards = shards.clamp(1, population.max(1));
        let order: Vec<u32> = match mode {
            ShardMapMode::Contiguous => (0..population as u32).collect(),
            ShardMapMode::OverlayAware => {
                let mut keyed: Vec<(u64, u32)> = (0..population as u32)
                    .map(|id| (locality_key(overlay, NodeId(id)), id))
                    .collect();
                // The id tiebreak keeps the order fully deterministic
                // even if two nodes share a locality key.
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, id)| id).collect()
            }
        };
        let mut shard_of = vec![0u32; population];
        let mut slot_of = vec![0u32; population];
        let mut owned = Vec::with_capacity(shards);
        for shard in 0..shards {
            let lo = Self::cut(population, shards, shard);
            let hi = Self::cut(population, shards, shard + 1);
            let mut own = Vec::with_capacity(hi - lo);
            for (slot, &id) in order[lo..hi].iter().enumerate() {
                shard_of[id as usize] = shard as u32;
                slot_of[id as usize] = slot as u32;
                own.push(NodeId(id));
            }
            owned.push(own);
        }
        ShardMap {
            mode,
            shards,
            shard_of,
            slot_of,
            owned,
        }
    }

    /// First position of `shard`'s run under the balanced partition of
    /// `population` into `shards` equal-or-off-by-one pieces.
    fn cut(population: usize, shards: usize, shard: usize) -> usize {
        (shard * population).div_ceil(shards)
    }

    /// The mode this map was built in.
    pub fn mode(&self) -> ShardMapMode {
        self.mode
    }

    /// Number of shards (= worker threads).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total node population covered by the map.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// `true` for an empty population (never the case in a started
    /// network, but keeps the type honest).
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard owning `node` — an O(1) table lookup.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// `node`'s position in its owning shard's node vector.
    pub fn slot_of(&self, node: NodeId) -> usize {
        self.slot_of[node.index()] as usize
    }

    /// The node ids `shard` owns, in slot order.
    pub fn owned(&self, shard: usize) -> &[NodeId] {
        &self.owned[shard]
    }
}

/// The overlay locality key `OverlayAware` sorts by: nearby keys mean
/// "overlay neighbors", so balanced runs of the sorted order co-locate
/// them on one shard.
fn locality_key(overlay: &AnyOverlay, node: NodeId) -> u64 {
    match overlay {
        // Chord routes along successor arcs and fingers; sorting by ring
        // position keeps each arc (and most short fingers) on one shard.
        AnyOverlay::Chord(_) => cup_overlay::hashing::node_to_ring(node.0),
        // CAN routes between zone neighbors in the 2-d torus; the Morton
        // (Z-order) code of the zone center keeps spatially adjacent
        // zones adjacent in the sort.
        AnyOverlay::Can(can) => can.zones_of(node).first().map_or(u64::MAX, |z| {
            morton(zone_mid(z.x0, z.x1), zone_mid(z.y0, z.y1))
        }),
    }
}

/// Midpoint of a half-open zone edge `[lo, hi)`; bounds are at most
/// `1 << 32`, so the midpoint always fits 32 bits.
fn zone_mid(lo: u64, hi: u64) -> u32 {
    ((lo + hi) / 2) as u32
}

/// Interleaves the bits of `x` and `y` (Z-order curve): points close in
/// the plane get close codes, which is all the sort needs.
fn morton(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Spreads the 32 bits of `v` to the even bit positions of a u64.
fn spread(v: u32) -> u64 {
    let mut v = u64::from(v);
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::DetRng;
    use cup_overlay::OverlayKind;

    fn overlay(kind: OverlayKind, n: usize) -> AnyOverlay {
        let mut rng = DetRng::seed_from(71);
        AnyOverlay::build(kind, n, &mut rng).unwrap()
    }

    #[test]
    fn both_modes_cover_every_node_exactly_once() {
        for kind in OverlayKind::ALL {
            let ov = overlay(kind, 37);
            for mode in ShardMapMode::ALL {
                let map = ShardMap::build(mode, &ov, 5);
                let mut seen = [false; 37];
                for shard in 0..map.shards() {
                    for (slot, &id) in map.owned(shard).iter().enumerate() {
                        assert!(!seen[id.index()], "{kind}/{mode}: {id} owned twice");
                        seen[id.index()] = true;
                        assert_eq!(map.shard_of(id), shard);
                        assert_eq!(map.slot_of(id), slot);
                    }
                }
                assert!(seen.iter().all(|&s| s), "{kind}/{mode}: node unowned");
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one_in_both_modes() {
        let ov = overlay(OverlayKind::Can, 23);
        for mode in ShardMapMode::ALL {
            let map = ShardMap::build(mode, &ov, 7);
            let sizes: Vec<usize> = (0..7).map(|s| map.owned(s).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{mode}: unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn contiguous_mode_matches_the_historic_partition() {
        let ov = overlay(OverlayKind::Chord, 16);
        let map = ShardMap::build(ShardMapMode::Contiguous, &ov, 7);
        for id in 0..16u32 {
            assert_eq!(map.shard_of(NodeId(id)), id as usize * 7 / 16);
        }
    }

    #[test]
    fn overlay_aware_placement_cuts_cross_shard_neighbor_edges() {
        // The whole point of the mode: overlay neighbor links — the
        // edges protocol traffic actually travels — should mostly stay
        // inside one shard.
        for kind in OverlayKind::ALL {
            let ov = overlay(kind, 128);
            let cross_edges = |map: &ShardMap| -> usize {
                (0..128u32)
                    .map(|id| {
                        let node = NodeId(id);
                        ov.neighbors(node)
                            .iter()
                            .filter(|&&nb| map.shard_of(nb) != map.shard_of(node))
                            .count()
                    })
                    .sum()
            };
            let contig = cross_edges(&ShardMap::build(ShardMapMode::Contiguous, &ov, 4));
            let aware = cross_edges(&ShardMap::build(ShardMapMode::OverlayAware, &ov, 4));
            assert!(
                aware < contig,
                "{kind}: overlay-aware must cut cross-shard neighbor edges ({aware} vs {contig})"
            );
        }
    }

    #[test]
    fn worker_clamp_handles_tiny_populations() {
        let ov = overlay(OverlayKind::Can, 3);
        let map = ShardMap::build(ShardMapMode::OverlayAware, &ov, 64);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn mode_surface_round_trips() {
        for mode in ShardMapMode::ALL {
            assert_eq!(ShardMapMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(
            ShardMapMode::parse("contiguous"),
            Some(ShardMapMode::Contiguous)
        );
        assert_eq!(
            ShardMapMode::parse("overlay-aware"),
            Some(ShardMapMode::OverlayAware)
        );
        assert_eq!(ShardMapMode::parse("bogus"), None);
    }
}
