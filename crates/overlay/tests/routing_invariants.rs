//! Property tests for the overlay routing invariants CUP rests on.
//!
//! The protocol requires (see `cup_overlay::Overlay`) that repeatedly
//! following `next_hop` from any live node reaches the key's authority in
//! a bounded number of hops, on the current topology, deterministically.
//! These properties drive both substrates — the 2-D CAN (with its
//! spatial-grid point index) and the Chord ring (with its binary-search
//! successor lookup) — from random live nodes, over random keys, across
//! random churn sequences, and check the invariant after every step.

use proptest::prelude::*;

use cup_des::{DetRng, KeyId, NodeId};
use cup_overlay::{AnyOverlay, Overlay, OverlayKind};

/// Hop bound for a lookup: CAN routes in O(√n), Chord in O(log n); both
/// fit comfortably under this deliberately loose cap, while a routing
/// loop or a detour through the whole network does not.
fn hop_bound(kind: OverlayKind, n: usize) -> usize {
    match kind {
        // 4·√n + 16: the grid diameter of a 2-D CAN is ~√n and greedy
        // routing takes a monotone path, but takeover nodes holding
        // several zones can stretch it.
        OverlayKind::Can => 4 * (n as f64).sqrt().ceil() as usize + 16,
        // Each hop at least halves the remaining ring distance.
        OverlayKind::Chord => 4 * (usize::BITS - n.leading_zeros()) as usize + 16,
    }
}

/// Checks the full invariant for one (overlay, key, start) triple:
/// routing terminates at the key's owner, within the hop bound, along
/// actual neighbor edges.
fn check_lookup(
    overlay: &AnyOverlay,
    kind: OverlayKind,
    start: NodeId,
    key: KeyId,
) -> Result<(), TestCaseError> {
    let authority = overlay.authority(key);
    prop_assert!(
        overlay.is_alive(authority),
        "authority {authority} of {key} must be alive"
    );
    let path = match overlay.route(start, key) {
        Ok(path) => path,
        Err(e) => return Err(TestCaseError::fail(format!("route({start}, {key}): {e}"))),
    };
    prop_assert_eq!(*path.first().unwrap(), start);
    prop_assert_eq!(
        *path.last().unwrap(),
        authority,
        "lookup for {} from {} ended at {} instead of the owner {}",
        key,
        start,
        path.last().unwrap(),
        authority
    );
    let bound = hop_bound(kind, overlay.len());
    prop_assert!(
        path.len() - 1 <= bound,
        "lookup for {} took {} hops (bound {} at {} nodes)",
        key,
        path.len() - 1,
        bound,
        overlay.len()
    );
    for w in path.windows(2) {
        prop_assert!(
            overlay.neighbors(w[0]).contains(&w[1]),
            "path edge {} -> {} is not a neighbor link",
            w[0],
            w[1]
        );
    }
    Ok(())
}

/// Runs `check_lookup` for a deterministic sample of keys and live
/// starting nodes.
fn check_many_lookups(
    overlay: &AnyOverlay,
    kind: OverlayKind,
    rng: &mut DetRng,
    lookups: usize,
) -> Result<(), TestCaseError> {
    let live = overlay.nodes();
    for _ in 0..lookups {
        let start = live[rng.choose_index(live.len())];
        let key = KeyId(rng.next_below(1 << 16) as u32);
        check_lookup(overlay, kind, start, key)?;
    }
    Ok(())
}

proptest! {
    /// Every lookup from a random live node terminates at the key's
    /// owner in bounded hops, on freshly built overlays of random size.
    #[test]
    fn lookups_reach_owner_in_bounded_hops(seed in any::<u64>(), n in 1usize..260) {
        for kind in [OverlayKind::Can, OverlayKind::Chord] {
            let mut rng = DetRng::seed_from(seed);
            let overlay = AnyOverlay::build(kind, n, &mut rng).unwrap();
            check_many_lookups(&overlay, kind, &mut rng, 24)?;
        }
    }

    /// The invariant survives an arbitrary join/leave sequence: after
    /// every churn event, lookups from random live nodes still terminate
    /// at the (possibly new) owner within the bound.
    #[test]
    fn lookups_stay_correct_across_churn(
        seed in any::<u64>(),
        n in 2usize..96,
        churn in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        for kind in [OverlayKind::Can, OverlayKind::Chord] {
            let mut rng = DetRng::seed_from(seed);
            let mut overlay = AnyOverlay::build(kind, n, &mut rng).unwrap();
            for &join in &churn {
                if join {
                    let report = overlay.join(&mut rng).unwrap();
                    prop_assert!(report.joined.is_some());
                } else if overlay.len() > 1 {
                    let live = overlay.nodes();
                    let victim = live[rng.choose_index(live.len())];
                    overlay.leave(victim).unwrap();
                    prop_assert!(!overlay.is_alive(victim));
                }
                check_many_lookups(&overlay, kind, &mut rng, 8)?;
            }
        }
    }

    /// Ownership is total and exclusive: every key has exactly one live
    /// authority, and routing from the authority itself is a no-op.
    #[test]
    fn ownership_is_total_and_lookup_from_owner_trivial(seed in any::<u64>(), n in 1usize..128) {
        for kind in [OverlayKind::Can, OverlayKind::Chord] {
            let mut rng = DetRng::seed_from(seed);
            let overlay = AnyOverlay::build(kind, n, &mut rng).unwrap();
            for k in 0..24u32 {
                let key = KeyId(rng.next_below(1 << 20) as u32 + k);
                let auth = overlay.authority(key);
                prop_assert!(overlay.is_alive(auth));
                prop_assert_eq!(overlay.next_hop(auth, key).unwrap(), None);
                prop_assert_eq!(overlay.route(auth, key).unwrap(), vec![auth]);
            }
        }
    }
}
