//! The simulation event queue.
//!
//! A binary heap keyed by `(time, sequence)` — the sequence number breaks
//! ties so that events scheduled for the same instant fire in FIFO order,
//! which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: fires at `at`, carrying `payload`.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use cup_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Events scheduled for the same instant are returned in the order they
    /// were scheduled.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
        q.schedule(SimTime::from_secs(7), "c");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "c")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "a")));
    }
}
