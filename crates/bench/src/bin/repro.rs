//! Regenerates every table and figure of the CUP paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--scale bench|small|paper] [--workers N]
//!       [fig3] [fig4] [table1] [table2] [table3] [fig5] [fig6] [all]
//! ```
//!
//! With no experiment named, runs `all`. `--scale paper` uses the paper's
//! 2¹⁰-node configuration and all four query rates (the λ = 1000 runs
//! simulate millions of queries; expect minutes per experiment).
//! `--workers` sets the sweep worker-pool size (default: the machine's
//! available parallelism); every grid point is an independent
//! deterministic run and results come back in input order, so the output
//! is byte-identical whatever the pool size.

use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::Scale;
use cup_simnet::par::default_workers;
use cup_simnet::report;
use cup_simnet::sweeps;
use cup_workload::{capacity::CapacityProfile, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut workers = default_workers();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = it.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (use bench|small|paper)");
                    std::process::exit(2);
                });
            }
            "--workers" => {
                workers = parse_or_exit(&value_of(&mut it, "--workers"), "--workers");
                if workers == 0 {
                    eprintln!("--workers must be at least 1");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale bench|small|paper] [--workers N] \
                     [fig3|fig4|table1|table2|table3|fig5|fig6|all]..."
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let base = scale.base_scenario();
    println!(
        "# CUP reproduction — scale {:?}: {} nodes, {} keys, query window {}s, lifetime {}s\n",
        scale,
        base.nodes,
        base.keys,
        base.query_window().as_secs_f64(),
        base.entry_lifetime.as_secs_f64()
    );

    if want("fig3") {
        run_fig34(&base, scale, false, workers);
    }
    if want("fig4") {
        run_fig34(&base, scale, true, workers);
    }
    if want("table1") {
        println!("## Table 1 — total cost for varying cut-off policies");
        let rates = scale.rates();
        let rows = sweeps::policy_table_with(&base, &rates, &scale.push_levels(), workers);
        println!("{}", report::render_policy_table(&rows, &rates));
    }
    if want("table2") {
        println!(
            "## Table 2 — CUP vs standard caching across network sizes (second-chance, λ = 1 q/s)"
        );
        let scenario = Scenario {
            query_rate: 1.0,
            ..base.clone()
        };
        let cols = sweeps::size_sweep_with(&scenario, &scale.sizes(), workers);
        println!("{}", report::render_size_table(&cols));
    }
    if want("table3") {
        println!("## Table 3 — naive vs replica-independent cut-off across replica counts");
        let rows = sweeps::replica_sweep_with(&base, &scale.replica_counts(), workers);
        println!("{}", report::render_replica_table(&rows));
    }
    if want("fig5") {
        run_fig56(&base, scale, false, workers);
    }
    if want("fig6") {
        run_fig56(&base, scale, true, workers);
    }
}

/// Figures 3 (low rates, linear axes) and 4 (high rates, log y-axis in
/// the paper).
fn run_fig34(base: &Scenario, scale: Scale, high: bool, workers: usize) {
    let rates = scale.rates();
    let (name, selected): (_, Vec<f64>) = if high {
        (
            "Figure 4",
            rates.iter().copied().filter(|&r| r >= 100.0).collect(),
        )
    } else {
        (
            "Figure 3",
            rates.iter().copied().filter(|&r| r < 100.0).collect(),
        )
    };
    if selected.is_empty() {
        println!("## {name} — skipped (no rates at this scale)\n");
        return;
    }
    println!("## {name} — total and miss cost vs push level");
    let points = sweeps::push_level_sweep_with(base, &selected, &scale.push_levels(), workers);
    println!("{}", report::render_push_level(&points));
}

/// Figures 5 (λ = 1) and 6 (λ = 1000; highest available rate at smaller
/// scales).
fn run_fig56(base: &Scenario, scale: Scale, high: bool, workers: usize) {
    let rates = scale.rates();
    let rate = if high {
        rates.iter().copied().fold(f64::MIN, f64::max)
    } else {
        rates.iter().copied().fold(f64::MAX, f64::min)
    };
    let name = if high { "Figure 6" } else { "Figure 5" };
    println!("## {name} — total cost vs reduced capacity (Up-And-Down / Once-Down-Always-Down, λ = {rate} q/s)");
    let scenario = Scenario {
        query_rate: rate,
        ..base.clone()
    };
    let points = sweeps::capacity_sweep_with(&scenario, &scale.capacities(), workers);
    println!("{}", report::render_capacity(&points));
    // Sanity line mirroring the paper's observation.
    if let Some(zero) = points.iter().find(|p| p.capacity == 0.0) {
        println!(
            "at c = 0: up-and-down {:.2}x / once-down {:.2}x standard caching\n",
            zero.up_and_down as f64 / zero.standard as f64,
            zero.once_down as f64 / zero.standard as f64
        );
    }
    let _ = CapacityProfile::Full; // Profiles selected inside the sweep.
}
