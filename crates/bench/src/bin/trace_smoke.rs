//! The trace-plane smoke check behind the CI `trace-smoke` step.
//!
//! Runs one small conformance scenario through the DES and the live
//! worker pool with event tracing on, exports both traces as JSONL
//! artifacts, and diffs them:
//!
//! * the sim and live traces must be byte-identical after canonical
//!   sorting — any divergence is printed as the *first differing event*
//!   and the process exits non-zero;
//! * a deliberately perturbed sim run (different script seed) must
//!   *produce* a divergence — proving the diff actually has teeth, not
//!   just a pair of empty files.
//!
//! Usage:
//!
//! ```text
//! trace_smoke [--overlay can|chord] [--out-sim trace_sim.jsonl]
//!             [--out-live trace_live.jsonl] [--cap 65536]
//! ```

use cup_bench::cli::{parse_or_exit, value_of};
use cup_core::trace_diff;
use cup_overlay::OverlayKind;
use cup_testkit::conformance::{run_live_traced, run_sim_traced, ConformanceSpec};

fn main() {
    let mut kind = OverlayKind::Can;
    let mut out_sim = String::from("trace_sim.jsonl");
    let mut out_live = String::from("trace_live.jsonl");
    let mut cap: usize = 1 << 16;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--overlay" => {
                let v = value_of(&mut it, "--overlay");
                kind = OverlayKind::parse(v.trim()).unwrap_or_else(|| {
                    eprintln!("bad --overlay value '{v}' (can | chord)");
                    std::process::exit(2);
                });
            }
            "--out-sim" => out_sim = value_of(&mut it, "--out-sim"),
            "--out-live" => out_live = value_of(&mut it, "--out-live"),
            "--cap" => cap = parse_or_exit(&value_of(&mut it, "--cap"), "--cap"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_smoke [--overlay can|chord] [--out-sim PATH] \
                     [--out-live PATH] [--cap N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let spec = ConformanceSpec::small(kind);
    let (_, sim_answers, sim_trace) = run_sim_traced(&spec, cap);
    let (_, live_answers, live_trace) = run_live_traced(&spec, cap);
    println!(
        "{kind}: sim {} events ({} answers), live {} events ({} answers)",
        sim_trace.len(),
        sim_answers,
        live_trace.len(),
        live_answers,
    );
    if sim_trace.dropped() > 0 || live_trace.dropped() > 0 {
        eprintln!(
            "trace ring overflowed (sim dropped {}, live dropped {}); raise --cap",
            sim_trace.dropped(),
            live_trace.dropped()
        );
        std::process::exit(1);
    }

    for (path, trace) in [(&out_sim, &sim_trace), (&out_live, &live_trace)] {
        std::fs::write(path, trace.export_jsonl()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    // The check itself: the two runtimes told the same story.
    if let Some(div) = trace_diff(&sim_trace, &live_trace) {
        eprintln!(
            "TRACE DIVERGENCE at event {}:\n  sim : {:?}\n  live: {:?}",
            div.index, div.left, div.right
        );
        std::process::exit(1);
    }
    println!("sim and live traces identical ({} events)", sim_trace.len());

    // Teeth check: a perturbed workload must be *detectably* different,
    // and the diff must name where.
    let perturbed = ConformanceSpec {
        script_seed: spec.script_seed ^ 0x5EED,
        ..spec
    };
    let (_, _, perturbed_trace) = run_sim_traced(&perturbed, cap);
    match trace_diff(&sim_trace, &perturbed_trace) {
        Some(div) => println!(
            "perturbed run diverges at event {} (expected): {:?} vs {:?}",
            div.index, div.left, div.right
        ),
        None => {
            eprintln!("perturbed run produced an identical trace; the diff has no teeth");
            std::process::exit(1);
        }
    }
}
