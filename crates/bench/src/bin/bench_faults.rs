//! Emits `BENCH_faults.json`: the loss × crash-count fault sweep, CUP
//! (second-chance) versus all-out push at every point.
//!
//! Usage:
//!
//! ```text
//! bench_faults [--scale bench|small|paper] [--losses 0,0.05,0.2]
//!              [--crashes 0,4] [--replicas N] [--mean-life SECS]
//!              [--workers N] [--seed 42]
//!              [--out BENCH_faults.json] [--budget-secs N]
//! ```
//!
//! `--replicas` multiplies the refresh traffic (each replica keeps its
//! own lease), which is what separates the two policies' costs;
//! `--mean-life` gives replicas finite lives, which is what makes the
//! stale-answer and recovery-latency columns non-trivial (lost deletes
//! linger).
//!
//! The grid runs twice (serial, then across the sweep pool) and the
//! binary asserts the rows are byte-identical — fault runs must not
//! depend on the worker count. With `--budget-secs`, the process exits
//! non-zero if either pass exceeds the wall-clock budget.

use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::fault_bench::{render_json, run_fault_bench};
use cup_bench::Scale;
use cup_des::SimDuration;
use cup_simnet::par::default_workers;
use cup_workload::Scenario;

fn main() {
    let mut scale = Scale::Small;
    let mut losses: Vec<f64> = vec![0.0, 0.05, 0.2];
    let mut crashes: Vec<u32> = vec![0, 4];
    let mut replicas: u32 = 1;
    let mut mean_life: Option<u64> = None;
    let mut workers = default_workers();
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_faults.json");
    let mut budget_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = value_of(&mut it, "--scale");
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (use bench|small|paper)");
                    std::process::exit(2);
                });
            }
            "--losses" => {
                losses = value_of(&mut it, "--losses")
                    .split(',')
                    .map(|s| parse_or_exit(s, "--losses"))
                    .collect();
            }
            "--crashes" => {
                crashes = value_of(&mut it, "--crashes")
                    .split(',')
                    .map(|s| parse_or_exit(s, "--crashes"))
                    .collect();
            }
            "--replicas" => {
                replicas = parse_or_exit(&value_of(&mut it, "--replicas"), "--replicas");
            }
            "--mean-life" => {
                mean_life = Some(parse_or_exit(
                    &value_of(&mut it, "--mean-life"),
                    "--mean-life",
                ));
            }
            "--workers" => workers = parse_or_exit(&value_of(&mut it, "--workers"), "--workers"),
            "--seed" => seed = parse_or_exit(&value_of(&mut it, "--seed"), "--seed"),
            "--out" => out_path = value_of(&mut it, "--out"),
            "--budget-secs" => {
                budget_secs = Some(parse_or_exit(
                    &value_of(&mut it, "--budget-secs"),
                    "--budget-secs",
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_faults [--scale bench|small|paper] [--losses L,L,..] \
                     [--crashes C,C,..] [--replicas N] [--mean-life SECS] [--workers N] \
                     [--seed N] [--out PATH] [--budget-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if losses.iter().any(|l| !(0.0..=1.0).contains(l)) {
        eprintln!("loss rates must lie in [0, 1]");
        std::process::exit(2);
    }

    let base = Scenario {
        seed,
        replicas_per_key: replicas,
        replica_mean_life: mean_life.map(SimDuration::from_secs),
        ..scale.base_scenario()
    };
    let report = run_fault_bench(&base, &losses, &crashes, workers);

    for p in &report.points {
        println!(
            "{:>14}  loss {:>5}  crashes {:>3}  hit {:.3}  stale {:.3}  \
             justified {:>6}/{:<6} ({:.2})  dropped {:>7}  recovery {:>6.1}s \
             (p99 {:>6.1}s)  q_p99 {:>6}us  cost {:>9}",
            p.policy,
            p.loss,
            p.crashes,
            p.hit_rate,
            p.stale_rate,
            p.justified,
            p.tracked,
            p.justified_ratio(),
            p.dropped,
            p.recovery_latency_secs,
            p.stale_age_p99_secs,
            p.query_p99_us,
            p.total_cost,
        );
    }
    println!(
        "{} points  serial {:.2} s  parallel {:.2} s ({:.2} points/s, {:.2}x on {} workers)",
        report.points.len(),
        report.wall_serial.as_secs_f64(),
        report.wall_parallel.as_secs_f64(),
        report.parallel_points_per_sec(),
        report.speedup(),
        report.workers,
    );

    let json = render_json(&report, &base, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if let Some(budget) = budget_secs {
        let mut failed = false;
        for (name, wall) in [
            ("serial", report.wall_serial),
            ("parallel", report.wall_parallel),
        ] {
            if wall.as_secs() >= budget {
                eprintln!(
                    "BUDGET EXCEEDED: {name} sweep took {:.2} s (budget {budget} s)",
                    wall.as_secs_f64()
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
