//! Typed identifiers shared by the overlay and protocol crates.
//!
//! Using newtypes (rather than bare `usize`/`u64`) prevents accidentally
//! mixing node indices, key identifiers, and replica identifiers — a classic
//! source of silent simulation bugs.

use core::fmt;

/// Identifies a node in the peer-to-peer network.
///
/// Node ids are dense indices assigned by the overlay builder; departed
/// nodes keep their id (ids are never reused within one simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a key in the global index (the name of a content item).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

/// Identifies one replica of a content item.
///
/// Several replicas may serve the same key; each gets its own index entry
/// (the paper's `(key, value)` pairs where the value points at the replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl NodeId {
    /// Returns the id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl KeyId {
    /// Returns the id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ReplicaId {
    /// Returns the id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(KeyId(7).to_string(), "k7");
        assert_eq!(ReplicaId(7).to_string(), "r7");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(KeyId(9).index(), 9);
        assert_eq!(ReplicaId(9).index(), 9);
    }
}
