//! Worker-pool stress: shard-count independence of the live runtime.
//!
//! The sharded runtime's core contract is that sharding is *invisible*
//! to the protocol: however the node population is cut across workers,
//! the same injected workload must leave every node in the same final
//! state. This suite drives a deterministic-seed script that hammers
//! cross-shard traffic of all three message families — queries from
//! four concurrent client threads, update cascades from replica
//! births/refreshes/deletions, and clear-bit cascades provoked by
//! letting the second-chance policy starve (two refresh rounds with no
//! interleaved queries) — and asserts the **per-node** final statistics
//! of a 4-worker run are identical to a single-worker run, and of an
//! overlay-aware [`ShardMapMode`] run to a contiguous one.
//!
//! Concurrent phases only ever overlap operations on *disjoint keys*
//! (client thread `t` owns keys `k ≡ t (mod THREADS)`), which commute at
//! shared intermediate nodes; phases are separated by `quiesce()`. That
//! is what makes the comparison exact rather than statistical.

use cup::prelude::*;
use cup::protocol::clock::Clock;
use cup::protocol::stats::NodeStats;

const NODES: usize = 192;
const KEYS: u32 = 12;
const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 25;
const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);

/// One pass of parallel client queries: `THREADS` threads, each
/// querying only its own key class from script-chosen nodes.
fn query_phase(net: &LiveNetwork, pass: u64) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut rng = DetRng::seed_from(1_000 * pass + t as u64);
                let own: Vec<u32> = (0..KEYS).filter(|k| *k as usize % THREADS == t).collect();
                for _ in 0..QUERIES_PER_THREAD {
                    let node = net.nodes()[rng.choose_index(NODES)];
                    let key = own[rng.choose_index(own.len())];
                    net.query(node, KeyId(key))
                        .expect("stress query must be answered");
                }
            });
        }
    });
    net.quiesce();
}

/// Runs the full script on `workers` workers under the given placement
/// mode and returns the per-node final statistics plus the runtime's
/// message counters.
fn run_script(workers: usize, map: ShardMapMode) -> (Vec<NodeStats>, u64, u64) {
    let mut rng = DetRng::seed_from(31);
    let net = LiveNetwork::start_with_map(
        OverlayKind::Can,
        NODES,
        NodeConfig::cup_default(),
        workers,
        map,
        Clock::wall(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(net.workers(), workers);

    // Births: two replicas per key, all keys concurrently in flight.
    for k in 0..KEYS {
        for r in 0..2 {
            net.replica_birth(KeyId(k), ReplicaId(2 * k + r), LIFETIME);
        }
    }
    net.quiesce();

    // Queries build caches and interest trees (cross-shard by
    // construction: 4 shards of 48 nodes, CAN neighbors are scattered).
    query_phase(&net, 1);

    // Two refresh rounds with no interleaved queries: round one is the
    // second-chance policy's grace interval, round two drives cut-offs
    // at unqueried leaves — clear-bit traffic flowing shard-to-shard.
    for round in 0..2 {
        for k in 0..KEYS {
            net.replica_refresh(KeyId(k), ReplicaId(2 * k + (round % 2)), LIFETIME);
        }
        net.quiesce();
    }

    // Withdraw one replica per key; deletes walk the (pruned) trees.
    for k in 0..KEYS {
        net.replica_deletion(KeyId(k), ReplicaId(2 * k));
        net.quiesce();
    }

    // A second query pass over the surviving replicas.
    query_phase(&net, 2);

    assert_eq!(net.routing_failures(), 0);
    let hops = net.hops();
    let cross_shard = net.cross_shard_messages();
    let nodes = net.shutdown();
    assert_eq!(nodes.len(), NODES);
    (nodes.iter().map(|n| n.stats).collect(), hops, cross_shard)
}

#[test]
fn multi_worker_run_matches_single_worker_run() {
    let (multi, multi_hops, multi_cross) = run_script(4, ShardMapMode::Contiguous);
    let (single, single_hops, single_cross) = run_script(1, ShardMapMode::Contiguous);

    assert_eq!(single_cross, 0, "one shard has no boundary to cross");
    assert!(
        multi_cross > 0,
        "a 4-shard run must push messages through mailboxes"
    );

    // Shard-count independence: identical traffic volume and identical
    // final protocol state, node by node.
    assert_eq!(multi_hops, single_hops, "hop counts diverged");
    for (i, (m, s)) in multi.iter().zip(&single).enumerate() {
        assert_eq!(m, s, "node n{i}: per-node stats diverged across shardings");
    }

    // The script really exercised every message family.
    let mut total = NodeStats::default();
    for s in &multi {
        total.merge(s);
    }
    assert_eq!(
        total.client_queries,
        (2 * THREADS * QUERIES_PER_THREAD) as u64
    );
    assert!(total.updates_received > 0, "update traffic flowed");
    assert!(
        total.cutoffs > 0 && total.clear_bits_sent > 0,
        "the refresh starvation rounds must provoke clear-bit traffic \
         (cutoffs {}, clear-bits {})",
        total.cutoffs,
        total.clear_bits_sent
    );
    assert!(
        total.clear_bits_received > 0,
        "clear-bits must actually arrive upstream"
    );
}

#[test]
fn stress_script_is_reproducible_per_sharding() {
    let (a, a_hops, _) = run_script(4, ShardMapMode::Contiguous);
    let (b, b_hops, _) = run_script(4, ShardMapMode::Contiguous);
    assert_eq!(a_hops, b_hops);
    assert_eq!(a, b, "same sharding, same seed, same outcome");
}

#[test]
fn shard_map_mode_is_invisible_to_the_protocol() {
    let (contig, contig_hops, contig_cross) = run_script(4, ShardMapMode::Contiguous);
    let (aware, aware_hops, aware_cross) = run_script(4, ShardMapMode::OverlayAware);

    // Placement is a performance knob, not a semantic one: the same
    // script leaves every node in byte-identical final state and pays
    // the same protocol-level traffic under either cut.
    assert_eq!(aware_hops, contig_hops, "hop counts diverged across maps");
    for (i, (a, c)) in aware.iter().zip(&contig).enumerate() {
        assert_eq!(a, c, "node n{i}: per-node stats diverged across shard maps");
    }

    // What *does* move is the cross-shard ratio: co-locating CAN zone
    // neighbors keeps neighbor-heavy traffic intra-shard.
    assert!(
        aware_cross < contig_cross,
        "overlay-aware placement must cut cross-shard traffic \
         (aware {aware_cross}, contiguous {contig_cross})"
    );
}
