//! Per-key bookkeeping at a node (§2.3).
//!
//! For every non-local key a node has seen, it keeps the cached index
//! entries, the Pending-First-Update flag, the interest record over
//! neighbors, the popularity measure, and any local clients whose
//! connections are held open awaiting a fresh answer.

use cup_des::{ReplicaId, SimTime};

use crate::audit::AuditTally;
use crate::entry::IndexEntry;
use crate::interest::InterestSet;
use crate::message::{ClientId, Requester, Update, UpdateKind};
use crate::policy::PolicyState;
use crate::popularity::Popularity;

/// How many delete tombstones a key keeps (oldest evicted first; a
/// dropped tombstone's entry has long expired anyway).
const RETIRED_CAP: usize = 8;

/// All state a node keeps for one cached (non-local) key.
#[derive(Debug, Clone, Default)]
pub struct KeyState {
    /// Cached index entries (disjoint from any local directory).
    entries: Vec<IndexEntry>,
    /// Set while a first-time update is awaited; coalesces query bursts.
    pub pending_first_update: bool,
    /// When the flag was set (guards against lost responses).
    pub pfu_since: SimTime,
    /// Which neighbors want updates for this key.
    pub interest: InterestSet,
    /// Popularity measure driving cut-off decisions.
    pub popularity: Popularity,
    /// Per-key propagation-policy decision state (interval observations
    /// and, for the adaptive policy, its tuned tolerance).
    pub policy_state: PolicyState,
    /// Local clients with connections held open (CUP mode; §2.5).
    pub waiting_clients: Vec<ClientId>,
    /// Pending requesters in standard-caching mode (per-query response
    /// routing, no coalescing).
    pub pending_requesters: Vec<Requester>,
    /// Distance from the authority as carried by the most recent update.
    pub last_depth: u32,
    /// Delete tombstones: replicas this node has seen retired, newest
    /// last. This is the firsthand negative knowledge the sampled cache
    /// audit exchanges — a node that only *lacks* an entry cannot say
    /// whether it never knew it or saw it die.
    pub retired: Vec<ReplicaId>,
    /// When this key was last audited here (the audit rate-limit anchor).
    pub last_audit: SimTime,
    /// Audit rounds started here for this key (the probe round nonce).
    pub audit_round: u64,
    /// The in-flight audit round's tally, if one is open.
    pub audit: Option<AuditTally>,
}

impl KeyState {
    /// Creates empty state for a key.
    pub fn new() -> Self {
        KeyState::default()
    }

    /// The cached entries that are still fresh at `now`.
    pub fn fresh_entries(&self, now: SimTime) -> Vec<IndexEntry> {
        self.entries
            .iter()
            .filter(|e| e.is_fresh(now))
            .copied()
            .collect()
    }

    /// Returns `true` if at least one cached entry is fresh.
    pub fn has_fresh(&self, now: SimTime) -> bool {
        self.entries.iter().any(|e| e.is_fresh(now))
    }

    /// Returns `true` if the key has never had entries cached (first-time
    /// miss) as opposed to holding only expired entries (freshness miss).
    pub fn never_cached(&self) -> bool {
        self.entries.is_empty()
    }

    /// All cached entries, fresh or not.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Applies an update to the cached entry set.
    ///
    /// First-time updates replace the whole set (they carry the
    /// authoritative fresh answer); refreshes and appends upsert the entry
    /// for their replica; deletes remove it.
    pub fn apply(&mut self, update: &Update) {
        match update.kind {
            UpdateKind::FirstTime => {
                self.entries = update.entries.clone();
            }
            UpdateKind::Refresh | UpdateKind::Append => {
                for e in &update.entries {
                    self.upsert(*e);
                }
            }
            UpdateKind::Delete => {
                self.entries.retain(|e| e.replica != update.replica);
                self.popularity.untrack_if(update.replica);
                self.mark_retired(update.replica);
            }
        }
        self.last_depth = update.depth;
    }

    /// Records that `replica` was seen retired (bounded, deduplicated).
    pub fn mark_retired(&mut self, replica: ReplicaId) {
        if self.retired.contains(&replica) {
            return;
        }
        if self.retired.len() == RETIRED_CAP {
            self.retired.remove(0);
        }
        self.retired.push(replica);
    }

    /// Applies an audit repair: evicts the condemned replicas (marking
    /// them retired) and adopts the quorum's fresh entries for replicas
    /// this node does not already serve — the "evict and refetch" step.
    pub fn audit_repair(&mut self, evict: &[ReplicaId], adopt: &[IndexEntry]) {
        for &replica in evict {
            self.entries.retain(|e| e.replica != replica);
            self.popularity.untrack_if(replica);
            self.mark_retired(replica);
        }
        for entry in adopt {
            if !self.retired.contains(&entry.replica)
                && !self.entries.iter().any(|e| e.replica == entry.replica)
            {
                self.entries.push(*entry);
            }
        }
    }

    /// Inserts or replaces the entry for one replica.
    fn upsert(&mut self, entry: IndexEntry) {
        match self.entries.iter_mut().find(|e| e.replica == entry.replica) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Drops expired entries (housekeeping; freshness checks are already
    /// time-based so this only bounds memory).
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.is_fresh(now));
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::{KeyId, ReplicaId, SimDuration};

    fn entry(replica: u32, at: u64, life: u64) -> IndexEntry {
        IndexEntry::new(
            KeyId(1),
            ReplicaId(replica),
            SimDuration::from_secs(life),
            SimTime::from_secs(at),
        )
    }

    fn update(kind: UpdateKind, replica: u32, entries: Vec<IndexEntry>) -> Update {
        Update {
            key: KeyId(1),
            kind,
            entries,
            replica: ReplicaId(replica),
            depth: 2,
            origin: SimTime::ZERO,
            window_end: SimTime::MAX,
        }
    }

    #[test]
    fn fresh_filtering() {
        let mut st = KeyState::new();
        st.apply(&update(
            UpdateKind::FirstTime,
            0,
            vec![entry(0, 0, 100), entry(1, 0, 500)],
        ));
        let now = SimTime::from_secs(200);
        assert!(st.has_fresh(now));
        let fresh = st.fresh_entries(now);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].replica, ReplicaId(1));
        assert!(!st.never_cached());
        assert_eq!(st.last_depth, 2);
    }

    #[test]
    fn first_time_replaces_set() {
        let mut st = KeyState::new();
        st.apply(&update(UpdateKind::FirstTime, 0, vec![entry(0, 0, 100)]));
        st.apply(&update(UpdateKind::FirstTime, 1, vec![entry(1, 0, 100)]));
        assert_eq!(st.entries().len(), 1);
        assert_eq!(st.entries()[0].replica, ReplicaId(1));
    }

    #[test]
    fn refresh_upserts() {
        let mut st = KeyState::new();
        st.apply(&update(UpdateKind::Refresh, 0, vec![entry(0, 0, 100)]));
        assert_eq!(st.entries().len(), 1);
        st.apply(&update(UpdateKind::Refresh, 0, vec![entry(0, 100, 100)]));
        assert_eq!(st.entries().len(), 1, "refresh must not duplicate");
        assert!(st.has_fresh(SimTime::from_secs(150)));
    }

    #[test]
    fn append_adds_delete_removes() {
        let mut st = KeyState::new();
        st.apply(&update(UpdateKind::Append, 0, vec![entry(0, 0, 100)]));
        st.apply(&update(UpdateKind::Append, 1, vec![entry(1, 0, 100)]));
        assert_eq!(st.entries().len(), 2);
        st.apply(&update(UpdateKind::Delete, 0, vec![entry(0, 0, 100)]));
        assert_eq!(st.entries().len(), 1);
        assert_eq!(st.entries()[0].replica, ReplicaId(1));
    }

    #[test]
    fn delete_untracks_replica() {
        let mut st = KeyState::new();
        use crate::popularity::ResetMode;
        st.popularity
            .on_update(ReplicaId(0), ResetMode::ReplicaIndependent);
        assert_eq!(st.popularity.tracked_replica(), Some(ReplicaId(0)));
        st.apply(&update(UpdateKind::Delete, 0, vec![entry(0, 0, 100)]));
        assert_eq!(st.popularity.tracked_replica(), None);
    }

    #[test]
    fn evict_expired_drops_only_stale() {
        let mut st = KeyState::new();
        st.apply(&update(
            UpdateKind::FirstTime,
            0,
            vec![entry(0, 0, 100), entry(1, 0, 500)],
        ));
        let evicted = st.evict_expired(SimTime::from_secs(200));
        assert_eq!(evicted, 1);
        assert_eq!(st.entries().len(), 1);
    }

    #[test]
    fn deletes_leave_tombstones_and_repairs_evict_and_refetch() {
        let mut st = KeyState::new();
        st.apply(&update(
            UpdateKind::FirstTime,
            0,
            vec![entry(0, 0, 100), entry(1, 0, 100)],
        ));
        st.apply(&update(UpdateKind::Delete, 0, vec![entry(0, 0, 100)]));
        assert_eq!(st.retired, vec![ReplicaId(0)], "delete tombstones");
        st.apply(&update(UpdateKind::Delete, 0, vec![entry(0, 0, 100)]));
        assert_eq!(st.retired.len(), 1, "tombstones dedup");

        // Repair: evict a served replica, adopt the quorum's entries —
        // except ones we have tombstones for.
        st.audit_repair(&[ReplicaId(1)], &[entry(0, 50, 100), entry(2, 50, 100)]);
        assert_eq!(st.entries().len(), 1);
        assert_eq!(st.entries()[0].replica, ReplicaId(2));
        assert!(st.retired.contains(&ReplicaId(1)), "eviction tombstones");
        // The cap bounds the list.
        for r in 10..30 {
            st.mark_retired(ReplicaId(r));
        }
        assert_eq!(st.retired.len(), 8);
        assert!(st.retired.contains(&ReplicaId(29)), "newest kept");
    }

    #[test]
    fn never_cached_vs_expired() {
        let mut st = KeyState::new();
        assert!(st.never_cached());
        st.apply(&update(UpdateKind::FirstTime, 0, vec![entry(0, 0, 10)]));
        assert!(!st.never_cached());
        assert!(!st.has_fresh(SimTime::from_secs(20)), "expired, not absent");
    }
}
