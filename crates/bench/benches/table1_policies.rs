//! Table 1: total cost for varying cut-off policies.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::Scale;
use cup_simnet::{report, sweeps};

fn table1(c: &mut Criterion) {
    let scale = Scale::Bench;
    let base = scale.base_scenario();
    let rates = scale.rates();
    let levels = scale.push_levels();

    let rows = sweeps::policy_table(&base, &rates, &levels);
    println!("\n{}", report::render_policy_table(&rows, &rates));

    let mut group = c.benchmark_group("table1_policies");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| sweeps::policy_table(&base, &rates, &levels))
    });
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
