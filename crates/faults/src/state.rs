//! The live fault plane: current loss/crash/partition state plus the
//! deterministic drop decision both runtimes share.

use std::collections::HashMap;

use cup_core::{Message, UpdateKind};
use cup_des::NodeId;

use crate::plan::{Behavior, FaultAction};

/// What the fault plane says about one about-to-be-sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropVerdict {
    /// Deliver normally.
    Deliver,
    /// Dropped by probabilistic link loss.
    Loss,
    /// Dropped because sender and receiver sit in different partition
    /// groups.
    Partitioned,
    /// Dropped because the receiver is crashed.
    TargetCrashed,
}

/// Fault-plane counters, identical in shape across the DES and the live
/// runtime (the conformance harness compares them field by field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped by probabilistic link loss.
    pub dropped_loss: u64,
    /// Messages dropped at a partition boundary.
    pub dropped_partition: u64,
    /// Messages dropped because their receiver was crashed.
    pub dropped_to_crashed: u64,
    /// Crash actions applied (to previously live nodes).
    pub crashes: u64,
    /// Restart actions applied (to previously crashed nodes).
    pub restarts: u64,
    /// Client queries swallowed because the posting node was crashed.
    pub queries_at_crashed: u64,
    /// Replica lifecycle events lost at a crashed authority.
    pub replica_at_crashed: u64,
    /// Outbound maintenance updates a `drop-updates` node suppressed
    /// before they entered any queue.
    pub byz_updates_dropped: u64,
    /// Inbound deletions and audit repairs a `stale-serve` node swallowed
    /// after delivery (the hop was paid; the node ignored the content).
    pub byz_updates_swallowed: u64,
    /// Deletions a `lie-refresh` node rewrote into refreshes on the way
    /// out (delivered, but carrying a false version).
    pub byz_refresh_lies: u64,
}

impl FaultCounters {
    /// Total messages the fault plane dropped (suppressed sends count;
    /// swallowed-after-delivery and rewritten messages do not).
    pub fn dropped(&self) -> u64 {
        self.dropped_loss
            + self.dropped_partition
            + self.dropped_to_crashed
            + self.byz_updates_dropped
    }
}

/// An active partition: group assignment by seeded hash.
#[derive(Debug, Clone, Copy)]
struct Partition {
    groups: u32,
    salt: u64,
}

/// The mutable fault plane consulted on every send.
///
/// Drop decisions are *counter-mode*: message `n` on link `(from, to)`
/// hashes `(seed, epoch, from, to, n)` into a uniform variate compared
/// against the loss rate. The per-link counters are advanced only by the
/// sender's execution context (drops are decided before enqueue), so the
/// DES and a sharded live run consume them in the same per-link order and
/// reach identical verdicts.
#[derive(Debug)]
pub struct FaultState {
    seed: u64,
    /// Bumped on every applied action: successive loss phases draw from
    /// decorrelated hash streams.
    epoch: u64,
    loss_rate: f64,
    latency_factor: f64,
    crashed: Vec<bool>,
    crashed_count: usize,
    partition: Option<Partition>,
    link_seq: HashMap<(u32, u32), u64>,
    /// Per-node behavior override bitmasks (see the `*_BIT` consts).
    behaviors: Vec<u8>,
    /// How many behavior bits are set across all nodes (hot-path gate).
    behavior_count: usize,
    /// What the plane has dropped and toggled so far.
    pub counters: FaultCounters,
}

/// Behavior bitmask: the node swallows inbound deletions/audit repairs.
const STALE_SERVE_BIT: u8 = 1;
/// Behavior bitmask: the node suppresses outbound maintenance updates.
const DROP_UPDATES_BIT: u8 = 1 << 1;
/// Behavior bitmask: the node rewrites outbound deletions into refreshes.
const LIE_REFRESH_BIT: u8 = 1 << 2;

fn behavior_bit(behavior: Behavior) -> u8 {
    match behavior {
        Behavior::StaleServe => STALE_SERVE_BIT,
        Behavior::DropUpdates => DROP_UPDATES_BIT,
        Behavior::LieRefresh => LIE_REFRESH_BIT,
    }
}

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash (53 high bits, like `DetRng::next_f64`).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultState {
    /// A fault-free plane keyed by `seed` (derive the seed from the
    /// experiment's `DetRng` so fault decisions are part of the same
    /// reproducible universe).
    pub fn new(seed: u64) -> Self {
        FaultState {
            seed,
            epoch: 0,
            loss_rate: 0.0,
            latency_factor: 1.0,
            crashed: Vec::new(),
            crashed_count: 0,
            partition: None,
            link_seq: HashMap::new(),
            behaviors: Vec::new(),
            behavior_count: 0,
            counters: FaultCounters::default(),
        }
    }

    /// Returns `true` while any fault is in effect (the hot-path gate:
    /// an inactive plane never touches the per-link counters).
    pub fn active(&self) -> bool {
        self.loss_rate > 0.0
            || self.crashed_count > 0
            || self.partition.is_some()
            || self.latency_factor != 1.0
            || self.behavior_count > 0
    }

    /// The current per-hop latency multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Returns `true` if `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.get(node.index()).copied().unwrap_or(false)
    }

    /// The partition group of `node` under the active partition, if any.
    pub fn partition_group(&self, node: NodeId) -> Option<u32> {
        self.partition
            .map(|p| (mix64(p.salt ^ (node.index() as u64)) % u64::from(p.groups)) as u32)
    }

    /// Applies one action to the plane. Crash/restart verdicts change
    /// here; the embedding runtime is responsible for the matching state
    /// wipe (the plane has no access to node internals).
    ///
    /// Returns `true` if the action changed anything (a crash of an
    /// already-crashed node, or a restart of a live one, is a no-op).
    pub fn apply(&mut self, action: FaultAction) -> bool {
        self.epoch += 1;
        match action {
            FaultAction::SetLoss { rate } => {
                self.loss_rate = rate.clamp(0.0, 1.0);
                true
            }
            FaultAction::SetLatencyFactor { factor } => {
                self.latency_factor = if factor.is_finite() && factor > 0.0 {
                    factor
                } else {
                    1.0
                };
                true
            }
            FaultAction::Crash { node } => {
                if self.crashed.len() <= node {
                    self.crashed.resize(node + 1, false);
                }
                if self.crashed[node] {
                    return false;
                }
                self.crashed[node] = true;
                self.crashed_count += 1;
                self.counters.crashes += 1;
                true
            }
            FaultAction::Restart { node } => {
                if !self.crashed.get(node).copied().unwrap_or(false) {
                    return false;
                }
                self.crashed[node] = false;
                self.crashed_count -= 1;
                self.counters.restarts += 1;
                true
            }
            FaultAction::Partition { groups } => {
                self.partition = Some(Partition {
                    groups: groups.max(2),
                    salt: mix64(self.seed ^ self.epoch),
                });
                true
            }
            FaultAction::Heal => {
                self.partition = None;
                true
            }
            FaultAction::SetBehavior { node, behavior } => {
                if self.behaviors.len() <= node {
                    self.behaviors.resize(node + 1, 0);
                }
                let bit = behavior_bit(behavior);
                if self.behaviors[node] & bit != 0 {
                    return false;
                }
                self.behaviors[node] |= bit;
                self.behavior_count += 1;
                true
            }
            FaultAction::ClearBehavior { node, behavior } => {
                let bit = behavior_bit(behavior);
                if self.behaviors.get(node).copied().unwrap_or(0) & bit == 0 {
                    return false;
                }
                self.behaviors[node] &= !bit;
                self.behavior_count -= 1;
                true
            }
        }
    }

    /// Returns `true` if `node` currently has `behavior` installed.
    pub fn has_behavior(&self, node: NodeId, behavior: Behavior) -> bool {
        self.behaviors.get(node.index()).copied().unwrap_or(0) & behavior_bit(behavior) != 0
    }

    /// Sender-side behavior gate, called once per peer send *before*
    /// [`FaultState::roll`] (a suppressed message never advances the
    /// per-link loss counter and never enters a queue, in either
    /// runtime). May rewrite the message in place (`lie-refresh`).
    ///
    /// Returns `false` if the send must be suppressed.
    pub fn behavior_send(&mut self, from: NodeId, msg: &mut Message) -> bool {
        if self.behavior_count == 0 {
            return true;
        }
        let mask = self.behaviors.get(from.index()).copied().unwrap_or(0);
        if mask == 0 {
            return true;
        }
        if let Message::Update(update) = msg {
            // Drop-updates: maintenance traffic dies here; first-time
            // answers (and queries, clear-bits, audits) still flow, so
            // the node looks healthy while starving its subtree.
            if mask & DROP_UPDATES_BIT != 0 && update.kind != UpdateKind::FirstTime {
                self.counters.byz_updates_dropped += 1;
                return false;
            }
            // Lie-refresh: a forwarded deletion becomes a refresh. The
            // delete carries the entry being removed (with its original,
            // still-running lifetime), so the kind flip alone resurrects
            // the dead replica downstream.
            if mask & LIE_REFRESH_BIT != 0 && update.kind == UpdateKind::Delete {
                update.kind = UpdateKind::Refresh;
                self.counters.byz_refresh_lies += 1;
            }
        }
        true
    }

    /// Receiver-side behavior gate, called after delivery accounting
    /// (the hop is paid) and the crashed-receiver check, *before* the
    /// protocol handler runs.
    ///
    /// Returns `false` if the node swallows the message: a `stale-serve`
    /// node ignores inbound deletions and audit repairs, so it keeps
    /// serving entries the rest of the network has retired. It still
    /// answers audit probes — with its poisoned entries.
    pub fn behavior_recv(&mut self, to: NodeId, msg: &Message) -> bool {
        if self.behavior_count == 0 {
            return true;
        }
        let mask = self.behaviors.get(to.index()).copied().unwrap_or(0);
        if mask & STALE_SERVE_BIT == 0 {
            return true;
        }
        let swallowed = match msg {
            Message::Update(update) => update.kind == UpdateKind::Delete,
            Message::AuditReply { .. } => true,
            _ => false,
        };
        if swallowed {
            self.counters.byz_updates_swallowed += 1;
        }
        !swallowed
    }

    /// Decides the fate of one message about to be sent on `(from, to)`,
    /// counting any drop. Call exactly once per send, sender-side, before
    /// the message enters any queue.
    pub fn roll(&mut self, from: NodeId, to: NodeId) -> DropVerdict {
        if !self.active() {
            return DropVerdict::Deliver;
        }
        if self.is_crashed(to) {
            self.counters.dropped_to_crashed += 1;
            return DropVerdict::TargetCrashed;
        }
        if self.partition.is_some() && self.partition_group(from) != self.partition_group(to) {
            self.counters.dropped_partition += 1;
            return DropVerdict::Partitioned;
        }
        if self.loss_rate > 0.0 {
            let seq = self
                .link_seq
                .entry((from.index() as u32, to.index() as u32))
                .or_insert(0);
            let n = *seq;
            *seq += 1;
            let h = mix64(
                self.seed
                    ^ mix64(
                        self.epoch
                            ^ mix64(((from.index() as u64) << 32 | to.index() as u64) ^ mix64(n)),
                    ),
            );
            if unit(h) < self.loss_rate {
                self.counters.dropped_loss += 1;
                return DropVerdict::Loss;
            }
        }
        DropVerdict::Deliver
    }

    /// Records a client query swallowed at a crashed node.
    pub fn note_query_at_crashed(&mut self) {
        self.counters.queries_at_crashed += 1;
    }

    /// Records a replica lifecycle event lost at a crashed authority.
    pub fn note_replica_at_crashed(&mut self) {
        self.counters.replica_at_crashed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn inactive_plane_delivers_everything() {
        let mut st = FaultState::new(1);
        assert!(!st.active());
        for i in 0..100 {
            assert_eq!(st.roll(n(i), n(i + 1)), DropVerdict::Deliver);
        }
        assert_eq!(st.counters, FaultCounters::default());
    }

    #[test]
    fn loss_rate_drops_about_the_right_fraction() {
        let mut st = FaultState::new(7);
        st.apply(FaultAction::SetLoss { rate: 0.2 });
        let total = 10_000u32;
        let mut dropped = 0u32;
        for i in 0..total {
            if st.roll(n(i % 50), n((i + 1) % 50)) == DropVerdict::Loss {
                dropped += 1;
            }
        }
        assert_eq!(u64::from(dropped), st.counters.dropped_loss);
        let rate = f64::from(dropped) / f64::from(total);
        assert!(
            (0.17..0.23).contains(&rate),
            "empirical loss {rate} far from 0.2"
        );
    }

    #[test]
    fn rolls_are_reproducible_and_link_local() {
        let script = |st: &mut FaultState| -> Vec<DropVerdict> {
            st.apply(FaultAction::SetLoss { rate: 0.5 });
            (0..64).map(|i| st.roll(n(i % 4), n(4 + i % 3))).collect()
        };
        let a = script(&mut FaultState::new(42));
        let b = script(&mut FaultState::new(42));
        assert_eq!(a, b, "same seed, same verdicts");
        let c = script(&mut FaultState::new(43));
        assert_ne!(a, c, "different seeds diverge");

        // Link-locality: interleaving traffic on other links must not
        // perturb a given link's verdict sequence.
        let mut lone = FaultState::new(9);
        lone.apply(FaultAction::SetLoss { rate: 0.5 });
        let solo: Vec<DropVerdict> = (0..32).map(|_| lone.roll(n(1), n(2))).collect();
        let mut busy = FaultState::new(9);
        busy.apply(FaultAction::SetLoss { rate: 0.5 });
        let mut interleaved = Vec::new();
        for _ in 0..32 {
            busy.roll(n(7), n(8));
            interleaved.push(busy.roll(n(1), n(2)));
            busy.roll(n(3), n(1));
        }
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn crash_restart_toggle_and_count_once() {
        let mut st = FaultState::new(3);
        assert!(st.apply(FaultAction::Crash { node: 5 }));
        assert!(!st.apply(FaultAction::Crash { node: 5 }), "idempotent");
        assert!(st.is_crashed(n(5)));
        assert!(st.active());
        assert_eq!(st.roll(n(1), n(5)), DropVerdict::TargetCrashed);
        assert_eq!(st.roll(n(1), n(2)), DropVerdict::Deliver);
        assert!(st.apply(FaultAction::Restart { node: 5 }));
        assert!(!st.apply(FaultAction::Restart { node: 5 }));
        assert!(!st.is_crashed(n(5)));
        assert!(!st.active());
        assert_eq!(st.counters.crashes, 1);
        assert_eq!(st.counters.restarts, 1);
        assert_eq!(st.counters.dropped_to_crashed, 1);
    }

    #[test]
    fn partition_splits_and_heals() {
        let mut st = FaultState::new(11);
        st.apply(FaultAction::Partition { groups: 2 });
        let groups: Vec<u32> = (0..64).map(|i| st.partition_group(n(i)).unwrap()).collect();
        assert!(groups.contains(&0) && groups.contains(&1));
        let (a, b) = (
            groups.iter().position(|&g| g == 0).unwrap() as u32,
            groups.iter().position(|&g| g == 1).unwrap() as u32,
        );
        assert_eq!(st.roll(n(a), n(b)), DropVerdict::Partitioned);
        let same: Vec<u32> = (0..64).filter(|&i| groups[i as usize] == 0).collect();
        assert_eq!(st.roll(n(same[0]), n(same[1])), DropVerdict::Deliver);
        st.apply(FaultAction::Heal);
        assert_eq!(st.partition_group(n(a)), None);
        assert_eq!(st.roll(n(a), n(b)), DropVerdict::Deliver);
        assert_eq!(st.counters.dropped_partition, 1);
    }

    #[test]
    fn epochs_decorrelate_loss_phases() {
        // The same link sequence under the same rate in two different
        // epochs must not produce the same drop pattern.
        let mut st = FaultState::new(5);
        st.apply(FaultAction::SetLoss { rate: 0.5 });
        let phase1: Vec<DropVerdict> = (0..64).map(|_| st.roll(n(0), n(1))).collect();
        st.apply(FaultAction::SetLoss { rate: 0.0 });
        st.apply(FaultAction::SetLoss { rate: 0.5 });
        let phase2: Vec<DropVerdict> = (0..64).map(|_| st.roll(n(0), n(1))).collect();
        assert_ne!(phase1, phase2);
    }

    #[test]
    fn behavior_overrides_toggle_and_gate_active() {
        let mut st = FaultState::new(4);
        assert!(!st.active());
        assert!(st.apply(FaultAction::SetBehavior {
            node: 3,
            behavior: Behavior::StaleServe,
        }));
        assert!(st.active(), "a behavior override arms the plane");
        assert!(
            !st.apply(FaultAction::SetBehavior {
                node: 3,
                behavior: Behavior::StaleServe,
            }),
            "idempotent"
        );
        assert!(st.has_behavior(n(3), Behavior::StaleServe));
        assert!(!st.has_behavior(n(3), Behavior::LieRefresh));
        // Independent bits on the same node.
        assert!(st.apply(FaultAction::SetBehavior {
            node: 3,
            behavior: Behavior::DropUpdates,
        }));
        assert!(st.apply(FaultAction::ClearBehavior {
            node: 3,
            behavior: Behavior::StaleServe,
        }));
        assert!(!st.apply(FaultAction::ClearBehavior {
            node: 3,
            behavior: Behavior::StaleServe,
        }));
        assert!(st.has_behavior(n(3), Behavior::DropUpdates));
        assert!(st.apply(FaultAction::ClearBehavior {
            node: 3,
            behavior: Behavior::DropUpdates,
        }));
        assert!(!st.active(), "all overrides lifted");
        // Honest messages were never perturbed.
        assert_eq!(st.counters.byz_updates_dropped, 0);
        assert_eq!(st.counters.byz_refresh_lies, 0);
    }

    #[test]
    fn behavior_send_suppresses_and_rewrites() {
        use cup_core::{IndexEntry, Update};
        use cup_des::{KeyId, ReplicaId, SimDuration, SimTime};

        let key = KeyId(7);
        let entry = IndexEntry::new(
            key,
            ReplicaId(2),
            SimDuration::from_secs(100),
            SimTime::ZERO,
        );
        let update = |kind: UpdateKind| {
            Message::Update(Update {
                key,
                kind,
                entries: vec![entry],
                replica: ReplicaId(2),
                depth: 1,
                origin: SimTime::ZERO,
                window_end: SimTime::MAX,
            })
        };

        let mut st = FaultState::new(6);
        st.apply(FaultAction::SetBehavior {
            node: 1,
            behavior: Behavior::DropUpdates,
        });
        st.apply(FaultAction::SetBehavior {
            node: 2,
            behavior: Behavior::LieRefresh,
        });

        // Drop-updates: maintenance suppressed, first-time and queries flow.
        let mut msg = update(UpdateKind::Refresh);
        assert!(!st.behavior_send(n(1), &mut msg));
        let mut msg = update(UpdateKind::Delete);
        assert!(!st.behavior_send(n(1), &mut msg));
        let mut msg = update(UpdateKind::FirstTime);
        assert!(st.behavior_send(n(1), &mut msg));
        let mut msg = Message::Query { key };
        assert!(st.behavior_send(n(1), &mut msg));
        assert_eq!(st.counters.byz_updates_dropped, 2);
        assert_eq!(st.counters.dropped(), 2, "suppressed sends count as drops");

        // Lie-refresh: deletions flip kind in place, everything delivered.
        let mut msg = update(UpdateKind::Delete);
        assert!(st.behavior_send(n(2), &mut msg));
        match &msg {
            Message::Update(u) => assert_eq!(u.kind, UpdateKind::Refresh),
            other => panic!("unexpected {other:?}"),
        }
        let mut msg = update(UpdateKind::Append);
        assert!(st.behavior_send(n(2), &mut msg));
        match &msg {
            Message::Update(u) => assert_eq!(u.kind, UpdateKind::Append),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.counters.byz_refresh_lies, 1);

        // Honest senders are untouched.
        let mut msg = update(UpdateKind::Delete);
        assert!(st.behavior_send(n(0), &mut msg));
        match &msg {
            Message::Update(u) => assert_eq!(u.kind, UpdateKind::Delete),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn behavior_recv_swallows_deletes_and_repairs_at_stale_servers() {
        use cup_core::Update;
        use cup_des::{KeyId, ReplicaId, SimTime};

        let key = KeyId(3);
        let delete = Message::Update(Update {
            key,
            kind: UpdateKind::Delete,
            entries: Vec::new(),
            replica: ReplicaId(1),
            depth: 1,
            origin: SimTime::ZERO,
            window_end: SimTime::MAX,
        });
        let reply = Message::AuditReply {
            key,
            round: 1,
            entries: Vec::new(),
            retired: vec![ReplicaId(1)],
        };
        let probe = Message::AuditProbe { key, round: 1 };

        let mut st = FaultState::new(8);
        st.apply(FaultAction::SetBehavior {
            node: 5,
            behavior: Behavior::StaleServe,
        });
        assert!(!st.behavior_recv(n(5), &delete), "deletion swallowed");
        assert!(!st.behavior_recv(n(5), &reply), "audit repair swallowed");
        assert!(st.behavior_recv(n(5), &probe), "still answers audit probes");
        assert!(st.behavior_recv(n(5), &Message::Query { key }));
        assert!(st.behavior_recv(n(4), &delete), "honest nodes unaffected");
        assert_eq!(st.counters.byz_updates_swallowed, 2);
        assert_eq!(st.counters.dropped(), 0, "the hop was already paid");
    }

    #[test]
    fn latency_factor_and_notes() {
        let mut st = FaultState::new(2);
        assert_eq!(st.latency_factor(), 1.0);
        st.apply(FaultAction::SetLatencyFactor { factor: 2.5 });
        assert_eq!(st.latency_factor(), 2.5);
        assert!(st.active());
        st.note_query_at_crashed();
        st.note_replica_at_crashed();
        assert_eq!(st.counters.queries_at_crashed, 1);
        assert_eq!(st.counters.replica_at_crashed, 1);
        assert_eq!(st.counters.dropped(), 0);
    }
}
