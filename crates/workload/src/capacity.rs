//! Outgoing-capacity degradation schedules (§3.7).
//!
//! The paper's two configurations, on a network of 1024 nodes with a
//! five-minute warm-up:
//!
//! * **Up-And-Down**: every epoch, 20 % of nodes are randomly selected and
//!   reduced to capacity `c` for ten minutes, then return to full capacity
//!   for a five-minute stabilization; this repeats for the whole query
//!   window, so "capacity loss occurs three times during the simulation".
//! * **Once-Down-Always-Down**: after the warm-up, the randomly selected
//!   nodes stay at reduced capacity for the remainder of the experiment.

use cup_des::{DetRng, SimDuration, SimTime};

/// One capacity change: at `at`, the listed nodes switch to `capacity`.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityEpoch {
    /// When the change takes effect.
    pub at: SimTime,
    /// Dense node indices affected.
    pub nodes: Vec<usize>,
    /// New capacity fraction in `[0, 1]` (1 = full).
    pub capacity: f64,
}

/// Which degradation pattern to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityProfile {
    /// All nodes at full capacity (the default for §3.3–§3.6).
    Full,
    /// §3.7 "Up-And-Down".
    UpAndDown {
        /// Fraction of nodes degraded each epoch (paper: 0.2).
        fraction: f64,
        /// Reduced capacity during the down phase.
        reduced: f64,
    },
    /// §3.7 "Once-Down-Always-Down".
    OnceDownAlwaysDown {
        /// Fraction of nodes degraded (paper: 0.2).
        fraction: f64,
        /// Reduced capacity after the warm-up.
        reduced: f64,
    },
}

impl CapacityProfile {
    /// The paper's phase lengths.
    const WARMUP: SimDuration = SimDuration::from_secs(300);
    const DOWN: SimDuration = SimDuration::from_secs(600);
    const STABILIZE: SimDuration = SimDuration::from_secs(300);

    /// Expands the profile into a schedule of epochs over the query
    /// window `[start, end)` for `node_count` nodes.
    pub fn schedule(
        &self,
        node_count: usize,
        start: SimTime,
        end: SimTime,
        rng: &mut DetRng,
    ) -> Vec<CapacityEpoch> {
        match *self {
            CapacityProfile::Full => Vec::new(),
            CapacityProfile::OnceDownAlwaysDown { fraction, reduced } => {
                let k = (node_count as f64 * fraction).round() as usize;
                vec![CapacityEpoch {
                    at: start + Self::WARMUP,
                    nodes: rng.sample_indices(node_count, k),
                    capacity: reduced,
                }]
            }
            CapacityProfile::UpAndDown { fraction, reduced } => {
                let k = (node_count as f64 * fraction).round() as usize;
                let mut epochs = Vec::new();
                let mut t = start + Self::WARMUP;
                while t < end {
                    let nodes = rng.sample_indices(node_count, k);
                    epochs.push(CapacityEpoch {
                        at: t,
                        nodes: nodes.clone(),
                        capacity: reduced,
                    });
                    let up_at = t + Self::DOWN;
                    epochs.push(CapacityEpoch {
                        at: up_at,
                        nodes,
                        capacity: 1.0,
                    });
                    t = up_at + Self::STABILIZE;
                }
                epochs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const START: SimTime = SimTime::from_secs(0);
    const END: SimTime = SimTime::from_secs(3_000);

    #[test]
    fn full_profile_is_empty() {
        let mut rng = DetRng::seed_from(1);
        assert!(CapacityProfile::Full
            .schedule(100, START, END, &mut rng)
            .is_empty());
    }

    #[test]
    fn once_down_is_single_epoch_after_warmup() {
        let mut rng = DetRng::seed_from(2);
        let epochs = CapacityProfile::OnceDownAlwaysDown {
            fraction: 0.2,
            reduced: 0.25,
        }
        .schedule(100, START, END, &mut rng);
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].at, SimTime::from_secs(300));
        assert_eq!(epochs[0].nodes.len(), 20);
        assert_eq!(epochs[0].capacity, 0.25);
    }

    #[test]
    fn up_and_down_cycles_three_times_in_paper_window() {
        let mut rng = DetRng::seed_from(3);
        let epochs = CapacityProfile::UpAndDown {
            fraction: 0.2,
            reduced: 0.5,
        }
        .schedule(100, START, END, &mut rng);
        // Cycle = 300 warmup + (600 down + 300 stabilize) per round:
        // rounds start at 300, 1200, 2100 — three capacity losses.
        let downs: Vec<&CapacityEpoch> = epochs.iter().filter(|e| e.capacity < 1.0).collect();
        assert_eq!(downs.len(), 3);
        assert_eq!(downs[0].at, SimTime::from_secs(300));
        assert_eq!(downs[1].at, SimTime::from_secs(1_200));
        assert_eq!(downs[2].at, SimTime::from_secs(2_100));
        // Every down is followed by a return to full capacity 600 s later.
        for d in downs {
            assert!(epochs.iter().any(|e| {
                e.capacity == 1.0
                    && e.at == d.at + SimDuration::from_secs(600)
                    && e.nodes == d.nodes
            }));
        }
    }

    #[test]
    fn selected_nodes_differ_between_rounds() {
        let mut rng = DetRng::seed_from(4);
        let epochs = CapacityProfile::UpAndDown {
            fraction: 0.2,
            reduced: 0.0,
        }
        .schedule(1_000, START, END, &mut rng);
        let downs: Vec<&CapacityEpoch> = epochs.iter().filter(|e| e.capacity < 1.0).collect();
        assert_ne!(downs[0].nodes, downs[1].nodes, "re-selected each round");
    }
}
