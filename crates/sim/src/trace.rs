//! Optional tracing of simulation activity.
//!
//! A [`Tracer`] collects human-readable trace lines when enabled and is a
//! no-op otherwise; experiments run with tracing disabled, tests and the
//! examples can enable it to explain protocol behaviour.

use crate::time::SimTime;

/// A bounded in-memory trace sink.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    lines: Vec<String>,
    limit: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Creates an enabled tracer keeping at most `limit` lines.
    pub fn enabled(limit: usize) -> Self {
        Tracer {
            enabled: true,
            lines: Vec::new(),
            limit,
            dropped: 0,
        }
    }

    /// Returns `true` if the tracer records events.
    ///
    /// Callers formatting expensive trace lines should check this first.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one line, tagged with the simulated time.
    pub fn emit(&mut self, now: SimTime, line: impl AsRef<str>) {
        if !self.enabled {
            return;
        }
        if self.lines.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        self.lines.push(format!("[{now}] {}", line.as_ref()));
    }

    /// Returns the recorded lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of lines that were discarded because the limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, "hello");
        assert!(t.lines().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_with_timestamp() {
        let mut t = Tracer::enabled(10);
        t.emit(SimTime::from_secs(2), "query k1");
        assert_eq!(t.lines().len(), 1);
        assert!(t.lines()[0].contains("2.000000s"));
        assert!(t.lines()[0].contains("query k1"));
    }

    #[test]
    fn limit_drops_excess() {
        let mut t = Tracer::enabled(2);
        for i in 0..5 {
            t.emit(SimTime::ZERO, format!("line {i}"));
        }
        assert_eq!(t.lines().len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
