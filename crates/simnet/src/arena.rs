//! Dense per-node storage for the simulated network.
//!
//! At 100k nodes the per-event cost of node lookup dominates the engine,
//! so the arena is laid out for the dispatch hot path: protocol state
//! machines live in a dense slab indexed directly by [`NodeId`] (ids are
//! assigned densely by the overlay builder and never reused), while the
//! *hot* per-node scalars the harness touches on most events — the §3.7
//! outgoing-capacity fraction — sit in their own parallel array
//! (struct-of-arrays) so capacity sweeps never pull whole `CupNode`s
//! through the cache. Departed nodes leave a `None` slot behind and their
//! protocol counters are folded into [`NodeArena::departed_stats`] so
//! network-wide statistics stay conserved across churn.

use cup_core::{CupNode, NodeConfig};
use cup_des::NodeId;

/// The dense node table: one slot per ever-assigned [`NodeId`].
#[derive(Debug)]
pub struct NodeArena {
    /// Protocol state per slot; `None` marks a departed (or never-built)
    /// node.
    nodes: Vec<Option<CupNode>>,
    /// Hot state, struct-of-arrays: outgoing-capacity fraction per slot.
    capacities: Vec<f64>,
    /// Counters carried over from departed nodes.
    departed_stats: cup_core::stats::NodeStats,
}

impl NodeArena {
    /// Builds the arena for the given live ids (dense, possibly with
    /// holes if the overlay builder skipped indices), all configured with
    /// `config` at full capacity.
    pub fn build(ids: &[NodeId], config: NodeConfig) -> Self {
        let max_id = ids.iter().map(|n| n.index()).max().unwrap_or(0);
        let mut nodes: Vec<Option<CupNode>> = (0..=max_id).map(|_| None).collect();
        for id in ids {
            nodes[id.index()] = Some(CupNode::new(*id, config));
        }
        NodeArena {
            capacities: vec![1.0; nodes.len()],
            nodes,
            departed_stats: cup_core::stats::NodeStats::default(),
        }
    }

    /// Number of slots (live or departed) in the arena.
    pub fn slots(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only access to one node's state, if alive.
    pub fn get(&self, id: NodeId) -> Option<&CupNode> {
        self.nodes.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node departed — callers check liveness first.
    pub fn get_mut(&mut self, id: NodeId) -> &mut CupNode {
        self.nodes[id.index()].as_mut().expect("node must be alive")
    }

    /// Returns `true` if the slot holds a live node.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(Option::is_some)
    }

    /// Appends a freshly joined node at the next dense slot.
    ///
    /// # Panics
    ///
    /// Panics if the overlay assigned a non-dense id (the join contract).
    pub fn push_joined(&mut self, id: NodeId, config: NodeConfig) {
        assert_eq!(id.index(), self.nodes.len(), "join ids are dense");
        self.nodes.push(Some(CupNode::new(id, config)));
        self.capacities.push(1.0);
    }

    /// Wipes a live node's protocol state in place (a fault-plane
    /// crash): the slot is re-initialized cold — empty cache, empty
    /// directory, no interest record — while its counters are folded
    /// into the departed aggregate so network-wide statistics stay
    /// conserved across crashes. Returns `false` if the slot is not
    /// alive.
    pub fn reset(&mut self, id: NodeId, config: NodeConfig) -> bool {
        let Some(slot) = self.nodes.get_mut(id.index()) else {
            return false;
        };
        let Some(node) = slot else {
            return false;
        };
        self.departed_stats.merge(&node.stats);
        *slot = Some(CupNode::new(id, config));
        true
    }

    /// Removes a departed node, folding its counters into the departed
    /// aggregate. Returns the final state for hand-over processing.
    pub fn remove(&mut self, id: NodeId) -> Option<CupNode> {
        let gone = self.nodes.get_mut(id.index()).and_then(Option::take);
        if let Some(node) = &gone {
            // Keep the departed node's counters so network-wide
            // statistics stay conserved.
            self.departed_stats.merge(&node.stats);
        }
        gone
    }

    /// The current outgoing-capacity fraction of a slot.
    pub fn capacity(&self, id: NodeId) -> f64 {
        self.capacities[id.index()]
    }

    /// Sets a slot's outgoing-capacity fraction, returning the previous
    /// value.
    pub fn set_capacity(&mut self, id: NodeId, capacity: f64) -> f64 {
        std::mem::replace(&mut self.capacities[id.index()], capacity)
    }

    /// Counters inherited from departed nodes.
    pub fn departed_stats(&self) -> &cup_core::stats::NodeStats {
        &self.departed_stats
    }

    /// Aggregates the protocol counters of all live nodes plus the
    /// departed carry-over.
    pub fn aggregate_stats(&self) -> cup_core::stats::NodeStats {
        let mut total = self.departed_stats;
        for n in self.nodes.iter().flatten() {
            total.merge(&n.stats);
        }
        total
    }

    /// Iterates over the live nodes.
    pub fn iter_live(&self) -> impl Iterator<Item = &CupNode> {
        self.nodes.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn build_populates_dense_slots() {
        let arena = NodeArena::build(&ids(8), NodeConfig::cup_default());
        assert_eq!(arena.slots(), 8);
        for i in 0..8 {
            assert!(arena.is_alive(NodeId(i)));
            assert_eq!(arena.get(NodeId(i)).unwrap().id(), NodeId(i));
        }
    }

    #[test]
    fn remove_keeps_stats_conserved() {
        let mut arena = NodeArena::build(&ids(4), NodeConfig::cup_default());
        arena.get_mut(NodeId(2)).stats.client_queries = 7;
        let before = arena.aggregate_stats();
        let gone = arena.remove(NodeId(2)).expect("node was alive");
        assert_eq!(gone.stats.client_queries, 7);
        assert!(!arena.is_alive(NodeId(2)));
        assert!(arena.remove(NodeId(2)).is_none());
        assert_eq!(arena.aggregate_stats(), before);
        assert_eq!(arena.departed_stats().client_queries, 7);
    }

    #[test]
    fn join_extends_hot_arrays_in_lockstep() {
        let mut arena = NodeArena::build(&ids(3), NodeConfig::cup_default());
        arena.push_joined(NodeId(3), NodeConfig::cup_default());
        assert_eq!(arena.slots(), 4);
        assert_eq!(arena.capacity(NodeId(3)), 1.0);
        assert_eq!(arena.set_capacity(NodeId(3), 0.25), 1.0);
        assert_eq!(arena.capacity(NodeId(3)), 0.25);
    }

    #[test]
    #[should_panic(expected = "join ids are dense")]
    fn non_dense_join_rejected() {
        let mut arena = NodeArena::build(&ids(3), NodeConfig::cup_default());
        arena.push_joined(NodeId(9), NodeConfig::cup_default());
    }
}
