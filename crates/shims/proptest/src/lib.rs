//! Offline, API-compatible subset of the [proptest] crate.
//!
//! The workspace builds without network access, so this shim implements
//! the slice of proptest the test suites use: the [`proptest!`] macro,
//! `prop_assert*`, [`Strategy`] with `prop_map`, range/tuple strategies,
//! [`any`], and [`collection::vec`]. Two deliberate differences from the
//! real crate:
//!
//! * **Deterministic by construction.** Every case is generated from a
//!   seed derived from the test's name and the case index — no entropy,
//!   no persistence files. Re-running a suite replays byte-identical
//!   inputs, which is a workspace-wide invariant (see `cup-testkit`).
//! * **No shrinking.** A failing case reports its inputs' seed and index
//!   instead of searching for a minimal counterexample.
//!
//! [proptest]: https://github.com/proptest-rs/proptest

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Declares deterministic property tests, mirroring proptest's macro.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs the body for [`test_runner::case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case (returns `Err` from the case closure) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Inequality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {} out of range", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn prop_map_transforms(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..100).contains(&doubled));
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0u32..4, 10u64..20)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut rng = crate::TestRng::for_case("determinism_probe", 3);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "determinism_canary")]
    fn failures_panic_with_context() {
        crate::test_runner::run_cases("determinism_canary", |_| {
            Err(crate::TestCaseError::fail("forced".to_string()))
        });
    }
}
