//! Per-hop network latency models.
//!
//! The CUP evaluation measures costs in *hops*, but the simulation still
//! needs a notion of transmission delay so that, e.g., an update can arrive
//! after the entry it refreshes has already expired (the paper's §2.6
//! case 3: "the network path has long delays and the update does not arrive
//! in time").

use crate::rng::DetRng;
use crate::time::SimDuration;

/// How long one overlay hop takes.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every hop takes exactly this long.
    Fixed(SimDuration),
    /// Hops take a uniform duration in `[min, max]`.
    Uniform {
        /// Shortest possible hop delay.
        min: SimDuration,
        /// Longest possible hop delay.
        max: SimDuration,
    },
}

impl LatencyModel {
    /// A typical wide-area hop: fixed 50 ms (the order of magnitude used by
    /// overlay simulators of the paper's era).
    pub fn default_wan() -> Self {
        LatencyModel::Fixed(SimDuration::from_millis(50))
    }

    /// Samples the delay of one hop.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency bounds inverted");
                let span = max.as_micros().saturating_sub(min.as_micros());
                if span == 0 {
                    min
                } else {
                    SimDuration::from_micros(min.as_micros() + rng.next_below(span + 1))
                }
            }
        }
    }

    /// Returns the mean hop delay of the model.
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::default_wan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let model = LatencyModel::Fixed(SimDuration::from_millis(10));
        let mut rng = DetRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), SimDuration::from_millis(10));
        }
        assert_eq!(model.mean(), SimDuration::from_millis(10));
    }

    #[test]
    fn uniform_within_bounds() {
        let min = SimDuration::from_millis(10);
        let max = SimDuration::from_millis(90);
        let model = LatencyModel::Uniform { min, max };
        let mut rng = DetRng::seed_from(2);
        let mut sum = 0u64;
        let n = 10_000;
        for _ in 0..n {
            let d = model.sample(&mut rng);
            assert!(d >= min && d <= max);
            sum += d.as_micros();
        }
        let mean = sum / n;
        let expect = model.mean().as_micros();
        assert!(
            (mean as i64 - expect as i64).unsigned_abs() < 2_000,
            "empirical mean {mean}µs far from {expect}µs"
        );
    }

    #[test]
    fn degenerate_uniform_is_fixed() {
        let d = SimDuration::from_millis(5);
        let model = LatencyModel::Uniform { min: d, max: d };
        let mut rng = DetRng::seed_from(3);
        assert_eq!(model.sample(&mut rng), d);
    }

    #[test]
    fn default_is_wan() {
        assert_eq!(LatencyModel::default().mean(), SimDuration::from_millis(50));
    }
}
