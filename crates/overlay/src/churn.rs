//! Reports describing topology changes, consumed by the protocol layer.
//!
//! When a node joins or leaves, CUP must patch per-key interest bookkeeping
//! at every affected node (§2.9). The overlay produces a [`ChurnReport`]
//! naming exactly which nodes gained or lost which neighbors and where
//! index ownership moved, so the protocol layer can do that patching
//! without re-deriving topology.

use cup_des::NodeId;

/// One node's neighbor-set delta after a churn event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborChange {
    /// The node whose neighbor set changed.
    pub node: NodeId,
    /// Neighbors that are new after the event.
    pub added: Vec<NodeId>,
    /// Neighbors that are gone after the event.
    pub removed: Vec<NodeId>,
}

/// The outcome of a join or departure.
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// The node that joined, if this was a join.
    pub joined: Option<NodeId>,
    /// The node that departed, if this was a departure.
    pub departed: Option<NodeId>,
    /// For a join: the existing node whose zone was split. For a
    /// departure: the node that took over the departed zone(s).
    pub counterpart: Option<NodeId>,
    /// Per-node neighbor deltas (only nodes with a non-empty delta appear).
    pub neighbor_changes: Vec<NeighborChange>,
}

impl ChurnReport {
    /// Returns the neighbor delta for `node`, if any.
    pub fn change_for(&self, node: NodeId) -> Option<&NeighborChange> {
        self.neighbor_changes.iter().find(|c| c.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_lookup() {
        let report = ChurnReport {
            joined: Some(NodeId(5)),
            departed: None,
            counterpart: Some(NodeId(2)),
            neighbor_changes: vec![NeighborChange {
                node: NodeId(2),
                added: vec![NodeId(5)],
                removed: vec![],
            }],
        };
        assert!(report.change_for(NodeId(2)).is_some());
        assert!(report.change_for(NodeId(3)).is_none());
    }
}
