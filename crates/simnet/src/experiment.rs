//! One experiment, end to end.

use cup_core::justify::JustificationTracker;
use cup_core::{CutoffPolicy, NodeConfig, PropagationPolicy};
use cup_des::{DetRng, Engine, LatencyModel, SimDuration};
use cup_faults::{FaultPlan, FaultState};
use cup_overlay::{AnyOverlay, OverlayKind};
use cup_workload::{
    capacity::CapacityProfile, churn::ChurnSchedule, replica::ReplicaPlan,
    scenario::KeyDistribution, KeySelector, QueryGen, Scenario,
};

use crate::event::Ev;
use crate::metrics::ExperimentResult;
use crate::network::Network;

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The workload (§3.2 inputs).
    pub scenario: Scenario,
    /// Protocol configuration shared by all nodes.
    pub node_config: NodeConfig,
    /// Which overlay substrate to run on.
    pub overlay: OverlayKind,
    /// Outgoing-capacity degradation (§3.7).
    pub capacity_profile: CapacityProfile,
    /// Node arrival/departure schedule (§2.9).
    pub churn: ChurnSchedule,
    /// Whether to measure justified updates (§3.1). Costs CPU at high
    /// query rates; the cost metrics never depend on it.
    pub track_justification: bool,
    /// Per-hop latency model.
    pub latency: LatencyModel,
    /// Extra simulated time after the query window so in-flight responses
    /// land before metrics are read.
    pub drain: SimDuration,
}

impl ExperimentConfig {
    /// A CUP run of the given scenario with default everything else.
    pub fn cup(scenario: Scenario) -> Self {
        ExperimentConfig {
            scenario,
            node_config: NodeConfig::cup_default(),
            overlay: OverlayKind::Can,
            capacity_profile: CapacityProfile::Full,
            churn: ChurnSchedule::none(),
            track_justification: false,
            latency: LatencyModel::default_wan(),
            drain: SimDuration::from_secs(30),
        }
    }

    /// The standard-caching baseline for the same scenario.
    pub fn standard_caching(scenario: Scenario) -> Self {
        ExperimentConfig {
            node_config: NodeConfig::standard_caching(),
            ..ExperimentConfig::cup(scenario)
        }
    }
}

/// Runs one experiment to completion and returns its metrics.
///
/// The simulation is fully deterministic in `config` (all randomness
/// derives from `scenario.seed`).
///
/// # Panics
///
/// Panics if the scenario fails validation, names an unknown policy
/// class, or the overlay cannot be built — experiment configurations are
/// programmer input.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    config
        .scenario
        .validate()
        .expect("scenario must be internally consistent");
    let scenario = &config.scenario;
    let mut node_config = config.node_config;
    if !scenario.policy_classes.is_empty() {
        // The workload names its policy mix; parse it into the table so
        // heterogeneous populations come straight from the scenario.
        let classes: Vec<CutoffPolicy> = scenario
            .policy_classes
            .iter()
            .map(|name| {
                CutoffPolicy::parse(name)
                    .unwrap_or_else(|| panic!("unknown policy class name '{name}'"))
            })
            .collect();
        node_config.policies = PropagationPolicy::per_class(&classes);
    }
    let root = DetRng::seed_from(scenario.seed);
    let mut overlay_rng = root.derive(1);
    let workload_rng = root.derive(2);
    let mut replica_rng = root.derive(3);
    let latency_rng = root.derive(4);
    let mut capacity_rng = root.derive(5);

    let overlay = AnyOverlay::build(config.overlay, scenario.nodes, &mut overlay_rng)
        .expect("overlay construction");
    let mut net = Network::new(overlay, node_config, config.latency.clone(), latency_rng);
    if config.track_justification {
        net.justify = Some(JustificationTracker::new());
    }

    // The fault plane: spec strings become a timed event script, and the
    // plane's decision seed derives from the experiment's root RNG so
    // fault runs live in the same reproducible universe as everything
    // else.
    let fault_plan = if scenario.fault_plan.is_empty() {
        FaultPlan::none()
    } else {
        let plan = FaultPlan::parse_specs(&scenario.fault_plan)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        net.faults = Some(FaultState::new(root.derive(6).next()));
        plan
    };

    // Query workload.
    let selector = match scenario.key_distribution {
        KeyDistribution::Uniform => KeySelector::uniform(scenario.keys),
        KeyDistribution::Zipf { exponent } => KeySelector::zipf(scenario.keys, exponent),
    };
    net.query_gen = Some(QueryGen::bursty(
        scenario.query_rate,
        selector,
        scenario.nodes,
        scenario.query_start,
        scenario.query_end,
        workload_rng,
        cup_workload::query::BurstConfig {
            size: scenario.burst_size,
            spread: scenario.burst_spread,
        },
    ));

    // Replica lifecycles.
    let plan = ReplicaPlan::build(scenario, &mut replica_rng);
    let births = plan.births();
    net.replica_plan = Some(plan);

    let node_count = scenario.nodes;
    let mut engine = Engine::new(net);
    for birth in births {
        engine.schedule(birth.at, Ev::Replica(birth));
    }
    engine.schedule(scenario.query_start, Ev::NextQuery);
    for epoch in config.capacity_profile.schedule(
        scenario.nodes,
        scenario.query_start,
        scenario.query_end,
        &mut capacity_rng,
    ) {
        engine.schedule(
            epoch.at,
            Ev::SetCapacity {
                nodes: epoch.nodes,
                capacity: epoch.capacity,
            },
        );
    }
    for churn_event in config.churn.events() {
        engine.schedule(churn_event.at(), Ev::Churn(*churn_event));
    }
    for fault_event in fault_plan.events() {
        engine.schedule(fault_event.at, Ev::Fault(*fault_event));
    }

    // Run through the query window plus the drain margin. The paper's
    // long post-query tail (simulation time 22 000 s vs 3 000 s of
    // querying) contributes no queries; costs are accounted over the
    // active window, see EXPERIMENTS.md.
    let stop = scenario.query_end + config.drain;
    engine.run_until(stop.min(scenario.sim_end), |net, queue, now, ev| {
        net.dispatch(queue, now, ev)
    });

    let events = engine.processed();
    let net = engine.into_state();
    let (justified, tracked) = net
        .justify
        .as_ref()
        .map_or((0, 0), |j| (j.justified(), j.total()));
    let mut metrics = net.metrics;
    if let Some(f) = net.faults.as_ref() {
        metrics.faults = f.counters;
    }
    ExperimentResult {
        net: metrics,
        nodes: net.aggregate_stats(),
        justified_updates: justified,
        tracked_updates: tracked,
        node_count,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_core::CutoffPolicy;
    use cup_des::SimTime;

    fn small_scenario(rate: f64) -> Scenario {
        // A workload where update propagation clearly pays for itself:
        // few keys, so per-key query rates are high enough that pushed
        // refreshes are justified (§3.1's 1 − e^{−ΛT} argument).
        Scenario {
            nodes: 64,
            keys: 4,
            query_rate: rate,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(1_300),
            sim_end: SimTime::from_secs(2_000),
            seed: 42,
            ..Scenario::default()
        }
    }

    #[test]
    fn standard_caching_has_zero_overhead() {
        let result = run_experiment(&ExperimentConfig::standard_caching(small_scenario(2.0)));
        assert_eq!(result.overhead(), 0, "baseline never pushes updates");
        assert!(result.miss_cost() > 0, "queries must travel");
        assert_eq!(result.total_cost(), result.miss_cost());
        assert!(result.nodes.client_queries > 1_000);
    }

    #[test]
    fn cup_beats_standard_caching_on_total_cost() {
        let scenario = small_scenario(10.0);
        let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
        let cup = run_experiment(&ExperimentConfig::cup(scenario));
        assert!(
            cup.total_cost() < std.total_cost(),
            "CUP {} should beat standard caching {}",
            cup.total_cost(),
            std.total_cost()
        );
        // Note: average *latency per miss* can tick up at tiny scales
        // (CUP absorbs the easy misses locally, leaving only distant
        // ones), so the robust claim is on the aggregate miss cost.
        assert!(
            cup.miss_cost() < std.miss_cost(),
            "CUP miss cost {} vs standard {}",
            cup.miss_cost(),
            std.miss_cost()
        );
    }

    #[test]
    fn push_level_zero_equals_standard_caching_overhead() {
        let mut config = ExperimentConfig::cup(small_scenario(1.0));
        config.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 0 });
        let result = run_experiment(&config);
        assert_eq!(
            result.net.maintenance_hops(),
            0,
            "push level 0 squelches all maintenance updates at the root"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let config = ExperimentConfig::cup(small_scenario(1.0));
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(a.misses(), b.misses());
        assert_eq!(a.net.refresh_hops, b.net.refresh_hops);
    }

    #[test]
    fn justification_tracking_counts_updates() {
        let mut config = ExperimentConfig::cup(small_scenario(5.0));
        config.track_justification = true;
        let result = run_experiment(&config);
        assert!(result.tracked_updates > 0);
        assert!(result.justified_updates <= result.tracked_updates);
        // At a healthy query rate most propagated updates pay for
        // themselves (the paper's 1 − e^{−ΛT} argument).
        assert!(
            result.justified_fraction() > 0.3,
            "justified fraction {} unexpectedly low",
            result.justified_fraction()
        );
    }

    #[test]
    fn mixed_policy_scenario_interpolates_between_its_classes() {
        // Keys alternate between all-out push and immediate cut-off; the
        // mixed population's overhead must land strictly between the two
        // homogeneous runs' (immediate cut-off is not free — clear-bit
        // churn and re-subscription cycles give `never` its own overhead
        // profile, distinct from `always`'s steady refresh stream).
        let base = small_scenario(5.0);
        let run_named = |classes: &[&str]| {
            let scenario = base.clone().with_policy_classes(classes);
            run_experiment(&ExperimentConfig::cup(scenario))
        };
        let all_push = run_named(&["always"]);
        let no_push = run_named(&["never"]);
        let mixed = run_named(&["always", "never"]);
        let lo = no_push.overhead().min(all_push.overhead());
        let hi = no_push.overhead().max(all_push.overhead());
        assert!(
            lo < mixed.overhead() && mixed.overhead() < hi,
            "mixed overhead {} must sit strictly between the homogeneous runs' {lo} and {hi}",
            mixed.overhead()
        );
        // Deterministic like every other configuration.
        let again = run_named(&["always", "never"]);
        assert_eq!(mixed, again);
    }

    #[test]
    #[should_panic(expected = "unknown policy class name")]
    fn unknown_policy_class_names_fail_loudly() {
        let scenario = small_scenario(1.0).with_policy_classes(&["pastry"]);
        let _ = run_experiment(&ExperimentConfig::cup(scenario));
    }

    #[test]
    fn adaptive_policy_runs_and_stays_economical() {
        let mut adaptive = ExperimentConfig::cup(small_scenario(5.0));
        adaptive.node_config = NodeConfig::cup_with_policy(CutoffPolicy::adaptive());
        adaptive.track_justification = true;
        let adaptive = run_experiment(&adaptive);
        let mut always = ExperimentConfig::cup(small_scenario(5.0));
        always.node_config = NodeConfig::cup_with_policy(CutoffPolicy::Always);
        always.track_justification = true;
        let always = run_experiment(&always);
        assert!(adaptive.tracked_updates > 0);
        assert!(
            adaptive.justified_fraction() >= always.justified_fraction(),
            "adaptive {} must justify at least as well as all-out push {}",
            adaptive.justified_fraction(),
            always.justified_fraction()
        );
        assert!(adaptive.total_cost() <= always.total_cost());
    }

    #[test]
    fn fault_runs_are_deterministic_and_lossy() {
        let scenario = small_scenario(5.0).with_fault_plan(&[
            "drop:0.1",
            "crash:7@t=500..900",
            "partition:2@t=600..700",
        ]);
        let config = ExperimentConfig::cup(scenario);
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(a, b, "fault runs must be byte-identical across reruns");
        assert!(a.net.faults.dropped_loss > 0, "10% loss must drop traffic");
        assert!(
            a.net.faults.dropped_partition > 0,
            "the partition must cut traffic"
        );
        assert_eq!(a.net.faults.crashes, 1);
        assert_eq!(a.net.faults.restarts, 1);
        // The network still works: clients keep getting answers.
        assert!(a.net.client_responses > 0);
    }

    #[test]
    fn loss_cannot_inflate_the_justified_ratio() {
        // A dropped propagation opens no justification window, so the
        // tracked count shrinks with loss but the ratio stays a ratio of
        // *delivered* updates — it must not read better than the total
        // update volume supports.
        let mut clean = ExperimentConfig::cup(small_scenario(5.0));
        clean.track_justification = true;
        let clean = run_experiment(&clean);
        let mut lossy = ExperimentConfig::cup(small_scenario(5.0).with_fault_plan(&["drop:0.3"]));
        lossy.track_justification = true;
        let lossy = run_experiment(&lossy);
        assert!(
            lossy.tracked_updates < clean.tracked_updates,
            "loss must shrink the delivered-update denominator ({} vs {})",
            lossy.tracked_updates,
            clean.tracked_updates
        );
        assert!(lossy.justified_updates <= lossy.tracked_updates);
    }

    #[test]
    fn crashed_node_comes_back_cold() {
        // Crash every node's state away mid-run and let them restart:
        // the run completes, counts exactly the scripted crash, and the
        // query stream keeps being served afterwards.
        let scenario = small_scenario(5.0).with_fault_plan(&["crash:3@t=500..600"]);
        let r = run_experiment(&ExperimentConfig::cup(scenario.clone()));
        assert_eq!(r.net.faults.crashes, 1);
        assert_eq!(r.net.faults.restarts, 1);
        let clean = run_experiment(&ExperimentConfig::cup(Scenario {
            fault_plan: Vec::new(),
            ..scenario
        }));
        assert!(
            r.net.client_responses <= clean.net.client_responses,
            "a crash cannot create answers out of thin air"
        );
        assert!(r.net.client_responses > 0);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn malformed_fault_plans_fail_loudly() {
        let scenario = small_scenario(1.0).with_fault_plan(&["drop:2.0"]);
        let _ = run_experiment(&ExperimentConfig::cup(scenario));
    }

    #[test]
    fn chord_substrate_also_works() {
        let mut config = ExperimentConfig::cup(small_scenario(10.0));
        config.overlay = OverlayKind::Chord;
        let cup = run_experiment(&config);
        let mut std_config = ExperimentConfig::standard_caching(small_scenario(10.0));
        std_config.overlay = OverlayKind::Chord;
        let std = run_experiment(&std_config);
        assert!(cup.total_cost() < std.total_cost());
    }
}
