//! The live-runtime throughput benchmark behind `BENCH_live.json`.
//!
//! Where `des_bench` measures the simulator's event throughput,
//! this module measures the *real* worker-pool runtime: queries per
//! second under concurrent client threads and replica-update events per
//! second through the shard mailboxes, per overlay kind, worker count,
//! population size, and [`ShardMapMode`]. Each point also reports the
//! batch plane's amortization stats — flush count, mean batch size, and
//! the cross-shard traffic ratio — so placement quality is tracked next
//! to raw throughput. CI uploads the JSON as an artifact next to
//! `BENCH_des.json`, so the live runtime's trajectory is tracked per
//! commit.

use std::time::{Duration, Instant};

use cup_core::clock::Clock;
use cup_core::{Hist, NodeConfig};
use cup_des::{DetRng, KeyId, NodeId, ReplicaId, SimDuration};
use cup_overlay::OverlayKind;
use cup_runtime::{LiveNetwork, ShardMapMode};

/// Replica lifetime far beyond any benchmark horizon.
const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);

/// Keys (= replicas) the workload spreads over.
const KEYS: u32 = 64;

/// Client threads posting queries concurrently.
const CLIENT_THREADS: usize = 4;

/// One timed run of the live runtime.
#[derive(Debug, Clone)]
pub struct LiveBenchPoint {
    /// Overlay substrate.
    pub overlay: OverlayKind,
    /// Overlay population.
    pub nodes: usize,
    /// Worker threads the pool ran on.
    pub workers: usize,
    /// Node→shard placement mode the pool ran under.
    pub map: ShardMapMode,
    /// Client queries answered.
    pub queries: u64,
    /// Wall-clock time of the query phase.
    pub query_wall: Duration,
    /// Replica update events (refreshes) fully propagated.
    pub updates: u64,
    /// Wall-clock time of the update phase (including its quiesce).
    pub update_wall: Duration,
    /// Total peer messages delivered across the whole run.
    pub hops: u64,
    /// Peer messages that crossed a shard boundary.
    pub cross_shard: u64,
    /// Cross-shard batch flushes (one amortized counter bump each).
    pub batch_flushes: u64,
    /// Envelopes carried by those flushes (== `cross_shard`).
    pub batched_envelopes: u64,
    /// Wall-clock client-query latency distribution (µs, posted →
    /// answered, queue wait included) — the pool runs on `Clock::wall()`
    /// here, so these are real microseconds, not virtual time.
    pub query_latency: Hist,
    /// Staleness-age distribution (µs). Zero samples in this healthy
    /// workload; carried so the artifact schema matches the fault runs.
    pub stale_age: Hist,
    /// Per-flush cross-shard batch-size distribution.
    pub batch_sizes: Hist,
}

impl LiveBenchPoint {
    /// Query throughput over the concurrent client threads.
    pub fn queries_per_sec(&self) -> f64 {
        per_sec(self.queries, self.query_wall)
    }

    /// Replica-update throughput (events injected, propagated, drained).
    pub fn updates_per_sec(&self) -> f64 {
        per_sec(self.updates, self.update_wall)
    }

    /// Mean envelopes per cross-shard flush — the batch plane's
    /// amortization factor (0 when nothing crossed a shard boundary).
    pub fn mean_batch(&self) -> f64 {
        if self.batch_flushes == 0 {
            0.0
        } else {
            self.batched_envelopes as f64 / self.batch_flushes as f64
        }
    }

    /// Fraction of peer messages that crossed a shard boundary — the
    /// placement-quality number the overlay-aware map drives down.
    pub fn cross_shard_ratio(&self) -> f64 {
        if self.hops == 0 {
            0.0
        } else {
            self.cross_shard as f64 / self.hops as f64
        }
    }
}

fn per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// Runs one timed live workload: a warm-up (replica births), a
/// concurrent query phase, and a refresh-storm update phase.
///
/// # Panics
///
/// Panics if the runtime cannot start or a query goes unanswered.
pub fn run_point(
    kind: OverlayKind,
    nodes: usize,
    queries: u64,
    updates: u64,
    workers: usize,
    map: ShardMapMode,
    seed: u64,
) -> LiveBenchPoint {
    let mut rng = DetRng::seed_from(seed);
    let net = LiveNetwork::start_with_map(
        kind,
        nodes,
        NodeConfig::cup_default(),
        workers,
        map,
        Clock::wall(),
        &mut rng,
    )
    .expect("live network must start");
    let keys = KEYS.min(nodes as u32);
    for k in 0..keys {
        net.replica_birth(KeyId(k), ReplicaId(k), LIFETIME);
    }
    net.quiesce();

    // Query phase: concurrent clients with disjoint key classes
    // (k ≡ t mod threads), script-chosen posting nodes. Tiny
    // populations get fewer threads so no class is empty.
    let client_threads = CLIENT_THREADS.min(keys as usize).max(1);
    let query_start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..client_threads {
            let net = &net;
            let per_thread = queries / client_threads as u64
                + u64::from(t < (queries % client_threads as u64) as usize);
            s.spawn(move || {
                let mut rng = DetRng::seed_from(seed ^ (0xC11E47 + t as u64));
                let own: Vec<u32> = (0..keys)
                    .filter(|k| *k as usize % client_threads == t)
                    .collect();
                for _ in 0..per_thread {
                    let node = NodeId(rng.choose_index(nodes) as u32);
                    let key = own[rng.choose_index(own.len())];
                    net.query(node, KeyId(key))
                        .expect("benchmark query answered");
                }
            });
        }
    });
    net.quiesce();
    let query_wall = query_start.elapsed();

    // Update phase: a refresh storm round-robined over the keys, then
    // one quiesce — throughput includes full propagation and drain.
    let update_start = Instant::now();
    for i in 0..updates {
        let k = (i % u64::from(keys)) as u32;
        net.replica_refresh(KeyId(k), ReplicaId(k), LIFETIME);
    }
    net.quiesce();
    let update_wall = update_start.elapsed();

    assert_eq!(net.routing_failures(), 0, "static routing must not fail");
    let point = LiveBenchPoint {
        overlay: kind,
        nodes,
        workers: net.workers(),
        map,
        queries,
        query_wall,
        updates,
        update_wall,
        hops: net.hops(),
        cross_shard: net.cross_shard_messages(),
        batch_flushes: net.batch_flushes(),
        batched_envelopes: net.batched_envelopes(),
        query_latency: net.query_latency_hist(),
        stale_age: net.stale_age_hist(),
        batch_sizes: net.batch_size_hist(),
    };
    net.shutdown();
    point
}

/// Renders the sweep as the `BENCH_live.json` document.
///
/// Hand-rolled JSON like `des_bench::render_json` (the workspace builds
/// offline, without serde); every value is a number or a plain
/// lower-case overlay name, so escaping is not needed.
pub fn render_json(points: &[LiveBenchPoint], seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cup-runtime worker-pool\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"overlay\": \"{}\", \"nodes\": {}, \"workers\": {}, \
             \"shard_map\": \"{}\", \
             \"queries\": {}, \"queries_per_sec\": {:.0}, \
             \"updates\": {}, \"updates_per_sec\": {:.0}, \
             \"query_wall_ms\": {:.3}, \"update_wall_ms\": {:.3}, \
             \"hops\": {}, \"cross_shard\": {}, \
             \"cross_shard_ratio\": {:.4}, \"batch_flushes\": {}, \
             \"mean_batch\": {:.2}, \
             \"query_p50_us\": {}, \"query_p90_us\": {}, \
             \"query_p99_us\": {}, \"query_p999_us\": {}, \
             \"stale_age_p50_us\": {}, \"stale_age_p99_us\": {}, \
             \"batch_p50\": {}, \"batch_p99\": {}}}{comma}\n",
            p.overlay.name(),
            p.nodes,
            p.workers,
            p.map.name(),
            p.queries,
            p.queries_per_sec(),
            p.updates,
            p.updates_per_sec(),
            p.query_wall.as_secs_f64() * 1e3,
            p.update_wall.as_secs_f64() * 1e3,
            p.hops,
            p.cross_shard,
            p.cross_shard_ratio(),
            p.batch_flushes,
            p.mean_batch(),
            p.query_latency.quantile(500),
            p.query_latency.quantile(900),
            p.query_latency.quantile(990),
            p.query_latency.quantile(999),
            p.stale_age.quantile(500),
            p.stale_age.quantile(990),
            p.batch_sizes.quantile(500),
            p.batch_sizes.quantile(990),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_runs_and_renders() {
        let p = run_point(
            OverlayKind::Can,
            128,
            64,
            64,
            2,
            ShardMapMode::Contiguous,
            9,
        );
        assert_eq!(p.nodes, 128);
        assert_eq!(p.workers, 2);
        assert_eq!(p.queries, 64);
        assert!(p.hops > 0);
        assert!(p.queries_per_sec() > 0.0);
        assert!(p.updates_per_sec() > 0.0);
        // Every cross-shard envelope travels in exactly one flush.
        assert_eq!(p.batched_envelopes, p.cross_shard);
        assert!(p.mean_batch() >= 1.0);
        assert!(p.cross_shard_ratio() > 0.0 && p.cross_shard_ratio() <= 1.0);
        // One wall-clock latency sample per answered query, and a real
        // (non-degenerate) distribution: wall time moves between post
        // and answer, so the p999 must be positive and the tail ordered.
        assert_eq!(p.query_latency.count(), p.queries);
        assert!(p.query_latency.quantile(999) > 0, "wall latency degenerate");
        assert!(p.query_latency.quantile(500) <= p.query_latency.quantile(999));
        // Healthy workload: nothing stale was ever served.
        assert!(p.stale_age.is_empty());
        // One batch-size sample per flush.
        assert_eq!(p.batch_sizes.count(), p.batch_flushes);
        let json = render_json(&[p.clone(), p], 9);
        assert!(json.contains("\"benchmark\": \"cup-runtime worker-pool\""));
        assert_eq!(json.matches("\"overlay\": \"can\"").count(), 2);
        assert_eq!(json.matches("\"shard_map\": \"contiguous\"").count(), 2);
        assert!(json.contains("\"mean_batch\""));
        assert!(json.contains("\"cross_shard_ratio\""));
        for q in [
            "query_p50_us",
            "query_p90_us",
            "query_p99_us",
            "query_p999_us",
        ] {
            assert!(json.contains(q), "missing percentile field {q}");
        }
        assert!(json.contains("\"stale_age_p50_us\""));
        assert!(json.contains("\"batch_p50\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn both_overlays_run_under_both_maps() {
        for kind in OverlayKind::ALL {
            for map in ShardMapMode::ALL {
                let p = run_point(kind, 64, 32, 32, 2, map, 11);
                assert_eq!(p.overlay, kind);
                assert_eq!(p.map, map);
                assert!(p.queries_per_sec() > 0.0);
            }
        }
    }

    #[test]
    fn degenerate_populations_do_not_panic() {
        // Fewer keys than client threads: the thread count adapts.
        let p = run_point(OverlayKind::Can, 2, 8, 8, 2, ShardMapMode::OverlayAware, 13);
        assert_eq!(p.queries, 8);
        assert!(p.queries_per_sec() > 0.0);
        // Batch stats stay well-defined however tiny the network.
        assert!(p.mean_batch() >= 0.0);
        assert_eq!(p.batched_envelopes, p.cross_shard);
    }
}
