//! Churn: nodes joining and leaving while CUP keeps answering.
//!
//! §2.9 requires CUP to "handle both node arrivals and departures
//! seamlessly": zones split and merge, index ownership moves, interest
//! bookkeeping is patched, and entries at dependents simply expire and
//! are re-fetched. This example runs a workload over a CAN that gains and
//! loses a node every 30 seconds and verifies the network keeps serving
//! queries throughout.
//!
//! Run with: `cargo run --example churn`

use cup::prelude::*;
use cup::simnet::run_experiment as run;
use cup::workload::churn::ChurnEvent;

fn main() {
    let scenario = Scenario {
        nodes: 128,
        keys: 8,
        query_rate: 10.0,
        query_start: SimTime::from_secs(300),
        query_end: SimTime::from_secs(1_800),
        sim_end: SimTime::from_secs(3_000),
        seed: 5,
        ..Scenario::default()
    };

    let calm = run(&ExperimentConfig::cup(scenario.clone()));

    let mut rng = DetRng::seed_from(scenario.seed ^ 0xC0DE);
    let churn = ChurnSchedule::alternating(
        scenario.query_start,
        scenario.query_end,
        SimDuration::from_secs(30),
        0.5,
        &mut rng,
    );
    let (joins, leaves) = churn.events().iter().fold((0, 0), |(j, l), e| match e {
        ChurnEvent::Join { .. } => (j + 1, l),
        ChurnEvent::Leave { .. } => (j, l + 1),
    });
    let mut config = ExperimentConfig::cup(scenario);
    config.churn = churn;
    let churned = run(&config);

    println!("CUP on a 128-node CAN, 10 q/s, with and without churn:");
    println!("  churn schedule: {joins} joins, {leaves} departures (one event / 30 s)");
    println!(
        "  calm:    total {:>7} hops, {:>5} misses, {:>4.1} hops/miss, {:>4} answers delivered",
        calm.total_cost(),
        calm.misses(),
        calm.miss_latency(),
        calm.net.client_responses
    );
    println!(
        "  churned: total {:>7} hops, {:>5} misses, {:>4.1} hops/miss, {:>4} answers delivered ({} messages dropped at departed nodes)",
        churned.total_cost(),
        churned.misses(),
        churned.miss_latency(),
        churned.net.client_responses,
        churned.net.dropped_messages
    );
    let served = churned.net.client_responses as f64 / churned.nodes.client_queries as f64;
    println!(
        "  under churn the network still answered {:.1}% of client queries",
        served * 100.0
    );
}
