//! Emits `BENCH_live.json`: the worker-pool live runtime throughput
//! sweep (queries/sec, updates/sec, batch amortization, cross-shard
//! ratio) per overlay kind, population size, and shard-map mode.
//!
//! Usage:
//!
//! ```text
//! bench_live [--nodes 10000 | --sizes 10000,50000,100000]
//!            [--queries 5000] [--updates 5000]
//!            [--workers N] [--overlays can,chord]
//!            [--shard-map contiguous|overlay-aware|both]
//!            [--seed 42] [--out BENCH_live.json] [--budget-secs N]
//! ```
//!
//! With `--budget-secs`, the process exits non-zero if any single run
//! exceeds the wall-clock budget — the CI live-smoke job's pass/fail
//! line.

// Throughput timing is this binary's purpose: exempt from clippy.toml's
// disallowed-methods wall like the rest of cup-bench.
#![allow(clippy::disallowed_methods)]

use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::live_bench::{render_json, run_point};
use cup_overlay::OverlayKind;
use cup_runtime::{LiveNetwork, ShardMapMode};

fn main() {
    let mut sizes: Vec<usize> = vec![10_000];
    let mut queries: u64 = 5_000;
    let mut updates: u64 = 5_000;
    let mut workers: usize = LiveNetwork::default_workers();
    let mut overlays: Vec<OverlayKind> = OverlayKind::ALL.to_vec();
    let mut maps: Vec<ShardMapMode> = vec![ShardMapMode::Contiguous];
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_live.json");
    let mut budget_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => sizes = vec![parse_or_exit(&value_of(&mut it, "--nodes"), "--nodes")],
            "--sizes" => {
                sizes = value_of(&mut it, "--sizes")
                    .split(',')
                    .map(|s| parse_or_exit(s.trim(), "--sizes"))
                    .collect();
            }
            "--queries" => queries = parse_or_exit(&value_of(&mut it, "--queries"), "--queries"),
            "--updates" => updates = parse_or_exit(&value_of(&mut it, "--updates"), "--updates"),
            "--workers" => workers = parse_or_exit(&value_of(&mut it, "--workers"), "--workers"),
            "--overlays" => {
                overlays = value_of(&mut it, "--overlays")
                    .split(',')
                    .map(|s| {
                        OverlayKind::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!("bad --overlays value '{s}' (can | chord)");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--shard-map" => {
                let v = value_of(&mut it, "--shard-map");
                maps = match v.trim() {
                    "both" => ShardMapMode::ALL.to_vec(),
                    s => vec![ShardMapMode::parse(s).unwrap_or_else(|| {
                        eprintln!(
                            "bad --shard-map value '{s}' (contiguous | overlay-aware | both)"
                        );
                        std::process::exit(2);
                    })],
                };
            }
            "--seed" => seed = parse_or_exit(&value_of(&mut it, "--seed"), "--seed"),
            "--out" => out_path = value_of(&mut it, "--out"),
            "--budget-secs" => {
                budget_secs = Some(parse_or_exit(
                    &value_of(&mut it, "--budget-secs"),
                    "--budget-secs",
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_live [--nodes N | --sizes N,N,...] [--queries N] \
                     [--updates N] [--workers N] [--overlays can,chord] \
                     [--shard-map contiguous|overlay-aware|both] [--seed N] \
                     [--out PATH] [--budget-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::with_capacity(sizes.len() * overlays.len() * maps.len());
    let mut over_budget = false;
    for &nodes in &sizes {
        for &kind in &overlays {
            for &map in &maps {
                let start = std::time::Instant::now();
                let p = run_point(kind, nodes, queries, updates, workers, map, seed);
                let wall = start.elapsed();
                println!(
                    "{:>5}  {:>7} nodes  {:>2} workers  {:>13}  {:>9.0} queries/s  \
                     {:>9.0} updates/s  {:>10} hops  {:.1}% cross-shard  \
                     mean batch {:.1}  q p50/p99/p999 {}us/{}us/{}us",
                    kind.name(),
                    p.nodes,
                    p.workers,
                    map.name(),
                    p.queries_per_sec(),
                    p.updates_per_sec(),
                    p.hops,
                    p.cross_shard_ratio() * 100.0,
                    p.mean_batch(),
                    p.query_latency.quantile(500),
                    p.query_latency.quantile(990),
                    p.query_latency.quantile(999),
                );
                if let Some(budget) = budget_secs {
                    if wall.as_secs() >= budget {
                        eprintln!(
                            "BUDGET EXCEEDED: {} ({}) at {} nodes took {:.2} s (budget {budget} s)",
                            kind.name(),
                            map.name(),
                            nodes,
                            wall.as_secs_f64()
                        );
                        over_budget = true;
                    }
                }
                points.push(p);
            }
        }
    }
    let json = render_json(&points, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
    if over_budget {
        std::process::exit(1);
    }
}
