//! Incentive-based cut-off policies (§3.4) and the per-key policy engine.
//!
//! On receiving an update for a key whose interest bits are all clear, a
//! node decides whether there is incentive to keep receiving updates or to
//! cut them off with a Clear-Bit message. The paper examines:
//!
//! * **probability-based** thresholds that approximate, from the node's
//!   distance D to the authority, the probability that an update pushed
//!   this far is justified — a *linear* threshold (popular if at least
//!   `α·D` queries arrived since the last update) and a more lenient
//!   *logarithmic* one (`α·lg D`);
//! * **log-based** policies that look at the recent history of update
//!   arrivals — the *second-chance* policy (n = 3) cuts off after two
//!   consecutive update intervals without a single query;
//! * a fixed **push level**, used in §3.3 to find the optimal level a
//!   posteriori (updates propagate to all interested nodes at most `p`
//!   hops from the authority; `p = 0` degenerates to standard caching).
//!
//! Beyond the paper's fixed policies, [`CutoffPolicy::Adaptive`] tunes a
//! log-based tolerance from the node's locally observed justified-update
//! ratio (the fraction of update intervals that contained at least one
//! query — §3.1's justification criterion evaluated with the information
//! a single node has).
//!
//! Policies are assigned *per key*: a [`PropagationPolicy`] maps keys onto
//! policy classes, and each key's decision state ([`PolicyState`]) lives
//! in its [`crate::keystate::KeyState`]. A uniform assignment reproduces
//! the paper's homogeneous configurations; per-class tables express
//! mixed-policy populations.

use cup_des::KeyId;

/// Inputs to a cut-off decision.
#[derive(Debug, Clone, Copy)]
pub struct CutoffContext {
    /// Queries for the key received since the last decision window reset.
    pub queries_since_reset: u32,
    /// Consecutive decision points with zero queries, *including* the
    /// current one if it is empty.
    pub consecutive_empty: u32,
    /// Distance (hops) of this node from the key's authority, as carried
    /// by the update being considered.
    pub depth: u32,
}

/// The adaptive policy's starting tolerance (second-chance's n = 3).
const ADAPTIVE_START_N: u32 = 3;

/// Decision intervals the adaptive policy observes before it starts
/// moving its tolerance.
const ADAPTIVE_WARMUP: u32 = 4;

/// Per-key decision state, owned by [`crate::keystate::KeyState`].
///
/// Every policy decision records one *interval* observation (was there at
/// least one query since the last decision?); the adaptive policy reads
/// the resulting locally observed justified ratio to tune its tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyState {
    /// Decision intervals observed so far.
    intervals: u32,
    /// Intervals that contained at least one query (locally justified).
    justified_intervals: u32,
    /// The adaptive tolerance n; 0 until the first decision initializes
    /// it.
    n: u32,
}

impl PolicyState {
    /// Fresh (zero) state.
    pub fn new() -> Self {
        PolicyState::default()
    }

    /// Decision intervals observed so far.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// Fraction of observed intervals that contained at least one query —
    /// the node-local estimate of the §3.1 justified-update ratio.
    pub fn justified_ratio(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            f64::from(self.justified_intervals) / f64::from(self.intervals)
        }
    }

    /// The adaptive policy's current tolerance (0 = not yet initialized).
    pub fn tolerance(&self) -> u32 {
        self.n
    }

    /// Records one decision interval.
    fn observe(&mut self, justified: bool) {
        self.intervals = self.intervals.saturating_add(1);
        if justified {
            self.justified_intervals = self.justified_intervals.saturating_add(1);
        }
    }

    /// Moves the adaptive tolerance one step toward what the observed
    /// ratio warrants.
    fn adapt(&mut self, min_n: u32, max_n: u32, target: f64) {
        if self.n == 0 {
            self.n = ADAPTIVE_START_N.clamp(min_n, max_n);
        }
        if self.intervals < ADAPTIVE_WARMUP {
            return;
        }
        if self.justified_ratio() >= target {
            self.n = (self.n + 1).min(max_n);
        } else {
            self.n = self.n.saturating_sub(1).max(min_n);
        }
    }
}

/// A cut-off policy: decides whether a node keeps receiving updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutoffPolicy {
    /// Never cut off: receive every update (the "all-out push" reference
    /// configuration used to find the maximal-benefit baseline in §3.3).
    Always,
    /// Cut off immediately: never receive updates beyond the first-time
    /// response. Combined with nothing else this behaves like standard
    /// caching for maintenance traffic.
    Never,
    /// Keep receiving while `queries_since_reset >= alpha * depth`.
    Linear {
        /// Queries-per-hop threshold slope.
        alpha: f64,
    },
    /// Keep receiving while `queries_since_reset >= alpha * lg(depth)`,
    /// with the threshold floored at one query whenever `alpha > 0` (at
    /// depth 1, `lg 1 = 0` would otherwise keep a never-queried node
    /// subscribed forever).
    Logarithmic {
        /// Queries-per-lg-hop threshold slope.
        alpha: f64,
    },
    /// Log-based policy over the last `n` update arrivals: cut off once
    /// `n - 1` consecutive update intervals saw no query. `n = 3` is the
    /// paper's second-chance policy.
    LogBased {
        /// History length in update arrivals (must be at least 2).
        n: u32,
    },
    /// Keep receiving while at most `level` hops from the authority.
    PushLevel {
        /// Maximum depth to which updates propagate.
        level: u32,
    },
    /// Log-based with a tolerance tuned from the node's locally observed
    /// justified-update ratio: intervals with queries push the tolerance
    /// up (more lenient), query-less intervals pull it down (stricter).
    Adaptive {
        /// Lower bound on the tolerance (cut after `min_n - 1` empties).
        min_n: u32,
        /// Upper bound on the tolerance.
        max_n: u32,
        /// Justified-ratio target separating "lenient" from "strict".
        target: f64,
    },
}

impl CutoffPolicy {
    /// Every policy family once, with representative parameters, for
    /// parametrized tests and benches (mirrors `OverlayKind::ALL`).
    pub const ALL: [CutoffPolicy; 7] = [
        CutoffPolicy::Always,
        CutoffPolicy::Never,
        CutoffPolicy::Linear { alpha: 0.1 },
        CutoffPolicy::Logarithmic { alpha: 0.25 },
        CutoffPolicy::LogBased { n: 3 },
        CutoffPolicy::PushLevel { level: 4 },
        CutoffPolicy::Adaptive {
            min_n: 2,
            max_n: 6,
            target: 0.5,
        },
    ];

    /// The paper's second-chance policy (log-based with n = 3).
    pub fn second_chance() -> Self {
        CutoffPolicy::LogBased { n: 3 }
    }

    /// The default adaptive policy: tolerance in [2, 6], second-chance
    /// start, 0.5 justified-ratio target.
    pub fn adaptive() -> Self {
        CutoffPolicy::Adaptive {
            min_n: 2,
            max_n: 6,
            target: 0.5,
        }
    }

    /// Stable parseable name (bench JSON fields, CLI flags, scenario
    /// policy classes). Parameterized policies embed their parameters:
    /// `linear:0.1`, `log:0.25`, `log-based:4`, `push:3`,
    /// `adaptive:2:6:0.5`. `LogBased {{ n: 3 }}` prints as the paper's
    /// `second-chance`.
    pub fn name(&self) -> String {
        match *self {
            CutoffPolicy::Always => "always".into(),
            CutoffPolicy::Never => "never".into(),
            CutoffPolicy::Linear { alpha } => format!("linear:{alpha}"),
            CutoffPolicy::Logarithmic { alpha } => format!("log:{alpha}"),
            CutoffPolicy::LogBased { n: 3 } => "second-chance".into(),
            CutoffPolicy::LogBased { n } => format!("log-based:{n}"),
            CutoffPolicy::PushLevel { level } => format!("push:{level}"),
            CutoffPolicy::Adaptive {
                min_n,
                max_n,
                target,
            } => format!("adaptive:{min_n}:{max_n}:{target}"),
        }
    }

    /// Parses the inverse of [`CutoffPolicy::name`]. Also accepts the
    /// bare `adaptive` (the [`CutoffPolicy::adaptive`] defaults) and
    /// `log-based:3` for second-chance.
    pub fn parse(s: &str) -> Option<CutoffPolicy> {
        match s {
            "always" => return Some(CutoffPolicy::Always),
            "never" => return Some(CutoffPolicy::Never),
            "second-chance" => return Some(CutoffPolicy::second_chance()),
            "adaptive" => return Some(CutoffPolicy::adaptive()),
            _ => {}
        }
        let (family, params) = s.split_once(':')?;
        match family {
            "linear" => Some(CutoffPolicy::Linear {
                alpha: params.parse().ok()?,
            }),
            "log" => Some(CutoffPolicy::Logarithmic {
                alpha: params.parse().ok()?,
            }),
            "log-based" => Some(CutoffPolicy::LogBased {
                n: params.parse().ok()?,
            }),
            "push" => Some(CutoffPolicy::PushLevel {
                level: params.parse().ok()?,
            }),
            "adaptive" => {
                let mut it = params.split(':');
                let min_n = it.next()?.parse().ok()?;
                let max_n = it.next()?.parse().ok()?;
                let target = it.next()?.parse().ok()?;
                if it.next().is_some() {
                    return None;
                }
                Some(CutoffPolicy::Adaptive {
                    min_n,
                    max_n,
                    target,
                })
            }
            _ => None,
        }
    }

    /// Returns `true` if the node should keep receiving updates for the
    /// key, `false` to cut off (push a Clear-Bit upstream). Stateless:
    /// the adaptive policy is evaluated at its starting tolerance.
    pub fn keep_receiving(&self, ctx: &CutoffContext) -> bool {
        self.would_keep(&PolicyState::default(), ctx)
    }

    /// Read-only evaluation against per-key state (the clear-bit path,
    /// which re-checks popularity without consuming a decision interval).
    pub fn would_keep(&self, state: &PolicyState, ctx: &CutoffContext) -> bool {
        match *self {
            CutoffPolicy::Always => true,
            CutoffPolicy::Never => false,
            CutoffPolicy::Linear { alpha } => {
                f64::from(ctx.queries_since_reset) >= alpha * f64::from(ctx.depth)
            }
            CutoffPolicy::Logarithmic { alpha } => {
                let lg = f64::from(ctx.depth.max(1)).log2();
                // lg 1 = 0 makes the raw threshold vanish one hop from
                // the authority; any positive slope demands at least one
                // query, or a never-queried node subscribes forever.
                let mut threshold = alpha * lg;
                if alpha > 0.0 {
                    threshold = threshold.max(1.0);
                }
                f64::from(ctx.queries_since_reset) >= threshold
            }
            CutoffPolicy::LogBased { n } => ctx.consecutive_empty < n.saturating_sub(1),
            CutoffPolicy::PushLevel { level } => ctx.depth <= level,
            CutoffPolicy::Adaptive { min_n, max_n, .. } => {
                let n = if state.n == 0 {
                    ADAPTIVE_START_N.clamp(min_n, max_n)
                } else {
                    state.n
                };
                ctx.consecutive_empty < n.saturating_sub(1)
            }
        }
    }

    /// Stateful decision at an update decision point: records the
    /// interval observation in `state` (and, for the adaptive policy,
    /// moves the tolerance), then decides keep/cut.
    pub fn decide(&self, state: &mut PolicyState, ctx: &CutoffContext) -> bool {
        state.observe(ctx.queries_since_reset > 0);
        if let CutoffPolicy::Adaptive {
            min_n,
            max_n,
            target,
        } = *self
        {
            state.adapt(min_n, max_n, target);
        }
        self.would_keep(state, ctx)
    }

    /// Returns `true` if this policy limits propagation at the *sender*
    /// side to children within `level` hops of the authority. Only
    /// [`CutoffPolicy::PushLevel`] does: the paper defines push level so
    /// that a level of 0 means the authority squelches updates before
    /// sending anything, rather than children cutting off after receiving
    /// one update each.
    pub fn sender_side_level(&self) -> Option<u32> {
        match *self {
            CutoffPolicy::PushLevel { level } => Some(level),
            _ => None,
        }
    }
}

crate::string_surface!(display_via_name CutoffPolicy);

/// Maximum policy classes a [`PropagationPolicy`] can hold (keeps
/// `NodeConfig` `Copy`).
pub const MAX_POLICY_CLASSES: usize = 8;

/// Per-key policy assignment: keys map onto policy classes round-robin
/// (`key.index() % classes`), so a table of k classes partitions any
/// dense key catalog into k interleaved populations. One class is the
/// paper's homogeneous configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationPolicy {
    classes: [CutoffPolicy; MAX_POLICY_CLASSES],
    len: u8,
}

impl PropagationPolicy {
    /// Every key gets the same policy (the paper's configurations).
    pub fn uniform(policy: CutoffPolicy) -> Self {
        PropagationPolicy {
            classes: [policy; MAX_POLICY_CLASSES],
            len: 1,
        }
    }

    /// Keys are assigned by class: key k gets `policies[k % len]`.
    ///
    /// # Panics
    ///
    /// Panics if `policies` is empty or longer than
    /// [`MAX_POLICY_CLASSES`] — policy tables are programmer input.
    pub fn per_class(policies: &[CutoffPolicy]) -> Self {
        assert!(
            !policies.is_empty() && policies.len() <= MAX_POLICY_CLASSES,
            "policy table needs 1..={MAX_POLICY_CLASSES} classes, got {}",
            policies.len()
        );
        let mut classes = [policies[0]; MAX_POLICY_CLASSES];
        classes[..policies.len()].copy_from_slice(policies);
        PropagationPolicy {
            classes,
            len: policies.len() as u8,
        }
    }

    /// The active policy classes.
    pub fn classes(&self) -> &[CutoffPolicy] {
        &self.classes[..self.len as usize]
    }

    /// `true` when every key shares one policy.
    pub fn is_uniform(&self) -> bool {
        self.len == 1
    }

    /// The policy governing `key`.
    pub fn policy_for(&self, key: KeyId) -> CutoffPolicy {
        self.classes[key.index() % self.len as usize]
    }

    /// Stateful decision for `key` at an update decision point.
    pub fn decide(&self, key: KeyId, state: &mut PolicyState, ctx: &CutoffContext) -> bool {
        self.policy_for(key).decide(state, ctx)
    }

    /// Read-only evaluation for `key` (the clear-bit path).
    pub fn would_keep(&self, key: KeyId, state: &PolicyState, ctx: &CutoffContext) -> bool {
        self.policy_for(key).would_keep(state, ctx)
    }

    /// Sender-side push-level cap for `key`, if its policy has one.
    pub fn sender_side_level(&self, key: KeyId) -> Option<u32> {
        self.policy_for(key).sender_side_level()
    }

    /// Stable comma-joined class names (inverse of
    /// [`PropagationPolicy::parse`]).
    pub fn name(&self) -> String {
        self.classes()
            .iter()
            .map(CutoffPolicy::name)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a comma-separated list of policy names into a class table
    /// (one name = uniform).
    pub fn parse(s: &str) -> Option<Self> {
        let classes: Option<Vec<CutoffPolicy>> = s
            .split(',')
            .map(|p| CutoffPolicy::parse(p.trim()))
            .collect();
        let classes = classes?;
        if classes.is_empty() || classes.len() > MAX_POLICY_CLASSES {
            return None;
        }
        Some(PropagationPolicy::per_class(&classes))
    }
}

impl Default for PropagationPolicy {
    fn default() -> Self {
        PropagationPolicy::uniform(CutoffPolicy::second_chance())
    }
}

crate::string_surface!(display_via_name PropagationPolicy);

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(queries: u32, empty: u32, depth: u32) -> CutoffContext {
        CutoffContext {
            queries_since_reset: queries,
            consecutive_empty: empty,
            depth,
        }
    }

    #[test]
    fn always_and_never() {
        assert!(CutoffPolicy::Always.keep_receiving(&ctx(0, 99, 99)));
        assert!(!CutoffPolicy::Never.keep_receiving(&ctx(99, 0, 1)));
    }

    #[test]
    fn linear_threshold_scales_with_depth() {
        let p = CutoffPolicy::Linear { alpha: 0.5 };
        // Depth 10 needs at least 5 queries.
        assert!(p.keep_receiving(&ctx(5, 0, 10)));
        assert!(!p.keep_receiving(&ctx(4, 0, 10)));
        // Close to the root almost anything passes.
        assert!(p.keep_receiving(&ctx(1, 0, 2)));
    }

    #[test]
    fn logarithmic_is_more_lenient_than_linear() {
        let lin = CutoffPolicy::Linear { alpha: 0.5 };
        let log = CutoffPolicy::Logarithmic { alpha: 0.5 };
        // At depth 16: linear needs 8 queries, logarithmic needs 2.
        assert!(!lin.keep_receiving(&ctx(2, 0, 16)));
        assert!(log.keep_receiving(&ctx(2, 0, 16)));
    }

    #[test]
    fn logarithmic_shallow_depths_need_one_query() {
        // lg 1 = 0 and lg 2 = 1 give raw thresholds of 0 and 0.5; a
        // positive slope must still demand one query, or a never-queried
        // node one hop from the authority keeps its subscription forever.
        let log = CutoffPolicy::Logarithmic { alpha: 0.5 };
        for depth in [0, 1, 2] {
            assert!(!log.keep_receiving(&ctx(0, 0, depth)), "depth {depth}");
            assert!(log.keep_receiving(&ctx(1, 0, depth)), "depth {depth}");
        }
        // A zero slope keeps the degenerate always-keep behaviour.
        let flat = CutoffPolicy::Logarithmic { alpha: 0.0 };
        assert!(flat.keep_receiving(&ctx(0, 0, 1)));
    }

    #[test]
    fn logarithmic_deep_thresholds_unchanged_by_floor() {
        // At depth 16 with α = 0.5 the threshold is 2 — above the floor,
        // so the depth ≤ 1 fix must not alter it.
        let log = CutoffPolicy::Logarithmic { alpha: 0.5 };
        assert!(log.keep_receiving(&ctx(2, 0, 16)));
        assert!(!log.keep_receiving(&ctx(1, 0, 16)));
    }

    #[test]
    fn second_chance_cuts_on_second_empty_interval() {
        let p = CutoffPolicy::second_chance();
        assert!(p.keep_receiving(&ctx(0, 0, 5)), "no history yet");
        assert!(
            p.keep_receiving(&ctx(0, 1, 5)),
            "first empty: second chance"
        );
        assert!(!p.keep_receiving(&ctx(0, 2, 5)), "second empty: cut off");
    }

    #[test]
    fn log_based_general_n() {
        let p = CutoffPolicy::LogBased { n: 5 };
        assert!(p.keep_receiving(&ctx(0, 3, 1)));
        assert!(!p.keep_receiving(&ctx(0, 4, 1)));
    }

    #[test]
    fn push_level_caps_depth() {
        let p = CutoffPolicy::PushLevel { level: 3 };
        assert!(p.keep_receiving(&ctx(0, 9, 3)));
        assert!(!p.keep_receiving(&ctx(9, 0, 4)));
        assert_eq!(p.sender_side_level(), Some(3));
        assert_eq!(CutoffPolicy::Always.sender_side_level(), None);
    }

    #[test]
    fn names_round_trip() {
        for policy in CutoffPolicy::ALL {
            assert_eq!(
                CutoffPolicy::parse(&policy.name()),
                Some(policy),
                "{policy} must round-trip"
            );
            assert_eq!(policy.to_string(), policy.name());
        }
        // Parameterized forms round-trip through float formatting.
        for p in [
            CutoffPolicy::Linear { alpha: 0.001 },
            CutoffPolicy::Logarithmic { alpha: 0.25 },
            CutoffPolicy::LogBased { n: 7 },
            CutoffPolicy::PushLevel { level: 0 },
            CutoffPolicy::Adaptive {
                min_n: 2,
                max_n: 9,
                target: 0.75,
            },
        ] {
            assert_eq!(CutoffPolicy::parse(&p.name()), Some(p));
        }
        assert_eq!(CutoffPolicy::second_chance().name(), "second-chance");
        assert_eq!(
            CutoffPolicy::parse("log-based:3"),
            Some(CutoffPolicy::second_chance())
        );
        assert_eq!(
            CutoffPolicy::parse("adaptive"),
            Some(CutoffPolicy::adaptive())
        );
        for garbage in ["", "linear", "linear:x", "pastry", "adaptive:1", "push:-1"] {
            assert_eq!(CutoffPolicy::parse(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn adaptive_starts_as_second_chance() {
        let p = CutoffPolicy::adaptive();
        let mut state = PolicyState::new();
        // First empty interval: tolerated (n = 3 start).
        assert!(p.decide(&mut state, &ctx(0, 1, 5)));
        // Second empty interval: cut, exactly like second-chance.
        assert!(!p.decide(&mut state, &ctx(0, 2, 5)));
        assert_eq!(state.tolerance(), 3);
    }

    #[test]
    fn adaptive_tightens_under_sustained_silence() {
        let p = CutoffPolicy::adaptive();
        let mut state = PolicyState::new();
        for i in 0..6 {
            p.decide(&mut state, &ctx(0, i + 1, 5));
        }
        assert_eq!(state.tolerance(), 2, "ratio 0 drives n to the floor");
        assert_eq!(state.justified_ratio(), 0.0);
        // At the floor a single empty interval is terminal.
        assert!(!p.decide(&mut state, &ctx(0, 1, 5)));
    }

    #[test]
    fn adaptive_loosens_under_sustained_queries() {
        let p = CutoffPolicy::adaptive();
        let mut state = PolicyState::new();
        for _ in 0..8 {
            assert!(p.decide(&mut state, &ctx(3, 0, 5)));
        }
        assert_eq!(state.tolerance(), 6, "ratio 1 drives n to the cap");
        // The earned leniency tolerates a long quiet stretch.
        assert!(p.would_keep(&state, &ctx(0, 4, 5)));
        assert!(!p.would_keep(&state, &ctx(0, 5, 5)));
    }

    #[test]
    fn policy_state_tracks_justified_ratio() {
        let p = CutoffPolicy::second_chance();
        let mut state = PolicyState::new();
        p.decide(&mut state, &ctx(2, 0, 3));
        p.decide(&mut state, &ctx(0, 1, 3));
        p.decide(&mut state, &ctx(1, 0, 3));
        p.decide(&mut state, &ctx(0, 1, 3));
        assert_eq!(state.intervals(), 4);
        assert_eq!(state.justified_ratio(), 0.5);
    }

    #[test]
    fn uniform_table_assigns_every_key_the_same_policy() {
        let t = PropagationPolicy::uniform(CutoffPolicy::Always);
        assert!(t.is_uniform());
        for k in 0..20 {
            assert_eq!(t.policy_for(KeyId(k)), CutoffPolicy::Always);
        }
        assert_eq!(t.classes(), &[CutoffPolicy::Always]);
    }

    #[test]
    fn per_class_table_interleaves_keys() {
        let t = PropagationPolicy::per_class(&[
            CutoffPolicy::Always,
            CutoffPolicy::Never,
            CutoffPolicy::second_chance(),
        ]);
        assert!(!t.is_uniform());
        assert_eq!(t.policy_for(KeyId(0)), CutoffPolicy::Always);
        assert_eq!(t.policy_for(KeyId(1)), CutoffPolicy::Never);
        assert_eq!(t.policy_for(KeyId(2)), CutoffPolicy::second_chance());
        assert_eq!(t.policy_for(KeyId(3)), CutoffPolicy::Always);
        assert_eq!(t.sender_side_level(KeyId(1)), None);
    }

    #[test]
    fn table_names_round_trip() {
        let t = PropagationPolicy::per_class(&[
            CutoffPolicy::second_chance(),
            CutoffPolicy::Linear { alpha: 0.1 },
        ]);
        assert_eq!(t.name(), "second-chance,linear:0.1");
        assert_eq!(PropagationPolicy::parse(&t.name()), Some(t));
        assert_eq!(
            PropagationPolicy::parse("always"),
            Some(PropagationPolicy::uniform(CutoffPolicy::Always))
        );
        assert_eq!(PropagationPolicy::parse("always,pastry"), None);
        assert_eq!(PropagationPolicy::default().name(), "second-chance");
    }

    #[test]
    #[should_panic(expected = "policy table needs")]
    fn per_class_rejects_empty_tables() {
        let _ = PropagationPolicy::per_class(&[]);
    }
}
