//! Deterministic case generation and the test-case loop.

/// A failed property-test case (the `Err` payload of a case closure).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator behind every strategy (SplitMix64).
///
/// Seeded from the test name and case index; never from entropy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range handed to a strategy");
        // Lemire's multiply-shift; bias is unmeasurable at test scales.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `f` once per case; panics with replay context on the first
/// failure. This is the body the [`crate::proptest!`] macro expands to.
pub fn run_cases<F>(test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(e) = f(&mut rng) {
            panic!("property `{test_name}` failed at case {case}/{cases}: {e}");
        }
    }
}
