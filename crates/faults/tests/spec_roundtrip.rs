//! Property tests for the fault-spec grammar.
//!
//! The spec strings are the public surface of the fault plane — workloads
//! and benches carry them as plain strings — so the grammar must be
//! stable under round-trips: parsing a spec, printing its canonical
//! spelling, and parsing that again must reach the same structured value
//! and expand to the same timed events. This covers every family
//! (including the behavior faults) and every window shape.

use proptest::prelude::*;

use cup_des::SimTime;
use cup_faults::{FaultKind, FaultPlan, FaultSpec, SpecParam, SpecWindow};

/// One generated structured spec, always grammar-valid.
fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (
        (
            0u32..7,         // which family
            0u64..1_000_001, // rate/factor grist
            0usize..10_000,  // node index
            2u32..64,        // partition groups
        ),
        (
            0u32..3,      // window shape: none / open / closed
            0u64..86_400, // window start (seconds)
            1u64..10_000, // window length (seconds)
        ),
    )
        .prop_map(
            |((family, grist, node, groups), (window_shape, from, len))| {
                let (kind, param) = match family {
                    0 => (FaultKind::Drop, SpecParam::Rate(grist as f64 / 1_000_000.0)),
                    1 => (
                        FaultKind::Spike,
                        SpecParam::Factor((grist + 1) as f64 / 100.0),
                    ),
                    2 => (FaultKind::Crash, SpecParam::Node(node)),
                    3 => (FaultKind::Partition, SpecParam::Groups(groups)),
                    4 => (FaultKind::StaleServe, SpecParam::Node(node)),
                    5 => (FaultKind::DropUpdates, SpecParam::Node(node)),
                    _ => (FaultKind::LieRefresh, SpecParam::Node(node)),
                };
                // Crash and partition demand a window; give them one even
                // when the shape draw said "none".
                let needs_window = matches!(kind, FaultKind::Crash | FaultKind::Partition);
                let window = match (window_shape, needs_window) {
                    (0, false) => None,
                    (1, _) | (0, true) => Some(SpecWindow {
                        from_secs: from,
                        until_secs: None,
                    }),
                    _ => Some(SpecWindow {
                        from_secs: from,
                        until_secs: Some(from + len),
                    }),
                };
                FaultSpec {
                    kind,
                    param,
                    window,
                }
            },
        )
}

proptest! {
    /// parse → Display → parse is the identity, for every family and
    /// window shape, and both spellings expand to the same timed events.
    #[test]
    fn display_then_parse_is_identity(spec in arb_spec()) {
        let printed = spec.to_string();
        let reparsed: FaultSpec = printed
            .parse()
            .unwrap_or_else(|e| panic!("canonical '{printed}' must parse: {e}"));
        prop_assert_eq!(spec, reparsed);
        prop_assert_eq!(spec.events(), reparsed.events());
        // A second Display is already a fixed point.
        prop_assert_eq!(printed.clone(), reparsed.to_string());
        // The plan parser accepts the canonical spelling too.
        let plan = FaultPlan::parse_specs(&[printed.as_str()]);
        prop_assert!(plan.is_ok(), "plan rejected '{}': {:?}", printed, plan);
    }

    /// The expansion invariants hold for every generated spec: onset at
    /// the window start (t = 0 when unwindowed), a closed window emits
    /// exactly one paired reversal at its end, an open one emits none.
    #[test]
    fn events_follow_the_window(spec in arb_spec()) {
        let events = spec.events();
        let expected_onset = spec
            .window
            .map_or(SimTime::ZERO, |w| SimTime::from_secs(w.from_secs));
        prop_assert_eq!(events[0].at, expected_onset);
        match spec.window.and_then(|w| w.until_secs) {
            Some(until) => {
                prop_assert_eq!(events.len(), 2);
                prop_assert_eq!(events[1].at, SimTime::from_secs(until));
                prop_assert!(events[0].at < events[1].at);
            }
            None => prop_assert_eq!(events.len(), 1),
        }
    }
}

#[test]
fn parse_failures_name_the_offending_token() {
    // (bad spec, token the error must contain)
    for (bad, token) in [
        ("meteor:1@t=5", "'meteor'"),
        ("drop", "no ':' separator"),
        ("drop:zzz", "'zzz'"),
        ("drop:1.5", "1.5 outside [0, 1]"),
        ("spike:-2", "-2 must be positive"),
        ("crash:xyz@t=1", "'xyz'"),
        ("crash:5", "needs a time"),
        ("partition:1@t=1..2", "partitions nothing"),
        ("stale-serve:bob", "'bob'"),
        ("drop-updates:1.5", "'1.5'"),
        ("lie-refresh:3@t=9..9", "9..9 must end after it starts"),
        ("drop:0.1@t=soon", "'soon'"),
    ] {
        let err = FaultPlan::parse_specs(&[bad]).unwrap_err();
        assert!(
            err.contains(token),
            "error for '{bad}' must name {token}, got: {err}"
        );
        assert!(
            err.contains(bad),
            "error for '{bad}' must echo the whole spec, got: {err}"
        );
    }
}

#[test]
fn every_family_has_a_canonical_example() {
    for (spec, kind) in [
        ("drop:0.05", FaultKind::Drop),
        ("spike:3@t=50..80", FaultKind::Spike),
        ("crash:17@t=50", FaultKind::Crash),
        ("partition:2@t=30..60", FaultKind::Partition),
        ("stale-serve:17@t=50..200", FaultKind::StaleServe),
        ("drop-updates:9", FaultKind::DropUpdates),
        ("lie-refresh:3@t=40", FaultKind::LieRefresh),
    ] {
        let parsed: FaultSpec = spec.parse().unwrap();
        assert_eq!(parsed.kind, kind);
        assert_eq!(parsed.to_string(), spec, "examples are already canonical");
    }
}
