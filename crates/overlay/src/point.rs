//! Points on the CAN's toroidal coordinate space.
//!
//! The coordinate space is the 2-D torus `[0, W)²` with `W = 2³²`, stored in
//! `u64` so interval midpoints stay exact integers (no floating point, no
//! rounding drift across platforms).

/// Width of the coordinate space in each dimension.
pub const SPACE_WIDTH: u64 = 1 << 32;

/// A point in the 2-D toroidal coordinate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    /// Horizontal coordinate in `[0, SPACE_WIDTH)`.
    pub x: u64,
    /// Vertical coordinate in `[0, SPACE_WIDTH)`.
    pub y: u64,
}

impl Point {
    /// Creates a point, wrapping coordinates into the space.
    pub fn new(x: u64, y: u64) -> Self {
        Point {
            x: x % SPACE_WIDTH,
            y: y % SPACE_WIDTH,
        }
    }
}

/// Distance between two scalar coordinates on the circle of circumference
/// [`SPACE_WIDTH`].
pub fn torus_dist_1d(a: u64, b: u64) -> u64 {
    let d = a.abs_diff(b);
    d.min(SPACE_WIDTH - d)
}

/// Squared Euclidean distance between two points on the torus.
pub fn torus_dist_sq(a: Point, b: Point) -> u128 {
    let dx = torus_dist_1d(a.x, b.x) as u128;
    let dy = torus_dist_1d(a.y, b.y) as u128;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_wraps() {
        let p = Point::new(SPACE_WIDTH + 5, 3);
        assert_eq!(p.x, 5);
        assert_eq!(p.y, 3);
    }

    #[test]
    fn dist_1d_symmetric_and_wrapping() {
        assert_eq!(torus_dist_1d(0, 10), 10);
        assert_eq!(torus_dist_1d(10, 0), 10);
        // Going the short way around the circle.
        assert_eq!(torus_dist_1d(0, SPACE_WIDTH - 1), 1);
        assert_eq!(torus_dist_1d(5, 5), 0);
        // Antipodal points.
        assert_eq!(torus_dist_1d(0, SPACE_WIDTH / 2), SPACE_WIDTH / 2);
    }

    #[test]
    fn dist_sq_combines_dimensions() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(torus_dist_sq(a, b), 25);
        let c = Point::new(SPACE_WIDTH - 3, SPACE_WIDTH - 4);
        assert_eq!(torus_dist_sq(a, c), 25);
    }
}
