//! The policy-sweep benchmark behind `BENCH_policy.json`.
//!
//! Runs a cut-off-policy × query-rate grid of justification-tracked DES
//! experiments twice — once serially, once across the sweep worker pool —
//! and reports per-point economics (total cost, justified ratio, hit
//! rate) plus the sweep subsystem's points/sec for both paths. The rows
//! must be byte-identical between the two runs; `rows_identical` records
//! that the check ran, and the speedup line is the CI artifact's
//! scaling-regression tripwire (≥2× expected on a ≥4-core runner).

use std::time::{Duration, Instant};

use cup_core::CutoffPolicy;
use cup_simnet::par::default_workers;
use cup_simnet::sweeps::{policy_rate_grid, PolicyGridPoint};
use cup_workload::Scenario;

/// The default policy list: every family once, paper parameters.
pub fn default_policies() -> Vec<CutoffPolicy> {
    vec![
        CutoffPolicy::Always,
        CutoffPolicy::Never,
        CutoffPolicy::Linear { alpha: 0.1 },
        CutoffPolicy::Logarithmic { alpha: 0.25 },
        CutoffPolicy::second_chance(),
        CutoffPolicy::adaptive(),
    ]
}

/// One serial-vs-parallel run of the policy × rate grid.
#[derive(Debug, Clone)]
pub struct PolicyBenchReport {
    /// The grid rows (parallel run; asserted identical to the serial
    /// run's).
    pub points: Vec<PolicyGridPoint>,
    /// Wall-clock of the serial (1-worker) sweep.
    pub wall_serial: Duration,
    /// Wall-clock of the parallel sweep.
    pub wall_parallel: Duration,
    /// Worker threads the parallel sweep used.
    pub workers: usize,
    /// Whether the two paths produced byte-identical rows (always true;
    /// recorded so the artifact proves the check ran).
    pub rows_identical: bool,
}

impl PolicyBenchReport {
    /// Grid points per second for a wall-clock reading.
    fn points_per_sec(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.points.len() as f64 / secs
        }
    }

    /// Points/sec of the serial path.
    pub fn serial_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_serial)
    }

    /// Points/sec of the parallel path.
    pub fn parallel_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_parallel)
    }

    /// Serial wall / parallel wall.
    pub fn speedup(&self) -> f64 {
        let parallel = self.wall_parallel.as_secs_f64();
        if parallel == 0.0 {
            0.0
        } else {
            self.wall_serial.as_secs_f64() / parallel
        }
    }
}

/// Runs the grid serially and in parallel, timing both.
///
/// # Panics
///
/// Panics if the parallel rows differ from the serial rows — the sweep
/// subsystem's stable-ordering guarantee is part of what this benchmark
/// certifies.
pub fn run_policy_bench(
    base: &Scenario,
    policies: &[CutoffPolicy],
    rates: &[f64],
    workers: usize,
) -> PolicyBenchReport {
    let start = Instant::now();
    let serial = policy_rate_grid(base, policies, rates, 1);
    let wall_serial = start.elapsed();

    let start = Instant::now();
    let parallel = policy_rate_grid(base, policies, rates, workers);
    let wall_parallel = start.elapsed();

    assert_eq!(
        serial, parallel,
        "parallel sweep rows must be byte-identical to the serial path"
    );
    PolicyBenchReport {
        points: parallel,
        wall_serial,
        wall_parallel,
        workers: workers.clamp(1, (policies.len() * rates.len()).max(1)),
        rows_identical: true,
    }
}

/// Convenience wrapper using the machine's sweep worker pool.
pub fn run_policy_bench_default(
    base: &Scenario,
    policies: &[CutoffPolicy],
    rates: &[f64],
) -> PolicyBenchReport {
    run_policy_bench(base, policies, rates, default_workers())
}

/// Renders the report as the `BENCH_policy.json` document.
///
/// Hand-rolled JSON (the workspace builds offline, without serde);
/// policy names come from `CutoffPolicy::name`, which never needs
/// escaping.
pub fn render_json(report: &PolicyBenchReport, base: &Scenario, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cup-simnet policy x rate sweep\",\n");
    out.push_str(&format!("  \"nodes\": {},\n", base.nodes));
    out.push_str(&format!("  \"keys\": {},\n", base.keys));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!(
        "  \"serial_wall_ms\": {:.3},\n",
        report.wall_serial.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"parallel_wall_ms\": {:.3},\n",
        report.wall_parallel.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"serial_points_per_sec\": {:.3},\n",
        report.serial_points_per_sec()
    ));
    out.push_str(&format!(
        "  \"parallel_points_per_sec\": {:.3},\n",
        report.parallel_points_per_sec()
    ));
    out.push_str(&format!("  \"speedup\": {:.3},\n", report.speedup()));
    out.push_str(&format!(
        "  \"rows_identical\": {},\n",
        report.rows_identical
    ));
    out.push_str("  \"runs\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let comma = if i + 1 < report.points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"rate\": {}, \"total_cost\": {}, \"miss_cost\": {}, \
             \"justified\": {}, \"tracked\": {}, \"justified_ratio\": {:.4}, \
             \"hit_rate\": {:.4}, \"query_p50_us\": {}, \
             \"query_p99_us\": {}}}{comma}\n",
            p.policy,
            p.rate,
            p.total_cost,
            p.miss_cost,
            p.justified,
            p.tracked,
            p.justified_ratio(),
            p.hit_rate,
            p.query_p50_us,
            p.query_p99_us,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimTime;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 32,
            keys: 3,
            query_rate: 5.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(800),
            sim_end: SimTime::from_secs(1_200),
            seed: 9,
            ..Scenario::default()
        }
    }

    #[test]
    fn bench_runs_and_renders() {
        let policies = [CutoffPolicy::second_chance(), CutoffPolicy::Always];
        let report = run_policy_bench(&tiny(), &policies, &[5.0], 2);
        assert_eq!(report.points.len(), 2);
        assert!(report.rows_identical);
        assert!(report.serial_points_per_sec() > 0.0);
        assert!(report.parallel_points_per_sec() > 0.0);
        let json = render_json(&report, &tiny(), 9);
        assert!(json.contains("\"policy\": \"second-chance\""));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"query_p50_us\""));
        assert!(json.contains("\"query_p99_us\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn default_policies_all_have_stable_names() {
        for p in default_policies() {
            assert_eq!(CutoffPolicy::parse(&p.name()), Some(p));
        }
    }
}
