//! The rate-limited sampled cache audit (LOCKSS-style polling).
//!
//! CUP trusts intermediate nodes to relay deletions honestly; a peer
//! that swallows them keeps serving retired entries forever, and so does
//! every node below it — the poisoned subtree agrees with itself. The
//! defense, following the LOCKSS design (Maniatis et al.): nodes poll a
//! small *population-wide* random sample of peers about keys they serve,
//! and repair their caches when pollees contradict them with firsthand
//! retire knowledge (delete tombstones).
//!
//! Everything here is pure arithmetic on the virtual clock: peer
//! selection is a counter-mode hash ([`sample_targets`]), so the DES and
//! any M-worker live run audit the same peers in the same rounds and the
//! whole defense stays byte-identical across runtimes.

use cup_des::{KeyId, NodeId, ReplicaId};

use crate::config::AuditConfig;
use crate::entry::IndexEntry;

/// SplitMix64 finalizer — the workspace's standard bit mixer (the fault
/// plane keeps its own copy; `cup-core` cannot depend on `cup-faults`).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The peers `me` polls in audit round `round` of `key`: up to
/// `cfg.sample` distinct nodes drawn counter-mode from the whole
/// population, self excluded. Pure — both runtimes call it with the
/// same arguments and send probes to identical targets.
pub fn sample_targets(cfg: &AuditConfig, me: NodeId, key: KeyId, round: u64) -> Vec<NodeId> {
    let population = u64::from(cfg.population);
    if population <= 1 {
        return Vec::new();
    }
    let want = (cfg.sample as usize).min(population as usize - 1);
    let mut picked: Vec<NodeId> = Vec::with_capacity(want);
    // Bounded rejection sampling: hash draws skip self and duplicates;
    // the bound only binds when `sample` nears the population size.
    let max_draws = 16 * (u64::from(cfg.sample) + 1);
    let mut draw = 0u64;
    while picked.len() < want && draw < max_draws {
        let mut h = cfg.seed;
        for v in [me.index() as u64, u64::from(key.0), round, draw] {
            h = mix64(h ^ v);
        }
        draw += 1;
        let node = NodeId((h % population) as u32);
        if node == me || picked.contains(&node) {
            continue;
        }
        picked.push(node);
    }
    picked
}

/// The running tally of one in-flight audit round at the auditing node.
#[derive(Debug, Clone, Default)]
pub struct AuditTally {
    /// The round this tally belongs to (late replies from earlier rounds
    /// are ignored).
    pub round: u64,
    /// Probes sent this round.
    pub expected: u32,
    /// Replies received so far.
    pub received: u32,
    /// Per-replica dissent counts: pollees that have seen each replica
    /// we still serve retired.
    votes: Vec<(ReplicaId, u32)>,
    /// Fresh entries offered by dissenting pollees (the refetch payload
    /// adopted on repair), deduplicated by replica.
    payload: Vec<IndexEntry>,
}

impl AuditTally {
    /// A fresh tally for `round` awaiting `expected` replies.
    pub fn new(round: u64, expected: u32) -> Self {
        AuditTally {
            round,
            expected,
            ..AuditTally::default()
        }
    }

    /// Records one pollee's dissent against `replica`; returns the
    /// dissent count so far.
    pub fn note_dissent(&mut self, replica: ReplicaId) -> u32 {
        match self.votes.iter_mut().find(|(r, _)| *r == replica) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                self.votes.push((replica, 1));
                1
            }
        }
    }

    /// Replicas whose dissent count has reached `quorum`.
    pub fn condemned(&self, quorum: u32) -> Vec<ReplicaId> {
        self.votes
            .iter()
            .filter(|(_, n)| *n >= quorum)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Stores a dissenting pollee's fresh entries as refetch candidates
    /// (first offer per replica wins — deterministic in arrival order).
    pub fn offer(&mut self, entries: &[IndexEntry]) {
        for e in entries {
            if !self.payload.iter().any(|p| p.replica == e.replica) {
                self.payload.push(*e);
            }
        }
    }

    /// The refetch payload collected from dissenters.
    pub fn payload(&self) -> &[IndexEntry] {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimDuration;

    fn cfg(population: u32, sample: u32) -> AuditConfig {
        AuditConfig {
            interval: SimDuration::from_secs(60),
            sample,
            quorum: 2,
            population,
            seed: 0xA0D1,
        }
    }

    #[test]
    fn sampling_is_pure_self_free_and_duplicate_free() {
        let c = cfg(64, 8);
        let me = NodeId(17);
        let a = sample_targets(&c, me, KeyId(3), 5);
        let b = sample_targets(&c, me, KeyId(3), 5);
        assert_eq!(a, b, "pure function of (cfg, me, key, round)");
        assert_eq!(a.len(), 8);
        assert!(!a.contains(&me), "never polls itself");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "no duplicate targets");
        assert!(a.iter().all(|n| n.index() < 64), "inside the population");
    }

    #[test]
    fn rounds_keys_and_nodes_decorrelate_samples() {
        let c = cfg(256, 8);
        let base = sample_targets(&c, NodeId(1), KeyId(0), 1);
        assert_ne!(base, sample_targets(&c, NodeId(1), KeyId(0), 2));
        assert_ne!(base, sample_targets(&c, NodeId(1), KeyId(1), 1));
        assert_ne!(base, sample_targets(&c, NodeId(2), KeyId(0), 1));
    }

    #[test]
    fn tiny_populations_cap_the_sample() {
        let c = cfg(3, 8);
        let picked = sample_targets(&c, NodeId(0), KeyId(0), 1);
        assert_eq!(picked.len(), 2, "everyone but self");
        assert!(sample_targets(&cfg(1, 8), NodeId(0), KeyId(0), 1).is_empty());
    }

    #[test]
    fn tally_reaches_quorum_per_replica() {
        let mut t = AuditTally::new(4, 8);
        assert_eq!(t.note_dissent(ReplicaId(1)), 1);
        assert_eq!(t.note_dissent(ReplicaId(2)), 1);
        assert!(t.condemned(2).is_empty());
        assert_eq!(t.note_dissent(ReplicaId(1)), 2);
        assert_eq!(t.condemned(2), vec![ReplicaId(1)]);
        let e = IndexEntry::new(
            KeyId(1),
            ReplicaId(9),
            SimDuration::from_secs(10),
            cup_des::SimTime::ZERO,
        );
        t.offer(&[e]);
        t.offer(&[e]);
        assert_eq!(t.payload().len(), 1, "offers dedup by replica");
    }
}
