//! The per-key popularity measure driving cut-off decisions.
//!
//! §2.3: "Each node tracks the popularity or request frequency of each
//! non-local key K for which it receives queries. The popularity measure
//! for a key K can be the number of queries for K a node receives between
//! arrivals of consecutive updates for K."
//!
//! §3.6 shows that *when* the counter resets matters once a key has many
//! replicas: the naive implementation resets at every update arrival, so
//! more replicas mean more resets and the node mistakenly concludes the
//! key is unpopular. The fix is to make the decision (and the reset)
//! independent of the replica count by triggering both "only when updates
//! for a particular replica arrive". [`ResetMode`] selects between the two
//! behaviours so Table 3 of the paper can be reproduced.

use cup_des::ReplicaId;

/// When the popularity window resets (and cut-off decisions trigger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Naive: every applied update for the key triggers a decision and
    /// resets the counter (the broken behaviour of §3.6, column 2 of
    /// Table 3).
    Naive,
    /// Replica-independent: only updates from one designated *tracked*
    /// replica trigger decisions and resets, keeping the measure stable as
    /// replicas are added (the fix of §3.6).
    #[default]
    ReplicaIndependent,
}

/// Popularity bookkeeping for one key at one node.
#[derive(Debug, Clone, Default)]
pub struct Popularity {
    /// Queries received since the last reset.
    queries_since_reset: u32,
    /// Consecutive decision points at which no query had arrived (drives
    /// the log-based/second-chance policies).
    consecutive_empty: u32,
    /// The replica whose updates drive decisions under
    /// [`ResetMode::ReplicaIndependent`].
    tracked_replica: Option<ReplicaId>,
}

impl Popularity {
    /// Creates a fresh (zero) measure.
    pub fn new() -> Self {
        Popularity::default()
    }

    /// Records one query arrival for the key.
    pub fn record_query(&mut self) {
        self.queries_since_reset = self.queries_since_reset.saturating_add(1);
    }

    /// Queries seen since the last reset.
    pub fn queries_since_reset(&self) -> u32 {
        self.queries_since_reset
    }

    /// Consecutive empty (query-less) update intervals observed so far.
    pub fn consecutive_empty(&self) -> u32 {
        self.consecutive_empty
    }

    /// The replica currently designated to trigger decisions, if any.
    pub fn tracked_replica(&self) -> Option<ReplicaId> {
        self.tracked_replica
    }

    /// Reports an applied update from `replica` and returns `true` if a
    /// cut-off decision should be evaluated now.
    ///
    /// Under [`ResetMode::Naive`] every update triggers; under
    /// [`ResetMode::ReplicaIndependent`] only updates from the tracked
    /// replica do (the first update ever seen designates the tracked
    /// replica). When a decision triggers, the empty-interval history and
    /// the query window are advanced.
    pub fn on_update(&mut self, replica: ReplicaId, mode: ResetMode) -> bool {
        let triggers = match mode {
            ResetMode::Naive => true,
            ResetMode::ReplicaIndependent => match self.tracked_replica {
                None => {
                    self.tracked_replica = Some(replica);
                    true
                }
                Some(tracked) => tracked == replica,
            },
        };
        if triggers {
            if self.queries_since_reset == 0 {
                self.consecutive_empty = self.consecutive_empty.saturating_add(1);
            } else {
                self.consecutive_empty = 0;
            }
            self.queries_since_reset = 0;
        }
        triggers
    }

    /// The tracked replica disappeared (a delete was applied); the next
    /// update will designate a new one.
    pub fn untrack_if(&mut self, replica: ReplicaId) {
        if self.tracked_replica == Some(replica) {
            self.tracked_replica = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_accumulate_until_reset() {
        let mut p = Popularity::new();
        p.record_query();
        p.record_query();
        assert_eq!(p.queries_since_reset(), 2);
        assert!(p.on_update(ReplicaId(0), ResetMode::Naive));
        assert_eq!(p.queries_since_reset(), 0);
        assert_eq!(p.consecutive_empty(), 0, "interval had queries");
    }

    #[test]
    fn empty_intervals_counted() {
        let mut p = Popularity::new();
        assert!(p.on_update(ReplicaId(0), ResetMode::Naive));
        assert_eq!(p.consecutive_empty(), 1);
        assert!(p.on_update(ReplicaId(0), ResetMode::Naive));
        assert_eq!(p.consecutive_empty(), 2);
        p.record_query();
        assert!(p.on_update(ReplicaId(0), ResetMode::Naive));
        assert_eq!(p.consecutive_empty(), 0, "a query resets the streak");
    }

    #[test]
    fn naive_mode_triggers_on_every_replica() {
        let mut p = Popularity::new();
        assert!(p.on_update(ReplicaId(0), ResetMode::Naive));
        assert!(p.on_update(ReplicaId(1), ResetMode::Naive));
        assert!(p.on_update(ReplicaId(2), ResetMode::Naive));
        assert_eq!(p.consecutive_empty(), 3);
    }

    #[test]
    fn replica_independent_tracks_first_replica_only() {
        let mut p = Popularity::new();
        // First update designates replica 0 as tracked and triggers.
        assert!(p.on_update(ReplicaId(0), ResetMode::ReplicaIndependent));
        assert_eq!(p.tracked_replica(), Some(ReplicaId(0)));
        // Updates from other replicas neither trigger nor reset.
        p.record_query();
        assert!(!p.on_update(ReplicaId(1), ResetMode::ReplicaIndependent));
        assert!(!p.on_update(ReplicaId(2), ResetMode::ReplicaIndependent));
        assert_eq!(p.queries_since_reset(), 1, "window survives other replicas");
        // The tracked replica triggers and sees the accumulated query.
        assert!(p.on_update(ReplicaId(0), ResetMode::ReplicaIndependent));
        assert_eq!(p.consecutive_empty(), 0);
        assert_eq!(p.queries_since_reset(), 0);
    }

    #[test]
    fn untrack_allows_redesignation() {
        let mut p = Popularity::new();
        assert!(p.on_update(ReplicaId(0), ResetMode::ReplicaIndependent));
        p.untrack_if(ReplicaId(0));
        assert_eq!(p.tracked_replica(), None);
        assert!(p.on_update(ReplicaId(5), ResetMode::ReplicaIndependent));
        assert_eq!(p.tracked_replica(), Some(ReplicaId(5)));
    }

    #[test]
    fn untrack_other_replica_is_noop() {
        let mut p = Popularity::new();
        assert!(p.on_update(ReplicaId(0), ResetMode::ReplicaIndependent));
        p.untrack_if(ReplicaId(9));
        assert_eq!(p.tracked_replica(), Some(ReplicaId(0)));
    }
}
