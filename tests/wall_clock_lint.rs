//! Wall-time lint: protocol logic must not read the wall clock.
//!
//! The live runtime's determinism story rests on one invariant: "now"
//! comes from `cup_core::clock::Clock` and nowhere else, so a virtual-
//! clock run is bit-reproducible and conformant with the DES. This test
//! (and the matching grep gate in CI) scans the protocol crates —
//! `cup-core` and `cup-runtime` — for wall-time constructs and fails if
//! any appear outside the single designated wall-clock module,
//! `crates/core/src/clock.rs`. Bench crates and the shims are exempt:
//! measuring wall time is their job.

use std::fs;
use std::path::{Path, PathBuf};

/// Source trees the ban covers.
const SCANNED: &[&str] = &["crates/core/src", "crates/runtime/src"];

/// The one file allowed to touch the wall clock.
const DESIGNATED: &str = "clock.rs";

/// Banned constructs. `Instant::now(` covers every way of reading the
/// wall clock through `std::time::Instant`; sleeping and `SystemTime`
/// are banned outright (a sleeping worker is a timing-dependent test
/// waiting to flake; protocol state never needs calendar time).
const BANNED: &[&str] = &["Instant::now(", "thread::sleep", "SystemTime"];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("scanned source dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn wall_time_never_leaks_into_protocol_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for tree in SCANNED {
        let mut sources = Vec::new();
        rust_sources(&root.join(tree), &mut sources);
        assert!(!sources.is_empty(), "{tree} has sources to scan");
        for path in sources {
            if path.file_name().is_some_and(|f| f == DESIGNATED) {
                continue;
            }
            scanned += 1;
            let text = fs::read_to_string(&path).expect("source file reads");
            for (i, line) in text.lines().enumerate() {
                for token in BANNED {
                    if line.contains(token) {
                        violations.push(format!(
                            "{}:{}: `{}` — use cup_core::clock::Clock instead",
                            path.strip_prefix(root).unwrap_or(&path).display(),
                            i + 1,
                            token
                        ));
                    }
                }
            }
        }
    }
    assert!(scanned > 10, "the scan must actually cover the crates");
    assert!(
        violations.is_empty(),
        "wall-time constructs outside the designated clock module:\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_designated_module_still_exists() {
    // If clock.rs is ever renamed, the exemption above must move with
    // it rather than silently exempting nothing.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(
        root.join("crates/core/src").join(DESIGNATED).is_file(),
        "crates/core/src/{DESIGNATED} is the designated wall-clock module"
    );
}
