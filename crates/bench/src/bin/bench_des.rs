//! Emits `BENCH_des.json`: the DES throughput sweep over the
//! `large_scale` scenario family.
//!
//! Usage:
//!
//! ```text
//! bench_des [--sizes 10000,100000] [--queries 10000] [--seed 42]
//!           [--out BENCH_des.json] [--budget-secs N]
//! ```
//!
//! With `--budget-secs`, the process exits non-zero if any single run
//! exceeds the wall-clock budget — the CI smoke job's pass/fail line.

use cup_bench::des_bench::{render_json, run_point};

fn main() {
    let mut sizes: Vec<usize> = vec![10_000, 100_000];
    let mut queries: u64 = 10_000;
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_des.json");
    let mut budget_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--sizes" => {
                sizes = value("--sizes")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad size '{s}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--queries" => {
                queries = value("--queries").parse().unwrap_or_else(|_| {
                    eprintln!("bad --queries value");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed value");
                    std::process::exit(2);
                });
            }
            "--out" => out_path = value("--out"),
            "--budget-secs" => {
                budget_secs = Some(value("--budget-secs").parse().unwrap_or_else(|_| {
                    eprintln!("bad --budget-secs value");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_des [--sizes N,N,..] [--queries N] [--seed N] \
                     [--out PATH] [--budget-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::with_capacity(sizes.len());
    let mut over_budget = false;
    for &nodes in &sizes {
        let p = run_point(nodes, queries, seed);
        println!(
            "{:>8} nodes  {:>10} events  {:>9.2} s wall  {:>12.0} events/s  total cost {}",
            p.nodes,
            p.events,
            p.wall.as_secs_f64(),
            p.events_per_sec(),
            p.total_cost,
        );
        if let Some(budget) = budget_secs {
            if p.wall.as_secs() >= budget {
                eprintln!(
                    "BUDGET EXCEEDED: {} nodes took {:.2} s (budget {budget} s)",
                    p.nodes,
                    p.wall.as_secs_f64()
                );
                over_budget = true;
            }
        }
        points.push(p);
    }
    let json = render_json(&points, queries, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
    if over_budget {
        std::process::exit(1);
    }
}
