//! The Byzantine-attack × audit benchmark behind `BENCH_audit.json`.
//!
//! Runs the attacker-count × audit-on/off grid (stale-serve attackers
//! against CUP with and without the rate-limited sampled cache audit)
//! twice — serially and across the sweep worker pool — and reports
//! per-point attack/defense economics: poisoned answers and their rate,
//! audit rounds, repairs, the audit's own hop bill, and the mean/p99
//! poisoned-exposure ages. The rows must be byte-identical between the
//! two passes: the audit's sampling draws are counter-mode
//! deterministic, so the artifact certifies that the defense does not
//! depend on the pool size.

use std::time::{Duration, Instant};

use cup_simnet::par::default_workers;
use cup_simnet::sweeps::{audit_grid_with, AuditGridPoint};
use cup_workload::Scenario;

/// One serial-vs-parallel run of the audit grid.
#[derive(Debug, Clone)]
pub struct AuditBenchReport {
    /// The grid rows (parallel run; asserted identical to the serial
    /// run's).
    pub points: Vec<AuditGridPoint>,
    /// Wall-clock of the serial (1-worker) sweep.
    pub wall_serial: Duration,
    /// Wall-clock of the parallel sweep.
    pub wall_parallel: Duration,
    /// Worker threads the parallel sweep used.
    pub workers: usize,
    /// Whether the two passes produced byte-identical rows (always true;
    /// recorded so the artifact proves the check ran).
    pub rows_identical: bool,
}

impl AuditBenchReport {
    /// Grid points per second for a wall-clock reading.
    fn points_per_sec(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.points.len() as f64 / secs
        }
    }

    /// Points/sec of the serial pass.
    pub fn serial_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_serial)
    }

    /// Points/sec of the parallel pass.
    pub fn parallel_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_parallel)
    }

    /// Serial wall / parallel wall.
    pub fn speedup(&self) -> f64 {
        let parallel = self.wall_parallel.as_secs_f64();
        if parallel == 0.0 {
            0.0
        } else {
            self.wall_serial.as_secs_f64() / parallel
        }
    }
}

/// Runs the grid serially and in parallel, timing both.
///
/// # Panics
///
/// Panics if the parallel rows differ from the serial rows — audit runs
/// must be byte-identical whatever the sweep pool size.
pub fn run_audit_bench(
    base: &Scenario,
    attacker_counts: &[u32],
    interval_secs: u64,
    workers: usize,
) -> AuditBenchReport {
    let start = Instant::now();
    let serial = audit_grid_with(base, attacker_counts, interval_secs, 1);
    let wall_serial = start.elapsed();

    let start = Instant::now();
    let parallel = audit_grid_with(base, attacker_counts, interval_secs, workers);
    let wall_parallel = start.elapsed();

    assert_eq!(
        serial, parallel,
        "audit-grid rows must be byte-identical across sweep worker counts"
    );
    let jobs = attacker_counts.len() * 2;
    AuditBenchReport {
        points: parallel,
        wall_serial,
        wall_parallel,
        workers: workers.clamp(1, jobs.max(1)),
        rows_identical: true,
    }
}

/// Convenience wrapper using the machine's sweep worker pool.
pub fn run_audit_bench_default(
    base: &Scenario,
    attacker_counts: &[u32],
    interval_secs: u64,
) -> AuditBenchReport {
    run_audit_bench(base, attacker_counts, interval_secs, default_workers())
}

/// Renders the report as the `BENCH_audit.json` document (hand-rolled
/// JSON; the workspace builds offline, without serde).
pub fn render_json(
    report: &AuditBenchReport,
    base: &Scenario,
    interval_secs: u64,
    seed: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cup-audit byzantine attackers x audit sweep\",\n");
    out.push_str(&format!("  \"nodes\": {},\n", base.nodes));
    out.push_str(&format!("  \"keys\": {},\n", base.keys));
    out.push_str(&format!(
        "  \"replicas_per_key\": {},\n",
        base.replicas_per_key
    ));
    out.push_str(&format!("  \"audit_interval_secs\": {interval_secs},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!(
        "  \"serial_wall_ms\": {:.3},\n",
        report.wall_serial.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"parallel_wall_ms\": {:.3},\n",
        report.wall_parallel.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"parallel_points_per_sec\": {:.3},\n",
        report.parallel_points_per_sec()
    ));
    out.push_str(&format!("  \"speedup\": {:.3},\n", report.speedup()));
    out.push_str(&format!(
        "  \"rows_identical\": {},\n",
        report.rows_identical
    ));
    out.push_str("  \"runs\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let comma = if i + 1 < report.points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"attackers\": {}, \"audited\": {}, \"total_cost\": {}, \
             \"audit_hops\": {}, \"poisoned\": {}, \"poisoned_rate\": {:.4}, \
             \"audits\": {}, \"repairs\": {}, \"hit_rate\": {:.4}, \
             \"poisoned_exposure_secs\": {:.3}, \
             \"poisoned_age_p99_secs\": {:.3}}}{comma}\n",
            p.attackers,
            p.audited,
            p.total_cost,
            p.audit_hops,
            p.poisoned,
            p.poisoned_rate,
            p.audits,
            p.repairs,
            p.hit_rate,
            p.poisoned_exposure_secs,
            p.poisoned_age_p99_secs,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::{SimDuration, SimTime};

    fn tiny() -> Scenario {
        Scenario {
            nodes: 32,
            keys: 3,
            query_rate: 5.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(800),
            sim_end: SimTime::from_secs(1_200),
            replica_mean_life: Some(SimDuration::from_secs(400)),
            seed: 9,
            ..Scenario::default()
        }
    }

    #[test]
    fn bench_runs_and_renders() {
        let report = run_audit_bench(&tiny(), &[0, 2], 60, 2);
        assert_eq!(report.points.len(), 4);
        assert!(report.rows_identical);
        assert!(report.parallel_points_per_sec() > 0.0);
        let json = render_json(&report, &tiny(), 60, 9);
        assert!(json.contains("\"audited\": true"));
        assert!(json.contains("\"audited\": false"));
        assert!(json.contains("\"audit_interval_secs\": 60"));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(json.contains("\"poisoned_exposure_secs\""));
        assert!(json.contains("\"poisoned_age_p99_secs\""));
        assert!(
            !json.contains("detection_latency_secs"),
            "the mislabeled detection field must stay gone"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
