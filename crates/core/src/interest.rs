//! Per-key interest tracking: which neighbors want updates for a key.
//!
//! The paper stores this as a bit vector with one bit per neighbor plus a
//! mapping from bit position to neighbor address, and describes the
//! patching needed when neighborhoods change (§2.9). We store the
//! equivalent *set of interested neighbor ids*: semantically identical
//! (a neighbor is either interested or not), and churn patching becomes
//! plain set operations instead of bit-vector surgery. The paper itself
//! notes this bookkeeping is local and "involves no network overhead".

use std::collections::BTreeSet;

use cup_des::NodeId;

/// The set of neighbors interested in updates for one key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterestSet {
    interested: BTreeSet<NodeId>,
}

impl InterestSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        InterestSet::default()
    }

    /// Marks `neighbor` as interested (sets its bit).
    pub fn set(&mut self, neighbor: NodeId) {
        self.interested.insert(neighbor);
    }

    /// Clears `neighbor`'s interest (a Clear-Bit message arrived, or the
    /// neighbor departed). Returns `true` if it was set.
    pub fn clear(&mut self, neighbor: NodeId) -> bool {
        self.interested.remove(&neighbor)
    }

    /// Returns `true` if `neighbor` is interested.
    pub fn contains(&self, neighbor: NodeId) -> bool {
        self.interested.contains(&neighbor)
    }

    /// Returns `true` if no neighbor is interested.
    pub fn is_empty(&self) -> bool {
        self.interested.is_empty()
    }

    /// Number of interested neighbors.
    pub fn len(&self) -> usize {
        self.interested.len()
    }

    /// Iterates the interested neighbors in ascending id order (the
    /// deterministic order keeps simulations reproducible).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.interested.iter().copied()
    }

    /// §2.9 patching: a neighbor departed and `successor` (if any) took
    /// over its place in the topology. The bit that pointed at the old
    /// neighbor is remapped to the successor, preserving the update flow
    /// for nodes that depended on the departed node.
    pub fn remap(&mut self, departed: NodeId, successor: Option<NodeId>) {
        if self.interested.remove(&departed) {
            if let Some(s) = successor {
                self.interested.insert(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut s = InterestSet::new();
        assert!(s.is_empty());
        s.set(NodeId(3));
        s.set(NodeId(3));
        s.set(NodeId(5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(4)));
        assert!(s.clear(NodeId(3)));
        assert!(!s.clear(NodeId(3)), "second clear is a no-op");
        assert!(!s.contains(NodeId(3)));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = InterestSet::new();
        s.set(NodeId(9));
        s.set(NodeId(1));
        s.set(NodeId(4));
        let order: Vec<NodeId> = s.iter().collect();
        assert_eq!(order, vec![NodeId(1), NodeId(4), NodeId(9)]);
    }

    #[test]
    fn remap_moves_interest_to_successor() {
        let mut s = InterestSet::new();
        s.set(NodeId(2));
        s.remap(NodeId(2), Some(NodeId(7)));
        assert!(!s.contains(NodeId(2)));
        assert!(s.contains(NodeId(7)));
    }

    #[test]
    fn remap_without_successor_drops_interest() {
        let mut s = InterestSet::new();
        s.set(NodeId(2));
        s.remap(NodeId(2), None);
        assert!(s.is_empty());
    }

    #[test]
    fn remap_of_uninterested_neighbor_is_noop() {
        let mut s = InterestSet::new();
        s.set(NodeId(1));
        s.remap(NodeId(2), Some(NodeId(7)));
        assert!(s.contains(NodeId(1)));
        assert!(!s.contains(NodeId(7)));
    }
}
