//! Actions emitted by the protocol state machine.
//!
//! A [`crate::node::CupNode`] never performs I/O; its handlers return
//! `Vec<Action>` and the embedding runtime (discrete-event simulator or
//! live threaded runtime) delivers them.

use cup_des::{KeyId, NodeId};

use crate::entry::IndexEntry;
use crate::message::{ClientId, Message};

/// One side effect requested by the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send a protocol message to a neighboring node (one overlay hop).
    Send {
        /// Destination neighbor.
        to: NodeId,
        /// The message to deliver.
        msg: Message,
    },
    /// Answer a local client whose connection was held open (§2.5).
    RespondClient {
        /// The waiting client.
        client: ClientId,
        /// The key that was queried.
        key: KeyId,
        /// The fresh index entries answering the query (may be empty when
        /// the authority knows no replicas for the key).
        entries: Vec<IndexEntry>,
    },
}

impl Action {
    /// Convenience constructor for a send action.
    pub fn send(to: NodeId, msg: Message) -> Self {
        Action::Send { to, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_constructor() {
        let a = Action::send(NodeId(3), Message::Query { key: KeyId(1) });
        match a {
            Action::Send { to, msg } => {
                assert_eq!(to, NodeId(3));
                assert_eq!(msg.key(), KeyId(1));
            }
            _ => panic!("expected send"),
        }
    }
}
