//! Tier-1 gate: the full `cup-lint` pass over the real workspace.
//!
//! This is the in-process twin of CI's `cargo run -p cup-lint` step —
//! the same engine, the same rules, the same workspace loader — so a
//! determinism hazard fails `cargo test` locally before it ever reaches
//! CI. The second half of the suite proves the conformance-parity rule
//! actually detects drift, by feeding it fixtures with deliberately
//! desynchronized counters.

use cup_lint::engine::{self, Rule, Workspace};
use cup_lint::parity::{ConformanceParity, ParityCheck};

#[test]
fn workspace_has_no_denied_findings() {
    let report = cup_lint::run_workspace();
    let denied: Vec<String> = report
        .denied()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        denied.is_empty(),
        "un-pragma'd lint findings:\n{}",
        denied.join("\n")
    );
}

#[test]
fn workspace_scan_actually_covers_the_crates() {
    let report = cup_lint::run_workspace();
    assert!(
        report.files_scanned > 40,
        "only {} files scanned — the workspace loader lost a tree",
        report.files_scanned
    );
    assert!(
        report.rules.len() >= 5,
        "the pass must ship at least five rules, found {}",
        report.rules.len()
    );
}

#[test]
fn every_allow_pragma_in_the_tree_carries_a_reason() {
    let root = cup_lint::workspace_root();
    let ws = Workspace::load(&root, cup_lint::WORKSPACE_TREES);
    let mut pragmas = 0usize;
    for file in &ws.files {
        for p in &file.pragmas {
            pragmas += 1;
            assert!(
                p.reason.as_deref().is_some_and(|r| !r.is_empty()),
                "{}:{} allow({}) has no reason",
                file.path,
                p.line,
                p.rule
            );
        }
    }
    // The engine would also deny reasonless pragmas; this test exists so
    // the failure message names the exact file and line.
    assert!(pragmas > 0, "the workspace is expected to carry pragmas");
}

#[test]
fn lint_json_report_is_well_formed() {
    let report = cup_lint::run_workspace();
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"denied\": 0"));
    for rule in [
        "wall-clock",
        "unordered-iteration",
        "relaxed-atomic",
        "panic-path",
        "conformance-parity",
    ] {
        assert!(
            json.contains(&format!("\"name\": \"{rule}\"")),
            "LINT.json must list rule {rule}"
        );
    }
}

// ------------------------------------------------------------------ drift

/// The acceptance demo: add a counter to a fixture `NetMetrics` without
/// threading it through the conformance harness — the parity rule must
/// fire on exactly that field.
#[test]
fn parity_rule_catches_a_new_unasserted_netmetrics_field() {
    let metrics = "\
pub struct NetMetrics {
    pub query_hops: u64,
    pub dropped_messages: u64,
    pub brand_new_counter: u64,
}
impl NetMetrics {
    pub fn total_cost(&self) -> u64 { self.query_hops }
}
";
    let consumer = "\
fn run_sim(m: &NetMetrics) -> u64 {
    m.total_cost() + m.dropped_messages
}
";
    let rule = ConformanceParity {
        checks: vec![ParityCheck::ConsumedBy {
            struct_file: "crates/simnet/src/metrics.rs".into(),
            struct_name: "NetMetrics".into(),
            consumer_files: vec!["crates/testkit/src/conformance.rs".into()],
        }],
    };
    let ws = Workspace::from_sources(&[
        ("crates/simnet/src/metrics.rs", metrics),
        ("crates/testkit/src/conformance.rs", consumer),
    ]);
    let report = engine::run(&ws, &[&rule as &dyn Rule]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1, "exactly the drifted field must fire");
    assert!(denied[0].message.contains("brand_new_counter"));
    assert_eq!(denied[0].line, 4, "reported at the field declaration");
}

/// Same demo for the aggregation side: a `NodeStats` counter missing
/// from `merge()` would silently vanish when per-node stats are summed.
#[test]
fn parity_rule_catches_a_counter_missing_from_merge() {
    let stats = "\
pub struct NodeStats {
    pub client_queries: u64,
    pub audit_probes_served: u64,
}
impl NodeStats {
    pub fn merge(&mut self, other: &NodeStats) {
        self.client_queries += other.client_queries;
    }
}
";
    let rule = ConformanceParity {
        checks: vec![ParityCheck::MergedInto {
            struct_file: "crates/core/src/stats.rs".into(),
            struct_name: "NodeStats".into(),
            fn_name: "merge".into(),
        }],
    };
    let ws = Workspace::from_sources(&[("crates/core/src/stats.rs", stats)]);
    let report = engine::run(&ws, &[&rule as &dyn Rule]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert!(denied[0].message.contains("audit_probes_served"));
}

/// The real parity obligations hold on the real tree — and stay zero
/// *because* of the helper-method closure: the six hop counters are
/// consumed through `total_cost()`, not by name.
#[test]
fn real_counter_structs_are_in_parity() {
    let root = cup_lint::workspace_root();
    let ws = Workspace::load(&root, cup_lint::WORKSPACE_TREES);
    let rule = ConformanceParity::workspace();
    let report = engine::run(&ws, &[&rule as &dyn Rule]);
    let denied: Vec<String> = report
        .denied()
        .map(|f| format!("{}:{} {}", f.path, f.line, f.message))
        .collect();
    assert!(denied.is_empty(), "counter drift:\n{}", denied.join("\n"));
}
