//! Shared scales and scenarios for the benchmark harness.
//!
//! Criterion benches run the *same sweeps* as the paper at a reduced
//! scale (so `cargo bench` terminates in minutes); the `repro` binary
//! regenerates the tables and figures at configurable scale, up to the
//! paper's 2¹⁰-node / 3 000 s configuration.

// cup-bench's whole job is measuring wall time, so it is exempt from
// clippy.toml's disallowed-methods wall (cup-lint's wall-clock rule
// never scoped it either).
#![allow(clippy::disallowed_methods)]

use cup_des::{SimDuration, SimTime};
use cup_workload::Scenario;

pub mod audit_bench;
pub mod cli;
pub mod des_bench;
pub mod fault_bench;
pub mod live_bench;
pub mod policy_bench;

/// How big to run an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: for Criterion iterations (64 nodes, 500 s of querying).
    Bench,
    /// Medium: quick tables with visible shape (256 nodes, 1 500 s).
    Small,
    /// The paper's configuration (1 024 nodes, 3 000 s of querying).
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "bench" => Some(Scale::Bench),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The base scenario for this scale.
    ///
    /// The paper does not state its key count; we use few keys so
    /// per-key query rates match the regime its results imply (see
    /// EXPERIMENTS.md).
    pub fn base_scenario(self) -> Scenario {
        match self {
            Scale::Bench => Scenario {
                nodes: 64,
                keys: 3,
                query_rate: 5.0,
                query_start: SimTime::from_secs(300),
                query_end: SimTime::from_secs(800),
                sim_end: SimTime::from_secs(1_500),
                seed: 7,
                ..Scenario::default()
            },
            Scale::Small => Scenario {
                nodes: 256,
                keys: 4,
                query_rate: 1.0,
                query_start: SimTime::from_secs(300),
                query_end: SimTime::from_secs(1_800),
                sim_end: SimTime::from_secs(3_000),
                seed: 42,
                ..Scenario::default()
            },
            Scale::Paper => Scenario {
                nodes: 1 << 10,
                keys: 4,
                query_rate: 1.0,
                query_start: SimTime::from_secs(300),
                query_end: SimTime::from_secs(3_300),
                sim_end: SimTime::from_secs(22_000),
                entry_lifetime: SimDuration::from_secs(300),
                seed: 42,
                ..Scenario::default()
            },
        }
    }

    /// Query rates to sweep (the paper uses 1, 10, 100, 1000 q/s).
    pub fn rates(self) -> Vec<f64> {
        match self {
            Scale::Bench => vec![5.0],
            Scale::Small => vec![1.0, 10.0, 100.0],
            Scale::Paper => vec![1.0, 10.0, 100.0, 1_000.0],
        }
    }

    /// Push levels to sweep for Figures 3/4.
    pub fn push_levels(self) -> Vec<u32> {
        match self {
            Scale::Bench => vec![0, 2, 4, 8],
            Scale::Small => vec![0, 1, 2, 4, 6, 8, 12, 16, 24, 32],
            Scale::Paper => vec![0, 1, 2, 4, 6, 8, 12, 16, 20, 25, 30],
        }
    }

    /// Network sizes for Table 2 (the paper uses 2³..2¹²).
    pub fn sizes(self) -> Vec<usize> {
        match self {
            Scale::Bench => vec![16, 64],
            Scale::Small => vec![8, 32, 128, 512],
            Scale::Paper => vec![8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096],
        }
    }

    /// Replica counts for Table 3 (paper: 1, 2, 5, 10, 50, 100).
    pub fn replica_counts(self) -> Vec<u32> {
        match self {
            Scale::Bench => vec![1, 4],
            Scale::Small => vec![1, 2, 5, 10],
            Scale::Paper => vec![1, 2, 5, 10, 50, 100],
        }
    }

    /// Reduced capacities for Figures 5/6 (c between 0 and 1).
    pub fn capacities(self) -> Vec<f64> {
        match self {
            Scale::Bench => vec![0.0, 1.0],
            Scale::Small => vec![0.0, 0.25, 0.5, 0.75, 1.0],
            Scale::Paper => vec![0.0, 0.25, 0.5, 0.75, 1.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("bench"), Some(Scale::Bench));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scenarios_validate() {
        for scale in [Scale::Bench, Scale::Small, Scale::Paper] {
            scale.base_scenario().validate().unwrap();
            assert!(!scale.rates().is_empty());
            assert!(!scale.push_levels().is_empty());
            assert!(!scale.sizes().is_empty());
            assert!(!scale.replica_counts().is_empty());
            assert!(!scale.capacities().is_empty());
        }
    }

    #[test]
    fn paper_scale_matches_paper_parameters() {
        let s = Scale::Paper.base_scenario();
        assert_eq!(s.nodes, 1_024);
        assert_eq!(s.query_window(), SimDuration::from_secs(3_000));
        assert_eq!(s.entry_lifetime, SimDuration::from_secs(300));
        assert_eq!(Scale::Paper.rates(), vec![1.0, 10.0, 100.0, 1_000.0]);
        assert_eq!(Scale::Paper.sizes().len(), 10);
    }
}
