//! The worker-pool runtime handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cup_core::clock::Clock;
use cup_core::obs::{Hist, TraceBuf};
use cup_core::stats::NodeStats;
use cup_core::{ClientId, CupNode, IndexEntry, NodeConfig, ReplicaEvent};
use cup_des::{DetRng, KeyId, NodeId, ReplicaId, SimDuration, SimTime};
use cup_faults::{FaultAction, FaultCounters, FaultEvent, FaultPlan, FaultState};
use cup_overlay::{AnyOverlay, Overlay, OverlayError, OverlayKind};

use crate::shard::{worker_main, Envelope, Shared};
use crate::shard_map::{ShardMap, ShardMapMode};

/// Errors surfaced by the live runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// The overlay could not be built.
    Overlay(OverlayError),
    /// A query timed out waiting for its response.
    QueryTimeout,
    /// The target node is not part of the network.
    UnknownNode(NodeId),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Overlay(e) => write!(f, "overlay error: {e}"),
            RuntimeError::QueryTimeout => write!(f, "query timed out"),
            RuntimeError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A running CUP network sharded across a pool of worker threads.
pub struct LiveNetwork {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<Vec<CupNode>>>,
    node_ids: Vec<NodeId>,
    next_client: AtomicU64,
    /// How long [`LiveNetwork::query`] waits for a response.
    pub query_timeout: Duration,
}

impl LiveNetwork {
    /// Builds an overlay of `n` nodes of the given kind and starts the
    /// runtime on the default worker count
    /// ([`LiveNetwork::default_workers`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        Self::start_with_workers(kind, n, config, Self::default_workers(), rng)
    }

    /// Like [`LiveNetwork::start`] with an explicit worker count.
    ///
    /// `workers` is clamped to `1..=n` and then honored exactly: each
    /// worker owns one shard of nodes (shard sizes differ by at most
    /// one) under the default contiguous [`ShardMapMode`]. Runs on the
    /// wall-mapped clock; use [`LiveNetwork::start_virtual`] for
    /// deterministic logical time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start_with_workers(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        workers: usize,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        Self::start_with_clock(kind, n, config, workers, Clock::wall(), rng)
    }

    /// Like [`LiveNetwork::start_with_workers`] on a virtual clock
    /// frozen at `SimTime::ZERO`: "now" is deterministic logical time
    /// that moves only through [`LiveNetwork::advance`] /
    /// [`LiveNetwork::run_until`], so every worker observes
    /// byte-identical timestamps regardless of scheduling and all
    /// time-compared protocol behavior (`pfu_timeout` retries,
    /// `@t=`-windowed fault scripts) matches the DES exactly.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start_virtual(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        workers: usize,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        Self::start_with_clock(
            kind,
            n,
            config,
            workers,
            Clock::virtual_at(SimTime::ZERO),
            rng,
        )
    }

    /// Like [`LiveNetwork::start_with_workers`] with an explicit
    /// [`Clock`] (wall-mapped or virtual, possibly starting mid-epoch).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start_with_clock(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        workers: usize,
        clock: Clock,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        Self::start_with_map(
            kind,
            n,
            config,
            workers,
            ShardMapMode::Contiguous,
            clock,
            rng,
        )
    }

    /// Like [`LiveNetwork::start_virtual`] with an explicit
    /// [`ShardMapMode`] — the constructor the conformance harness uses
    /// to prove sharding invisible across placement modes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start_virtual_with_map(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        workers: usize,
        map: ShardMapMode,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        Self::start_with_map(
            kind,
            n,
            config,
            workers,
            map,
            Clock::virtual_at(SimTime::ZERO),
            rng,
        )
    }

    /// The fully explicit constructor: overlay kind, population, worker
    /// count, node→shard placement mode, and clock. Every other `start_*`
    /// delegates here.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start_with_map(
        kind: OverlayKind,
        n: usize,
        config: NodeConfig,
        workers: usize,
        map: ShardMapMode,
        clock: Clock,
        rng: &mut DetRng,
    ) -> Result<Self, RuntimeError> {
        let overlay = AnyOverlay::build(kind, n, rng).map_err(RuntimeError::Overlay)?;
        let node_ids = overlay.nodes();
        // The shard map's dense tables and the O(1) node check in
        // `query` rely on the static builders assigning dense ids 0..n.
        assert!(
            node_ids.iter().enumerate().all(|(i, id)| id.index() == i),
            "static overlay builders must assign dense node ids"
        );
        // Exactly `workers` shards under the balanced partition (sizes
        // differ by at most one node), so a pinned worker count is
        // honored for every n/workers combination.
        let workers = workers.clamp(1, node_ids.len().max(1));
        let map = ShardMap::build(map, &overlay, workers);
        let shared = Arc::new(Shared::new(map, overlay, config, clock));
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let nodes: Vec<CupNode> = shared
                .map
                .owned(shard)
                .iter()
                .map(|&id| CupNode::new(id, config))
                .collect();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("cup-shard-{shard}"))
                .spawn(move || worker_main(shard, nodes, shared))
                // cup-lint: allow(panic-path, "start-up, before any worker dispatches: failing to spawn the pool has nothing to degrade to")
                .expect("worker thread must spawn");
            handles.push(handle);
        }
        Ok(LiveNetwork {
            shared,
            handles,
            node_ids,
            next_client: AtomicU64::new(0),
            query_timeout: Duration::from_secs(5),
        })
    }

    /// The worker count the parameterless constructor uses: the
    /// machine's available parallelism (1 if unknown).
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }

    /// The live node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Number of worker threads (= shards) running the nodes.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    // Metric-accessor memory ordering policy: the counters below are
    // monotone event counts written with `Ordering::Relaxed` on the
    // dispatch hot path and read here with `Relaxed` loads. That is
    // sound — not merely tolerated — because no reader derives an
    // invariant from *cross-counter* ordering while traffic is in
    // flight, and every stable reading is taken after
    // [`LiveNetwork::quiesce`], whose SeqCst in-flight counter
    // (`Shared::pending`) makes all worker writes happen-before the
    // caller's loads. The relaxed-atomic lint's `MONOTONE_COUNTERS`
    // allowlist enumerates exactly these counters; a new metric must
    // either satisfy the same contract (monotone, quiesce-published) or
    // use an `Acquire` load paired with its writer — never grow the
    // allowlist just to silence the lint. Non-counter observability
    // state (the latency histograms, the trace buffer) deliberately
    // lives behind mutexes instead.

    /// Peer messages delivered so far (hop count).
    pub fn hops(&self) -> u64 {
        self.shared.hops.load(Ordering::Relaxed)
    }

    /// Peer messages that crossed a shard boundary (subset of
    /// [`LiveNetwork::hops`]). Batching does not change the count:
    /// every envelope inside a flushed batch is charged individually
    /// at flush time.
    pub fn cross_shard_messages(&self) -> u64 {
        self.shared.cross_shard.load(Ordering::Relaxed)
    }

    /// The node→shard placement mode this network was started with.
    pub fn shard_map_mode(&self) -> ShardMapMode {
        self.shared.map.mode()
    }

    /// Batches deposited into cross-shard transfer slots so far
    /// (non-empty flushes). Call after [`LiveNetwork::quiesce`] for a
    /// stable reading.
    pub fn batch_flushes(&self) -> u64 {
        self.shared.batch_flushes.load(Ordering::Relaxed)
    }

    /// Envelopes that traveled inside those batches (equals
    /// [`LiveNetwork::cross_shard_messages`]; the ratio of the two is
    /// the mean batch size).
    pub fn batched_envelopes(&self) -> u64 {
        self.shared.batched_envelopes.load(Ordering::Relaxed)
    }

    /// Messages dropped because an overlay routing lookup failed
    /// (client queries are instead answered empty immediately). Always
    /// zero on a well-formed static overlay.
    pub fn routing_failures(&self) -> u64 {
        self.shared.routing_failures.load(Ordering::Relaxed)
    }

    /// Switches §3.1 justified-update accounting on or off. Enable it
    /// before injecting traffic: the tracker only sees events recorded
    /// while it is on. Costs one lock per maintenance-update delivery
    /// and per posted query, so benchmarks leave it off.
    pub fn track_justification(&self, enabled: bool) {
        self.shared
            .justify_on
            .store(enabled, std::sync::atomic::Ordering::SeqCst);
    }

    /// The live `(justified, tracked)` maintenance-update counts — the
    /// same investment-return metric the DES reports in
    /// `ExperimentResult::{justified_updates, tracked_updates}`.
    /// `(0, 0)` until [`LiveNetwork::track_justification`] is enabled.
    /// Call after [`LiveNetwork::quiesce`] for a stable reading.
    pub fn justification(&self) -> (u64, u64) {
        let tracker = self
            .shared
            .justify
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        (tracker.justified(), tracker.total())
    }

    /// Arms the fault plane with a fresh [`FaultState`] keyed by `seed`.
    /// Use the same seed as a DES run's plane to get byte-identical drop
    /// decisions (the conformance harness does exactly that).
    ///
    /// Call while the network is quiescent — re-seeding under traffic
    /// would split one logical fault universe into two. Note that
    /// byte-identical agreement with a DES run additionally requires
    /// serialized traffic (quiesce between scripted events, the
    /// conformance pattern): under concurrent cascades, per-link message
    /// order — and therefore which message a lossy link eats — depends
    /// on mailbox arrival order.
    pub fn enable_faults(&self, seed: u64) {
        let mut state = self.shared.faults.lock().unwrap_or_else(|e| e.into_inner());
        *state = FaultState::new(seed);
        self.shared
            .faults_on
            .store(state.active(), std::sync::atomic::Ordering::SeqCst);
        // Latch staleness ground-truth recording for the rest of the run
        // (the live mirror of the DES arming its `dead_replicas` map).
        self.shared
            .faults_armed
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Applies one fault action to the live plane: loss rates and
    /// partitions take effect on the next send; a crash additionally
    /// wipes the node's protocol state via its owner shard (quiesce
    /// afterwards to observe the completed wipe).
    ///
    /// Workers consult the plane only while some fault is in effect, so
    /// a fully healed network (loss 0, no partition, everyone restarted)
    /// pays nothing per send again.
    pub fn inject_fault(&self, action: FaultAction) {
        let changed = {
            let mut state = self.shared.faults.lock().unwrap_or_else(|e| e.into_inner());
            let changed = state.apply(action);
            self.shared
                .faults_on
                .store(state.active(), std::sync::atomic::Ordering::SeqCst);
            changed
        };
        if let FaultAction::Crash { node } = action {
            if changed && node < self.node_ids.len() {
                let at = NodeId(node as u32);
                self.shared
                    .post(self.shared.shard_of(at), Envelope::CrashReset { at });
            }
        }
    }

    /// The fault plane's drop/crash counters (all zero while unarmed).
    /// Call after [`LiveNetwork::quiesce`] for a stable reading.
    pub fn fault_counters(&self) -> FaultCounters {
        self.shared
            .faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counters
    }

    /// Messages the fault plane dropped so far.
    pub fn dropped_messages(&self) -> u64 {
        self.fault_counters().dropped()
    }

    /// Client answers that served a globally dead replica (a deletion
    /// the cache had not learned — lost, or swallowed by a Byzantine
    /// node). Zero until [`LiveNetwork::enable_faults`] arms the plane.
    /// Call after [`LiveNetwork::quiesce`] for a stable reading.
    pub fn stale_answers(&self) -> u64 {
        self.shared.stale_answers.load(Ordering::Relaxed)
    }

    /// Summed staleness age of those answers (µs since the deletion) —
    /// the live mirror of the DES's `stale_age_micros`.
    pub fn stale_age_micros(&self) -> u64 {
        self.shared.stale_age_micros.load(Ordering::Relaxed)
    }

    /// The client-query latency histogram: µs from posting to answer,
    /// one sample per answered query — the live mirror of the DES's
    /// `NetMetrics::query_latency`. Wall µs under a wall clock; logical
    /// (virtual-clock) µs otherwise. Call after [`LiveNetwork::quiesce`]
    /// for a stable reading.
    pub fn query_latency_hist(&self) -> Hist {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .query_latency
    }

    /// The staleness-age histogram: one sample (µs since the deletion)
    /// per stale answer — the distribution whose sum is
    /// [`LiveNetwork::stale_age_micros`]. Call after
    /// [`LiveNetwork::quiesce`] for a stable reading.
    pub fn stale_age_hist(&self) -> Hist {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stale_age
    }

    /// The batch-size histogram: envelopes per non-empty cross-shard
    /// flush (the distribution behind the
    /// [`LiveNetwork::batched_envelopes`] / [`LiveNetwork::batch_flushes`]
    /// mean). Live-only — the DES has no batching. Call after
    /// [`LiveNetwork::quiesce`] for a stable reading.
    pub fn batch_size_hist(&self) -> Hist {
        self.shared
            .obs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .batch_sizes
    }

    /// Turns on structured event tracing with a ring buffer of `cap`
    /// events. Off by default; when off, every emission site costs one
    /// atomic load and nothing else. Enable before injecting the traffic
    /// to trace; harvest with [`LiveNetwork::take_trace`].
    pub fn enable_trace(&self, cap: usize) {
        self.shared.enable_trace(cap);
    }

    /// Detaches the trace buffer (tracing turns back off). Call after
    /// [`LiveNetwork::quiesce`] so the buffer covers all injected
    /// traffic; compare runs via `TraceBuf::sorted` /
    /// `cup_core::obs::trace_diff` — worker interleaving makes raw
    /// arrival order nondeterministic, canonical order is not.
    pub fn take_trace(&self) -> Option<TraceBuf> {
        self.shared.take_trace()
    }

    /// Protocol counters retained from crashed nodes (the live mirror of
    /// the DES arena's departed-stats aggregate; crash wipes must not
    /// lose history from network-wide statistics).
    pub fn crash_retained_stats(&self) -> NodeStats {
        *self
            .shared
            .crash_retained
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the network is quiescent: every shard mailbox is
    /// drained and no worker is mid-dispatch.
    ///
    /// This is the synchronization point tests and benchmarks use where
    /// a simulation would say "run until the event queue is empty" —
    /// e.g. after replica events, to observe their fully-propagated
    /// effect. The caller must not race it against other threads still
    /// injecting work if it wants the barrier to mean "all of *my* work
    /// is done".
    pub fn quiesce(&self) {
        self.shared.wait_quiescent();
    }

    /// The network's current time: wall-mapped microseconds since start,
    /// or the virtual clock's logical time.
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// `true` if the network runs on a virtual clock.
    pub fn is_virtual_clock(&self) -> bool {
        self.shared.clock.is_virtual()
    }

    /// Quiesces, then steps the virtual clock to `deadline` — the live
    /// mirror of a DES "run until": all in-flight traffic completes at
    /// the *current* logical time before time jumps, so every worker
    /// observes the same instant for every message. `deadline == now`
    /// re-synchronizes without moving time.
    ///
    /// # Panics
    ///
    /// Panics on a wall-mapped clock or if `deadline` is in the past.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        self.quiesce();
        self.shared.clock.advance_to(deadline)
    }

    /// Quiesces, then steps the virtual clock forward by `by`. The
    /// deterministic replacement for "sleep and hope": where a
    /// wall-clock test would wait out a protocol timer, a virtual-clock
    /// test advances past it exactly.
    ///
    /// # Panics
    ///
    /// Panics on a wall-mapped clock.
    pub fn advance(&self, by: SimDuration) -> SimTime {
        assert!(
            self.is_virtual_clock(),
            "advance on a wall-mapped clock: only virtual time can be steered"
        );
        let deadline = self.now() + by;
        self.run_until(deadline)
    }

    /// Replays the timed fault script up to and including `deadline`,
    /// then leaves the clock at `deadline`: each due event is applied at
    /// exactly its scripted logical instant (quiesce, jump to
    /// `event.at`, inject, quiesce), which is the same interleaving the
    /// DES realizes by scheduling `Ev::Fault` events — so `@t=`-windowed
    /// specs execute byte-identically on both runtimes. `cursor` tracks
    /// replay progress across calls; start it at 0.
    ///
    /// # Panics
    ///
    /// Panics on a wall-mapped clock or if the next due event is in the
    /// logical past (the cursor is behind the clock).
    pub fn run_plan_until(&self, plan: &FaultPlan, cursor: &mut usize, deadline: SimTime) {
        for &FaultEvent { at, action } in plan.due(cursor, deadline) {
            self.run_until(at);
            self.inject_fault(action);
            self.quiesce();
        }
        self.run_until(deadline);
    }

    /// Announces a replica serving `key` to the key's authority node.
    pub fn replica_birth(&self, key: KeyId, replica: ReplicaId, lifetime: SimDuration) {
        self.send_replica(ReplicaEvent::Birth {
            key,
            replica,
            lifetime,
        });
    }

    /// Renews a replica's index entry.
    pub fn replica_refresh(&self, key: KeyId, replica: ReplicaId, lifetime: SimDuration) {
        self.send_replica(ReplicaEvent::Refresh {
            key,
            replica,
            lifetime,
        });
    }

    /// Withdraws a replica.
    pub fn replica_deletion(&self, key: KeyId, replica: ReplicaId) {
        self.send_replica(ReplicaEvent::Deletion { key, replica });
    }

    fn send_replica(&self, event: ReplicaEvent) {
        let authority = self.shared.overlay.authority(event.key());
        let shard = self.shared.shard_of(authority);
        self.shared.post(
            shard,
            Envelope::Replica {
                at: authority,
                event,
            },
        );
    }

    /// Posts a client query at `node` and blocks for the fresh index
    /// entries. Safe to call from several client threads at once.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an invalid node and
    /// [`RuntimeError::QueryTimeout`] if no response arrives within
    /// [`LiveNetwork::query_timeout`].
    pub fn query(&self, node: NodeId, key: KeyId) -> Result<Vec<IndexEntry>, RuntimeError> {
        let pending = self.query_detached(node, key)?;
        pending
            .rx
            .recv_timeout(self.query_timeout)
            .map_err(|_| RuntimeError::QueryTimeout)
    }

    /// Posts a client query without blocking for the answer. Under fault
    /// injection an answer may legitimately never come (the query or its
    /// response was dropped); the deterministic pattern is to post,
    /// [`LiveNetwork::quiesce`], then [`PendingQuery::try_take`] — after
    /// a quiesce, "no answer yet" means "no answer ever".
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an invalid node.
    pub fn query_detached(
        &self,
        node: NodeId,
        key: KeyId,
    ) -> Result<PendingQuery<'_>, RuntimeError> {
        // Ids are dense, so validity is a range check, not an O(n) scan.
        if node.index() >= self.node_ids.len() {
            return Err(RuntimeError::UnknownNode(node));
        }
        let client = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        self.shared.note_posted_query(client, self.shared.now());
        let (tx, rx) = channel();
        // Recover a poisoned registry rather than panicking the caller:
        // the map only holds channel senders, so it is valid after any
        // worker panic (which the quiesce barrier reports separately).
        self.shared
            .clients
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(client, tx);
        self.shared.post(
            self.shared.shard_of(node),
            Envelope::Client {
                at: node,
                key,
                client,
            },
        );
        Ok(PendingQuery {
            net: self,
            client,
            rx,
        })
    }

    /// Stops the worker pool and returns the final protocol state of
    /// every node, in node-id order (useful for inspecting per-node
    /// statistics). Implies [`LiveNetwork::quiesce`], so all previously
    /// injected traffic is fully processed in the returned states.
    /// Counters wiped by crashes are available separately through
    /// [`LiveNetwork::crash_retained_stats`].
    pub fn shutdown(self) -> Vec<CupNode> {
        self.quiesce();
        for inbox in &self.shared.inboxes {
            inbox.shutdown();
        }
        let mut nodes = Vec::with_capacity(self.node_ids.len());
        for handle in self.handles {
            // cup-lint: allow(panic-path, "shutdown, after the last quiesce: surfacing a worker panic to the caller is the report, not a degradation")
            nodes.extend(handle.join().expect("worker thread must not panic"));
        }
        // Overlay-aware shards own non-contiguous id sets, so the
        // concatenation above is not id-sorted in every mode.
        nodes.sort_unstable_by_key(|n| n.id().index());
        nodes
    }
}

/// A posted-but-unclaimed client query (see
/// [`LiveNetwork::query_detached`]). Dropping it deregisters the client.
pub struct PendingQuery<'a> {
    net: &'a LiveNetwork,
    client: ClientId,
    rx: Receiver<Vec<IndexEntry>>,
}

impl PendingQuery<'_> {
    /// Takes the answer if one has arrived. After a
    /// [`LiveNetwork::quiesce`], `None` is definitive: the query (or its
    /// response) was dropped and no answer will ever come.
    pub fn try_take(self) -> Option<Vec<IndexEntry>> {
        self.poll()
    }

    /// Like [`PendingQuery::try_take`] without consuming the handle: the
    /// client stays registered, so an answer resurrected later — e.g. a
    /// PFU retry's first-time update reaching a node with this client
    /// still waiting — can still be claimed by a later poll.
    pub fn poll(&self) -> Option<Vec<IndexEntry>> {
        self.rx.try_recv().ok()
    }
}

impl Drop for PendingQuery<'_> {
    fn drop(&mut self) {
        self.net
            .shared
            .clients
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimTime;

    const LIFE: SimDuration = SimDuration::from_secs(60);

    /// A 4-worker network (forcing cross-shard traffic even on small
    /// populations and single-core CI runners).
    fn network(kind: OverlayKind, n: usize) -> LiveNetwork {
        let mut rng = DetRng::seed_from(11);
        LiveNetwork::start_with_workers(kind, n, NodeConfig::cup_default(), 4, &mut rng).unwrap()
    }

    #[test]
    fn query_finds_replica_on_both_overlays() {
        for kind in OverlayKind::ALL {
            let net = network(kind, 16);
            net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
            net.quiesce();
            for &node in &net.nodes()[..4] {
                let entries = net.query(node, KeyId(1)).unwrap();
                assert_eq!(entries.len(), 1, "{kind}: query at {node}");
                assert_eq!(entries[0].replica, ReplicaId(0));
            }
            assert_eq!(net.routing_failures(), 0);
            net.shutdown();
        }
    }

    #[test]
    fn repeat_queries_are_served_from_cache() {
        let net = network(OverlayKind::Can, 16);
        net.replica_birth(KeyId(2), ReplicaId(3), LIFE);
        net.quiesce();
        let node = net.nodes()[7];
        net.query(node, KeyId(2)).unwrap();
        let hops_after_first = net.hops();
        net.query(node, KeyId(2)).unwrap();
        let hops_after_second = net.hops();
        assert!(
            hops_after_second <= hops_after_first + 1,
            "second query must be a (near-)local cache hit: {hops_after_first} -> {hops_after_second}"
        );
        net.shutdown();
    }

    #[test]
    fn deletion_propagates_to_caches() {
        for kind in OverlayKind::ALL {
            let net = network(kind, 16);
            net.replica_birth(KeyId(3), ReplicaId(5), LIFE);
            net.quiesce();
            let node = net.nodes()[9];
            assert_eq!(net.query(node, KeyId(3)).unwrap().len(), 1);
            net.replica_deletion(KeyId(3), ReplicaId(5));
            net.quiesce();
            // After the delete propagates, the fresh answer is empty.
            let entries = net.query(node, KeyId(3)).unwrap();
            assert!(
                entries.is_empty(),
                "{kind}: delete update should have removed the entry everywhere"
            );
            net.shutdown();
        }
    }

    #[test]
    fn unknown_key_yields_empty_answer() {
        let net = network(OverlayKind::Can, 8);
        let entries = net.query(net.nodes()[0], KeyId(99)).unwrap();
        assert!(entries.is_empty());
        net.shutdown();
    }

    #[test]
    fn unknown_node_is_rejected() {
        let net = network(OverlayKind::Can, 8);
        assert!(matches!(
            net.query(NodeId(999), KeyId(1)),
            Err(RuntimeError::UnknownNode(_))
        ));
        net.shutdown();
    }

    #[test]
    fn shutdown_returns_node_states_in_id_order() {
        let net = network(OverlayKind::Chord, 8);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        net.query(net.nodes()[3], KeyId(1)).unwrap();
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 8);
        assert!(nodes.iter().enumerate().all(|(i, n)| n.id().index() == i));
        let total_queries: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
        assert_eq!(total_queries, 1);
    }

    #[test]
    fn quiesce_on_an_idle_network_returns_immediately() {
        let net = network(OverlayKind::Can, 8);
        net.quiesce();
        net.quiesce();
        net.shutdown();
    }

    #[test]
    fn worker_count_is_clamped_to_population() {
        let mut rng = DetRng::seed_from(3);
        let net = LiveNetwork::start_with_workers(
            OverlayKind::Can,
            3,
            NodeConfig::cup_default(),
            64,
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.workers(), 3);
        net.shutdown();
    }

    #[test]
    fn awkward_worker_counts_are_honored_exactly() {
        // 16 nodes over 7 workers does not divide evenly; the balanced
        // partition must still produce exactly 7 shards covering every
        // node exactly once.
        let mut rng = DetRng::seed_from(5);
        let net = LiveNetwork::start_with_workers(
            OverlayKind::Can,
            16,
            NodeConfig::cup_default(),
            7,
            &mut rng,
        )
        .unwrap();
        assert_eq!(net.workers(), 7);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        for &node in net.nodes() {
            assert_eq!(net.query(node, KeyId(1)).unwrap().len(), 1);
        }
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 16);
        assert!(nodes.iter().enumerate().all(|(i, n)| n.id().index() == i));
    }

    #[test]
    fn cross_shard_traffic_flows_through_mailboxes() {
        let net = network(OverlayKind::Can, 32);
        for k in 0..8 {
            net.replica_birth(KeyId(k), ReplicaId(k), LIFE);
        }
        net.quiesce();
        let mut rng = DetRng::seed_from(17);
        for _ in 0..32 {
            let node = net.nodes()[rng.choose_index(32)];
            net.query(node, KeyId(rng.next_below(8) as u32)).unwrap();
        }
        net.quiesce();
        assert!(
            net.cross_shard_messages() > 0,
            "a 4-shard network must route some messages across shards"
        );
        assert!(net.cross_shard_messages() <= net.hops());
        // Batched transfer still counts individual envelopes: every
        // cross-shard message traveled inside some deposited batch.
        assert_eq!(net.batched_envelopes(), net.cross_shard_messages());
        assert!(net.batch_flushes() > 0);
        assert!(
            net.batch_flushes() <= net.batched_envelopes(),
            "a non-empty flush carries at least one envelope"
        );
        net.shutdown();
    }

    #[test]
    fn overlay_aware_map_serves_queries_and_returns_id_order() {
        for kind in OverlayKind::ALL {
            let mut rng = DetRng::seed_from(23);
            let net = LiveNetwork::start_with_map(
                kind,
                24,
                NodeConfig::cup_default(),
                4,
                ShardMapMode::OverlayAware,
                Clock::wall(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(net.shard_map_mode(), ShardMapMode::OverlayAware);
            net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
            net.quiesce();
            for &node in net.nodes() {
                assert_eq!(
                    net.query(node, KeyId(1)).unwrap().len(),
                    1,
                    "{kind}: {node}"
                );
            }
            assert_eq!(net.routing_failures(), 0);
            let nodes = net.shutdown();
            assert_eq!(nodes.len(), 24);
            assert!(
                nodes.iter().enumerate().all(|(i, n)| n.id().index() == i),
                "{kind}: shutdown must return id order under any shard map"
            );
        }
    }

    #[test]
    fn single_worker_networks_never_batch() {
        let mut rng = DetRng::seed_from(29);
        let net = LiveNetwork::start_with_workers(
            OverlayKind::Can,
            16,
            NodeConfig::cup_default(),
            1,
            &mut rng,
        )
        .unwrap();
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        net.query(net.nodes()[7], KeyId(1)).unwrap();
        net.quiesce();
        assert_eq!(net.cross_shard_messages(), 0);
        assert_eq!(net.batch_flushes(), 0);
        assert_eq!(net.batched_envelopes(), 0);
        net.shutdown();
    }

    #[test]
    fn concurrent_clients_are_all_answered() {
        let net = network(OverlayKind::Can, 32);
        for k in 0..4 {
            net.replica_birth(KeyId(k), ReplicaId(k), LIFE);
        }
        net.quiesce();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let net = &net;
                s.spawn(move || {
                    let mut rng = DetRng::seed_from(100 + u64::from(t));
                    for _ in 0..16 {
                        let node = net.nodes()[rng.choose_index(32)];
                        let entries = net.query(node, KeyId(t)).unwrap();
                        assert_eq!(entries.len(), 1);
                    }
                });
            }
        });
        let nodes = net.shutdown();
        let total: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn justification_accounting_tracks_maintenance_updates() {
        let net = network(OverlayKind::Can, 16);
        net.track_justification(true);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        // Queries subscribe their reverse paths; responses (first-time
        // updates) are never tracked.
        for &i in &[3usize, 5, 9] {
            net.query(net.nodes()[i], KeyId(1)).unwrap();
            net.quiesce();
        }
        assert_eq!(
            net.justification(),
            (0, 0),
            "first-time responses are not §3.1 maintenance updates"
        );
        // A refresh flows down the interest tree and opens windows.
        net.replica_refresh(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        let (_, tracked) = net.justification();
        assert!(tracked > 0, "refresh deliveries must be tracked");
        // Re-querying walks those windows' virtual paths and justifies
        // them.
        for &i in &[3usize, 5, 9] {
            net.query(net.nodes()[i], KeyId(1)).unwrap();
            net.quiesce();
        }
        let (justified, total) = net.justification();
        assert!(justified >= 1, "a query inside the window justifies it");
        assert!(justified <= total);
        net.shutdown();
    }

    #[test]
    fn justification_is_off_by_default() {
        let net = network(OverlayKind::Can, 16);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        net.query(net.nodes()[5], KeyId(1)).unwrap();
        net.replica_refresh(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        assert_eq!(net.justification(), (0, 0));
        net.shutdown();
    }

    #[test]
    fn crash_wipes_state_and_restart_comes_back_cold() {
        let net = network(OverlayKind::Can, 16);
        net.enable_faults(5);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        let victim = net.nodes()[6];
        let entries = net.query(victim, KeyId(1)).unwrap();
        assert_eq!(entries.len(), 1);
        net.quiesce();
        // Crash the node: queries at it are swallowed, traffic to it is
        // dropped.
        net.inject_fault(FaultAction::Crash {
            node: victim.index(),
        });
        net.quiesce();
        let pending = net.query_detached(victim, KeyId(1)).unwrap();
        net.quiesce();
        assert!(
            pending.try_take().is_none(),
            "a crashed node answers nothing"
        );
        assert_eq!(net.fault_counters().queries_at_crashed, 1);
        assert_eq!(net.fault_counters().crashes, 1);
        // Restart: the node is reachable again, but cold — its next
        // answer needs a fresh upstream fetch, and its pre-crash
        // counters moved to the retained aggregate.
        net.inject_fault(FaultAction::Restart {
            node: victim.index(),
        });
        net.quiesce();
        let entries = net.query(victim, KeyId(1)).unwrap();
        assert_eq!(entries.len(), 1, "restarted node re-fetches and answers");
        assert_eq!(net.fault_counters().restarts, 1);
        assert!(net.crash_retained_stats().client_queries >= 1);
        net.shutdown();
    }

    #[test]
    fn full_loss_drops_everything_and_quiesce_stays_exact() {
        let net = network(OverlayKind::Can, 16);
        net.enable_faults(9);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        net.inject_fault(FaultAction::SetLoss { rate: 1.0 });
        let hops_before = net.hops();
        // Query at a non-authority node: the upstream hop is dropped at
        // the sender, so the network drains instantly (quiesce must not
        // hang on a message that never entered a mailbox) and the client
        // never hears back.
        let poster = net.nodes()[9];
        let pending = net.query_detached(poster, KeyId(1)).unwrap();
        net.quiesce();
        if let Some(entries) = pending.try_take() {
            // The node could be on the authority shard answering from its
            // own cache/directory (no network hop); anything else means a
            // message survived 100% loss.
            assert!(entries.is_empty() || net.hops() == hops_before);
        }
        assert!(
            net.fault_counters().dropped_loss > 0,
            "the upstream query must have been dropped"
        );
        assert_eq!(net.hops(), hops_before, "dropped messages are not hops");
        net.shutdown();
    }

    #[test]
    fn partition_cuts_cross_group_traffic_until_heal() {
        // A response dropped at the partition boundary leaves the
        // posting node's Pending-First-Update flag set; recovery is the
        // PFU timeout retrying on the next miss. On the virtual clock
        // the paper-default 30 s timeout is stepped over *exactly* —
        // no short timeout, no wall-clock wait, no race on slow CI.
        let mut rng = DetRng::seed_from(11);
        let net = LiveNetwork::start_virtual(
            OverlayKind::Chord,
            32,
            NodeConfig::cup_default(),
            4,
            &mut rng,
        )
        .unwrap();
        net.enable_faults(11);
        for k in 0..4 {
            net.replica_birth(KeyId(k), ReplicaId(k), SimDuration::from_secs(3600));
        }
        net.quiesce();
        net.inject_fault(FaultAction::Partition { groups: 2 });
        for node in 0..32u32 {
            let pending = net.query_detached(NodeId(node), KeyId(node % 4)).unwrap();
            net.quiesce();
            drop(pending.try_take());
        }
        let partitioned = net.fault_counters().dropped_partition;
        assert!(partitioned > 0, "a 2-way split must cut some query paths");
        net.inject_fault(FaultAction::Heal);
        net.quiesce();
        // Step logical time past the PFU timeout so retries fire instead
        // of coalescing against fetches the partition swallowed.
        net.advance(NodeConfig::cup_default().pfu_timeout + SimDuration::from_secs(1));
        for node in 0..32u32 {
            let entries = net.query(NodeId(node), KeyId(node % 4)).unwrap();
            assert_eq!(entries.len(), 1, "after heal every query resolves");
        }
        assert_eq!(
            net.fault_counters().dropped_partition,
            partitioned,
            "healed traffic must not count as partitioned"
        );
        let nodes = net.shutdown();
        let retries: u64 = nodes.iter().map(|n| n.stats.pfu_retries).sum();
        assert!(
            retries > 0,
            "stepping past the timeout must convert stuck PFU flags into retries"
        );
    }

    #[test]
    fn virtual_clock_steps_only_at_barriers() {
        let mut rng = DetRng::seed_from(7);
        let net = LiveNetwork::start_virtual(
            OverlayKind::Can,
            16,
            NodeConfig::cup_default(),
            4,
            &mut rng,
        )
        .unwrap();
        assert!(net.is_virtual_clock());
        assert_eq!(net.now(), SimTime::ZERO);
        net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(60));
        net.quiesce();
        assert_eq!(net.now(), SimTime::ZERO, "traffic does not move time");
        assert_eq!(net.run_until(SimTime::from_secs(5)), SimTime::from_secs(5));
        assert_eq!(
            net.advance(SimDuration::from_secs(3)),
            SimTime::from_secs(8)
        );
        // Handlers observe the logical instant: the entry cached by this
        // query expires exactly one lifetime after the birth at t = 0.
        let entries = net.query(net.nodes()[3], KeyId(1)).unwrap();
        assert_eq!(entries[0].expires_at(), SimTime::from_secs(60));
        net.shutdown();
    }

    #[test]
    fn virtual_clock_expires_entries_deterministically() {
        // Freshness on the virtual clock is exact: one step to just
        // before the lifetime edge still hits, one past it misses.
        let mut rng = DetRng::seed_from(13);
        let net = LiveNetwork::start_virtual(
            OverlayKind::Can,
            16,
            NodeConfig::cup_default(),
            2,
            &mut rng,
        )
        .unwrap();
        net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(60));
        net.quiesce();
        // A non-authority node: the authority answers from its directory
        // and classifies no cache miss, which is not what this pins.
        let authority = net.shared.overlay.authority(KeyId(1));
        let node = net
            .nodes()
            .iter()
            .copied()
            .find(|&n| n != authority)
            .unwrap();
        assert_eq!(net.query(node, KeyId(1)).unwrap().len(), 1);
        net.run_until(SimTime::from_secs(59));
        assert_eq!(net.query(node, KeyId(1)).unwrap().len(), 1, "still fresh");
        net.run_until(SimTime::from_secs(61));
        // Expired at the cache *and* at the authority directory: the
        // refetch comes back empty.
        assert!(net.query(node, KeyId(1)).unwrap().is_empty());
        let nodes = net.shutdown();
        let freshness_misses: u64 = nodes.iter().map(|n| n.stats.freshness_misses).sum();
        assert!(freshness_misses > 0, "the second query was an expiry miss");
    }

    #[test]
    fn run_plan_until_replays_windows_at_their_instants() {
        let mut rng = DetRng::seed_from(21);
        let net = LiveNetwork::start_virtual(
            OverlayKind::Can,
            16,
            NodeConfig::cup_default(),
            4,
            &mut rng,
        )
        .unwrap();
        net.enable_faults(3);
        net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(3600));
        net.quiesce();
        let plan = FaultPlan::parse_specs(&["drop:1.0@t=10..20"]).unwrap();
        let mut cursor = 0;
        // Before the window: queries resolve.
        net.run_plan_until(&plan, &mut cursor, SimTime::from_secs(5));
        assert_eq!(net.query(net.nodes()[9], KeyId(1)).unwrap().len(), 1);
        // Inside the window: total loss, the query dies on its first hop.
        net.run_plan_until(&plan, &mut cursor, SimTime::from_secs(15));
        assert_eq!(net.now(), SimTime::from_secs(15));
        let dropped_before = net.fault_counters().dropped_loss;
        let pending = net.query_detached(net.nodes()[10], KeyId(1)).unwrap();
        net.quiesce();
        drop(pending.try_take());
        assert!(net.fault_counters().dropped_loss > dropped_before);
        // Past the window: the closing edge replayed, traffic flows.
        net.run_plan_until(&plan, &mut cursor, SimTime::from_secs(30));
        assert_eq!(net.query(net.nodes()[11], KeyId(1)).unwrap().len(), 1);
        net.shutdown();
    }

    #[test]
    #[should_panic(expected = "wall-mapped")]
    fn advance_panics_on_the_wall_clock() {
        let net = network(OverlayKind::Can, 8);
        net.advance(SimDuration::from_secs(1));
    }

    #[test]
    fn fault_plane_is_inert_until_enabled() {
        let net = network(OverlayKind::Can, 8);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        net.quiesce();
        net.query(net.nodes()[5], KeyId(1)).unwrap();
        assert_eq!(net.fault_counters(), cup_faults::FaultCounters::default());
        assert_eq!(net.dropped_messages(), 0);
        net.shutdown();
    }

    #[test]
    fn live_clock_is_monotonic() {
        let net = network(OverlayKind::Can, 8);
        net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(3600));
        net.quiesce();
        let entries = net.query(net.nodes()[1], KeyId(1)).unwrap();
        assert!(entries[0].expires_at() > SimTime::ZERO);
        net.shutdown();
    }
}
