//! The DES throughput benchmark behind `BENCH_des.json`.
//!
//! Runs the `large_scale` scenario family at a sweep of population sizes
//! and reports wall-clock, engine-event, and cost-model numbers in a
//! stable JSON shape, so the scheduler's performance trajectory is
//! tracked from the calendar-queue PR onward (CI uploads the file as an
//! artifact; compare across commits to spot regressions).

use std::time::{Duration, Instant};

use cup_simnet::{run_experiment, ExperimentConfig};
use cup_workload::Scenario;

/// One timed run of the sweep.
#[derive(Debug, Clone)]
pub struct DesBenchPoint {
    /// Overlay population.
    pub nodes: usize,
    /// Distinct keys in the workload.
    pub keys: u32,
    /// Expected query count.
    pub queries: u64,
    /// Wall-clock time of the whole experiment (build + run).
    pub wall: Duration,
    /// Discrete events the engine processed.
    pub events: u64,
    /// Total cost in hops (sanity anchor: must be deterministic).
    pub total_cost: u64,
    /// Client queries actually posted.
    pub client_queries: u64,
    /// Median client-query latency (µs of virtual time).
    pub query_p50_us: u64,
    /// p99 client-query latency (µs of virtual time).
    pub query_p99_us: u64,
    /// p99.9 client-query latency (µs of virtual time).
    pub query_p999_us: u64,
}

impl DesBenchPoint {
    /// Engine throughput in events per second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

/// Runs one timed `large_scale` experiment.
pub fn run_point(nodes: usize, queries: u64, seed: u64) -> DesBenchPoint {
    let scenario = Scenario::large_scale(nodes, queries, seed);
    let keys = scenario.keys;
    let config = ExperimentConfig::cup(scenario);
    let start = Instant::now();
    let result = run_experiment(&config);
    let wall = start.elapsed();
    DesBenchPoint {
        nodes,
        keys,
        queries,
        wall,
        events: result.events,
        total_cost: result.total_cost(),
        client_queries: result.nodes.client_queries,
        query_p50_us: result.query_latency_us(500),
        query_p99_us: result.query_latency_us(990),
        query_p999_us: result.query_latency_us(999),
    }
}

/// Renders the sweep as the `BENCH_des.json` document.
///
/// Hand-rolled JSON (the workspace builds offline, without serde); every
/// value is a number or plain string, so escaping is not needed.
pub fn render_json(points: &[DesBenchPoint], queries: u64, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cup-des large_scale sweep\",\n");
    out.push_str(&format!("  \"queries_per_run\": {queries},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"keys\": {}, \"wall_ms\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"total_cost\": {}, \"client_queries\": {}, \
             \"query_p50_us\": {}, \"query_p99_us\": {}, \
             \"query_p999_us\": {}}}{comma}\n",
            p.nodes,
            p.keys,
            p.wall.as_secs_f64() * 1e3,
            p.events,
            p.events_per_sec(),
            p.total_cost,
            p.client_queries,
            p.query_p50_us,
            p.query_p99_us,
            p.query_p999_us,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_runs_and_renders() {
        let p = run_point(256, 500, 9);
        assert_eq!(p.nodes, 256);
        assert!(p.events > 0);
        assert!(p.client_queries > 0);
        assert!(p.events_per_sec() > 0.0);
        assert!(p.query_p99_us >= p.query_p50_us);
        let json = render_json(&[p.clone(), p], 500, 9);
        assert!(json.contains("\"queries_per_run\": 500"));
        assert!(json.contains("\"query_p50_us\""));
        assert!(json.contains("\"query_p999_us\""));
        assert_eq!(json.matches("\"nodes\": 256").count(), 2);
        // Well-formed enough for jq: balanced braces, one trailing brace.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
