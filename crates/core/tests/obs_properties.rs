//! Algebraic properties of the integer latency histogram
//! ([`cup_core::Hist`]).
//!
//! The conformance suites compare histogram state byte-for-byte across
//! runtimes, and the parallel sweeps fold per-worker histograms into
//! one. Both only work because `Hist` is a pure multiset summary:
//! merging is associative and commutative, recording order never
//! matters, and serialization round-trips exactly. These properties pin
//! each of those laws directly, plus the quantile function's
//! monotonicity and floor semantics.

use proptest::prelude::*;

use cup_core::Hist;

/// Values spanning every histogram regime: the exact low range, the
/// log-linear middle, huge values, and the saturating top bucket.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..4, 0u64..1_000_000).prop_map(|(regime, m)| match regime {
            0 => m % 8,
            1 => 8 + m,
            2 => m << 30,
            _ => u64::MAX,
        }),
        0..200,
    )
}

fn hist_of(values: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_commutes(a in arb_values(), b in arb_values()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associates(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Recording is order-independent: any permutation of the sample
    /// stream produces byte-identical state. This is the exact property
    /// that lets the sharded live runtime (concurrent recording order)
    /// match the DES (serial delivery order) byte-for-byte.
    #[test]
    fn recording_order_is_irrelevant(values in arb_values(), seed in 0u64..1_000) {
        let forward = hist_of(&values);
        // Deterministic shuffle driven by the seed.
        let mut shuffled = values.clone();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(forward, hist_of(&shuffled));
    }

    /// Splitting a stream and merging the halves equals recording it
    /// whole — the parallel-sweep aggregation law.
    #[test]
    fn split_then_merge_equals_whole(values in arb_values(), split in 0usize..200) {
        let cut = split.min(values.len());
        let mut merged = hist_of(&values[..cut]);
        merged.merge(&hist_of(&values[cut..]));
        prop_assert_eq!(merged, hist_of(&values));
    }

    /// The quantile function is monotone in `p` and bracketed by the
    /// recorded extremes: a bucket floor never exceeds the true maximum,
    /// and the p=0/p=1000 readings bound every other reading.
    #[test]
    fn quantile_is_monotone_and_bounded(values in arb_values()) {
        let h = hist_of(&values);
        let mut prev = h.quantile(0);
        for p in [1u32, 10, 250, 500, 750, 900, 990, 999, 1000] {
            let q = h.quantile(p);
            prop_assert!(q >= prev, "quantile({p}) = {q} < quantile(prev) = {prev}");
            prev = q;
        }
        if let Some(&max) = values.iter().max() {
            prop_assert!(h.quantile(1000) <= max, "floor semantics: never above the max");
            // The floor is within the histogram's relative error: above
            // max/2 is far looser than the real ≤25% bound, but stays
            // true for the saturating top bucket too.
            if max > 0 && max < u64::MAX / 2 {
                prop_assert!(h.quantile(1000) >= max / 2, "floor too far below max {max}");
            }
        }
    }

    /// Serialization round-trips exactly: state, count, and every
    /// quantile reading survive `to_bytes` → `from_bytes`.
    #[test]
    fn bytes_round_trip(values in arb_values()) {
        let h = hist_of(&values);
        let back = Hist::from_bytes(&h.to_bytes()).expect("own encoding must parse");
        prop_assert_eq!(h, back);
        prop_assert_eq!(back.count(), values.len() as u64);
        for p in [0u32, 500, 990, 1000] {
            prop_assert_eq!(h.quantile(p), back.quantile(p));
        }
    }

    /// Merging an empty histogram is the identity.
    #[test]
    fn empty_is_identity(values in arb_values()) {
        let h = hist_of(&values);
        let mut merged = h;
        merged.merge(&Hist::new());
        prop_assert_eq!(merged, h);
        let mut from_empty = Hist::new();
        from_empty.merge(&h);
        prop_assert_eq!(from_empty, h);
    }
}
