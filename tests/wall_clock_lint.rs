//! Wall-time lint: protocol logic must not read the wall clock.
//!
//! The live runtime's determinism story rests on one invariant: "now"
//! comes from `cup_core::clock::Clock` and nowhere else, so a virtual-
//! clock run is bit-reproducible and conformant with the DES.
//!
//! Historically this file carried its own substring scanner and CI
//! duplicated it as a grep; both are now thin callers of the `cup-lint`
//! engine's `wall-clock` rule, so the banned-construct list lives in
//! exactly one place (`cup_lint::rules`) and matches *code* — a banned
//! name in a doc comment or an error string no longer trips the gate.

use cup_lint::engine::{self, Rule, Workspace};
use cup_lint::rules::{WallClock, WALL_CLOCK_BANNED, WALL_CLOCK_DESIGNATED, WALL_CLOCK_SCOPE};

#[test]
fn wall_time_never_leaks_into_protocol_crates() {
    let root = cup_lint::workspace_root();
    let ws = Workspace::load(&root, WALL_CLOCK_SCOPE);
    assert!(
        ws.files.len() > 10,
        "the scan must actually cover the crates"
    );
    let report = engine::run(&ws, &[&WallClock as &dyn Rule]);
    let violations: Vec<String> = report
        .denied()
        .map(|f| format!("{}:{}: {}", f.path, f.line, f.message))
        .collect();
    assert!(
        violations.is_empty(),
        "wall-time constructs outside the designated clock module:\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_rule_still_fires_on_a_planted_violation() {
    // Guard against the gate rotting into a vacuous pass (the fate of
    // its predecessor, which silently fell out of the test wiring): a
    // planted `thread::sleep` in scope must produce a finding.
    let ws = Workspace::from_sources(&[(
        "crates/runtime/src/planted.rs",
        "fn nap(d: Duration) { std::thread::sleep(d); }\n",
    )]);
    let report = engine::run(&ws, &[&WallClock as &dyn Rule]);
    assert_eq!(report.denied().count(), 1);
}

#[test]
fn the_designated_module_still_exists() {
    // If clock.rs is ever renamed, the exemption must move with it
    // rather than silently exempting nothing.
    let root = cup_lint::workspace_root();
    assert!(
        root.join("crates/core/src")
            .join(WALL_CLOCK_DESIGNATED)
            .is_file(),
        "crates/core/src/{WALL_CLOCK_DESIGNATED} is the one module allowed to touch the wall \
         clock; update cup_lint::rules if it moved"
    );
    assert!(
        WALL_CLOCK_BANNED.contains(&"thread::sleep"),
        "the banned-construct list must keep covering sleeps"
    );
}
