//! Rectangular CAN zones on the torus.
//!
//! A zone is a half-open rectangle `[x0, x1) × [y0, y1)` with
//! `0 <= x0 < x1 <= SPACE_WIDTH`. Zones never individually wrap around the
//! torus edge (splits only shrink the initial full-space zone), but
//! *adjacency* and *distance* are computed torally, so the edges at `0` and
//! `SPACE_WIDTH` are identified.

use crate::point::{torus_dist_1d, Point, SPACE_WIDTH};

/// A half-open rectangular zone of the coordinate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zone {
    /// Inclusive lower x bound.
    pub x0: u64,
    /// Exclusive upper x bound.
    pub x1: u64,
    /// Inclusive lower y bound.
    pub y0: u64,
    /// Exclusive upper y bound.
    pub y1: u64,
}

/// The dimension along which a zone is split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Split the x extent.
    X,
    /// Split the y extent.
    Y,
}

impl Zone {
    /// The zone covering the whole coordinate space.
    pub const FULL: Zone = Zone {
        x0: 0,
        x1: SPACE_WIDTH,
        y0: 0,
        y1: SPACE_WIDTH,
    };

    /// Creates a zone.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty or exceed the coordinate space.
    pub fn new(x0: u64, x1: u64, y0: u64, y1: u64) -> Self {
        assert!(x0 < x1 && x1 <= SPACE_WIDTH, "bad x bounds [{x0}, {x1})");
        assert!(y0 < y1 && y1 <= SPACE_WIDTH, "bad y bounds [{y0}, {y1})");
        Zone { x0, x1, y0, y1 }
    }

    /// Width of the x extent.
    pub fn width(&self) -> u64 {
        self.x1 - self.x0
    }

    /// Height of the y extent.
    pub fn height(&self) -> u64 {
        self.y1 - self.y0
    }

    /// Area of the zone (as a 128-bit value; the full space is `2⁶⁴`).
    pub fn area(&self) -> u128 {
        self.width() as u128 * self.height() as u128
    }

    /// Returns `true` if the point lies inside the zone.
    pub fn contains(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x < self.x1 && self.y0 <= p.y && p.y < self.y1
    }

    /// The axis a CAN split uses: the longer side, ties going to x.
    pub fn split_axis(&self) -> Axis {
        if self.height() > self.width() {
            Axis::Y
        } else {
            Axis::X
        }
    }

    /// Splits the zone in half along its longer side.
    ///
    /// Returns `(kept, given)` where `kept` is the half containing the lower
    /// coordinates. Returns `None` if the zone is too small to split (one
    /// unit wide on the split axis), which in practice never happens before
    /// ~2³² nodes.
    pub fn split(&self) -> Option<(Zone, Zone)> {
        match self.split_axis() {
            Axis::X => {
                if self.width() < 2 {
                    return None;
                }
                let mid = self.x0 + self.width() / 2;
                Some((
                    Zone::new(self.x0, mid, self.y0, self.y1),
                    Zone::new(mid, self.x1, self.y0, self.y1),
                ))
            }
            Axis::Y => {
                if self.height() < 2 {
                    return None;
                }
                let mid = self.y0 + self.height() / 2;
                Some((
                    Zone::new(self.x0, self.x1, self.y0, mid),
                    Zone::new(self.x0, self.x1, mid, self.y1),
                ))
            }
        }
    }

    /// Attempts to merge two zones into one rectangle.
    ///
    /// Succeeds only if they share a full edge (the sibling relationship
    /// produced by [`Zone::split`]).
    pub fn merge(&self, other: &Zone) -> Option<Zone> {
        // Merge along x: same y extent, abutting x intervals.
        if self.y0 == other.y0 && self.y1 == other.y1 {
            if self.x1 == other.x0 {
                return Some(Zone::new(self.x0, other.x1, self.y0, self.y1));
            }
            if other.x1 == self.x0 {
                return Some(Zone::new(other.x0, self.x1, self.y0, self.y1));
            }
        }
        // Merge along y: same x extent, abutting y intervals.
        if self.x0 == other.x0 && self.x1 == other.x1 {
            if self.y1 == other.y0 {
                return Some(Zone::new(self.x0, self.x1, self.y0, other.y1));
            }
            if other.y1 == self.y0 {
                return Some(Zone::new(self.x0, self.x1, other.y0, self.y1));
            }
        }
        None
    }

    /// Returns `true` if the zones share a border segment of positive
    /// length on the torus (CAN neighbor relation; touching only at a
    /// corner does not count).
    pub fn abuts(&self, other: &Zone) -> bool {
        let x_touch = interval_touches_torally(self.x0, self.x1, other.x0, other.x1);
        let y_touch = interval_touches_torally(self.y0, self.y1, other.y0, other.y1);
        let x_overlap = interval_overlap_len(self.x0, self.x1, other.x0, other.x1) > 0;
        let y_overlap = interval_overlap_len(self.y0, self.y1, other.y0, other.y1) > 0;
        // Neighbors along x: x intervals touch, y intervals overlap — or
        // vice versa.
        (x_touch && y_overlap) || (y_touch && x_overlap)
    }

    /// Squared Euclidean distance (on the torus) from the zone to a point;
    /// zero if the point is inside.
    pub fn dist_sq_to(&self, p: Point) -> u128 {
        let dx = interval_dist_torally(self.x0, self.x1, p.x) as u128;
        let dy = interval_dist_torally(self.y0, self.y1, p.y) as u128;
        dx * dx + dy * dy
    }
}

/// Returns `true` if the half-open intervals `[a0, a1)` and `[b0, b1)` touch
/// end-to-end on the circle (including across the 0/`SPACE_WIDTH` seam).
fn interval_touches_torally(a0: u64, a1: u64, b0: u64, b1: u64) -> bool {
    let touches = |end: u64, start: u64| end % SPACE_WIDTH == start % SPACE_WIDTH;
    touches(a1, b0) || touches(b1, a0)
}

/// Length of the overlap of two half-open intervals (no wrapping needed:
/// zones never wrap individually).
fn interval_overlap_len(a0: u64, a1: u64, b0: u64, b1: u64) -> u64 {
    let lo = a0.max(b0);
    let hi = a1.min(b1);
    hi.saturating_sub(lo)
}

/// Distance on the circle from coordinate `p` to the half-open interval
/// `[lo, hi)`; zero if `p` is inside.
fn interval_dist_torally(lo: u64, hi: u64, p: u64) -> u64 {
    if lo <= p && p < hi {
        return 0;
    }
    // The nearest point of an arc to an outside point is one of its ends.
    torus_dist_1d(p, lo).min(torus_dist_1d(p, hi - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_zone_contains_everything() {
        assert!(Zone::FULL.contains(Point::new(0, 0)));
        assert!(Zone::FULL.contains(Point::new(SPACE_WIDTH - 1, SPACE_WIDTH - 1)));
        assert_eq!(Zone::FULL.area(), (SPACE_WIDTH as u128).pow(2));
    }

    #[test]
    fn split_halves_area_and_partitions() {
        let (a, b) = Zone::FULL.split().unwrap();
        assert_eq!(a.area() + b.area(), Zone::FULL.area());
        let p = Point::new(SPACE_WIDTH / 4, 7);
        assert!(a.contains(p) ^ b.contains(p));
        // The first split is along x (square zone, tie to x).
        assert_eq!(a.x1, SPACE_WIDTH / 2);
    }

    #[test]
    fn split_alternates_axes() {
        let (a, _) = Zone::FULL.split().unwrap();
        // `a` is now taller than wide, so the next split is along y.
        assert_eq!(a.split_axis(), Axis::Y);
        let (aa, ab) = a.split().unwrap();
        assert_eq!(aa.y1, SPACE_WIDTH / 2);
        assert_eq!(ab.y0, SPACE_WIDTH / 2);
    }

    #[test]
    fn merge_reverses_split() {
        let (a, b) = Zone::FULL.split().unwrap();
        assert_eq!(a.merge(&b), Some(Zone::FULL));
        assert_eq!(b.merge(&a), Some(Zone::FULL));
        let (aa, _) = a.split().unwrap();
        assert_eq!(aa.merge(&b), None, "different extents cannot merge");
    }

    #[test]
    fn abuts_straight_edges() {
        let (a, b) = Zone::FULL.split().unwrap();
        assert!(a.abuts(&b));
        let (aa, ab) = a.split().unwrap();
        assert!(aa.abuts(&ab));
        assert!(aa.abuts(&b));
        assert!(ab.abuts(&b));
    }

    #[test]
    fn abuts_across_torus_seam() {
        let (a, b) = Zone::FULL.split().unwrap();
        // `a` is [0, W/2), `b` is [W/2, W): they touch both at W/2 and
        // across the seam at 0/W.
        assert_eq!(a.x0, 0);
        assert_eq!(b.x1, SPACE_WIDTH);
        assert!(a.abuts(&b));
    }

    #[test]
    fn corner_touch_is_not_abutment() {
        let a = Zone::new(0, 10, 0, 10);
        let b = Zone::new(10, 20, 10, 20);
        assert!(!a.abuts(&b), "sharing only a corner is not adjacency");
    }

    #[test]
    fn dist_sq_inside_is_zero() {
        let z = Zone::new(10, 20, 10, 20);
        assert_eq!(z.dist_sq_to(Point::new(15, 15)), 0);
        assert_eq!(z.dist_sq_to(Point::new(10, 19)), 0);
    }

    #[test]
    fn dist_sq_outside_uses_nearest_edge() {
        let z = Zone::new(10, 20, 10, 20);
        // Point directly right of the zone.
        assert_eq!(z.dist_sq_to(Point::new(25, 15)), 36); // (25-19)²
                                                          // Point diagonal from the corner.
        assert_eq!(z.dist_sq_to(Point::new(25, 25)), 72); // 6² + 6²
                                                          // Point reaching the zone faster across the seam.
        let edge = Zone::new(0, 10, 0, 10);
        assert_eq!(edge.dist_sq_to(Point::new(SPACE_WIDTH - 2, 5)), 4);
    }

    #[test]
    #[should_panic(expected = "bad x bounds")]
    fn empty_zone_rejected() {
        let _ = Zone::new(10, 10, 0, 5);
    }
}
