//! CUP: Controlled Update Propagation in Peer-to-Peer Networks.
//!
//! A faithful, from-scratch Rust reproduction of Roussopoulos & Baker's
//! CUP (2002): a cache-maintenance protocol for structured peer-to-peer
//! index networks that asynchronously builds caches of index entries
//! while answering search queries and then propagates controlled updates
//! to keep those caches fresh.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`des`] — deterministic discrete-event engine (the Narses-equivalent
//!   substrate);
//! * [`overlay`] — 2-D CAN and Chord overlays with deterministic routing;
//! * [`protocol`] — the CUP node state machine (the paper's
//!   contribution);
//! * [`workload`] — Poisson/Zipf/burst query generators, replica
//!   lifecycles, churn and capacity schedules;
//! * [`simnet`] — the experiment harness reproducing every table and
//!   figure of the paper's evaluation;
//! * [`runtime`] — a live deployment of the same protocol state machine
//!   on a sharded worker pool;
//! * [`faults`] — the deterministic fault-injection plane (link loss,
//!   latency spikes, crash/restart, partitions) shared by both runtimes.
//!
//! # Quickstart
//!
//! ```
//! use cup::prelude::*;
//!
//! // A small network, a modest workload, CUP versus standard caching.
//! let scenario = Scenario {
//!     nodes: 64,
//!     keys: 4,
//!     query_rate: 10.0,
//!     query_start: SimTime::from_secs(300),
//!     query_end: SimTime::from_secs(800),
//!     sim_end: SimTime::from_secs(1_500),
//!     ..Scenario::default()
//! };
//! let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
//! let cup = run_experiment(&ExperimentConfig::cup(scenario));
//! assert!(cup.total_cost() < std.total_cost());
//! ```

pub use cup_core as protocol;
pub use cup_des as des;
pub use cup_faults as faults;
pub use cup_overlay as overlay;
pub use cup_runtime as runtime;
pub use cup_simnet as simnet;
pub use cup_workload as workload;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use cup_core::{
        trace_diff, Action, AuditConfig, CupNode, CutoffPolicy, Hist, IndexEntry,
        JustificationTracker, Message, Mode, NodeConfig, PolicyState, PropagationPolicy,
        ReplicaEvent, Requester, ResetMode, TraceBuf, TraceDivergence, TraceEvent, TraceKind,
        Update, UpdateKind,
    };
    pub use cup_des::{DetRng, KeyId, NodeId, ReplicaId, SimDuration, SimTime};
    pub use cup_faults::{Behavior, FaultAction, FaultCounters, FaultPlan, FaultState};
    pub use cup_overlay::{AnyOverlay, Overlay, OverlayKind};
    pub use cup_runtime::{LiveNetwork, PendingQuery, RuntimeError, ShardMap, ShardMapMode};
    pub use cup_simnet::{run_experiment, ExperimentConfig, ExperimentResult};
    pub use cup_workload::{CapacityProfile, ChurnSchedule, KeySelector, QueryGen, Scenario};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = NodeConfig::cup_default();
        let _ = Scenario::default();
        let _ = CutoffPolicy::second_chance();
        let _ = PropagationPolicy::uniform(CutoffPolicy::adaptive());
        let _ = JustificationTracker::new();
        let _ = FaultPlan::none();
        let _ = FaultState::new(0);
        let _ = FaultAction::Heal;
        let _ = FaultCounters::default();
    }
}
