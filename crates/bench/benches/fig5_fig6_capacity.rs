//! Figures 5 and 6: total cost versus reduced outgoing capacity.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::Scale;
use cup_simnet::{report, sweeps};

fn fig5_fig6(c: &mut Criterion) {
    let scale = Scale::Bench;
    let base = scale.base_scenario();
    let capacities = scale.capacities();

    let points = sweeps::capacity_sweep(&base, &capacities);
    println!("\n{}", report::render_capacity(&points));

    let mut group = c.benchmark_group("fig5_fig6_capacity");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| sweeps::capacity_sweep(&base, &capacities))
    });
    group.finish();
}

criterion_group!(benches, fig5_fig6);
criterion_main!(benches);
