//! Rule 5: **conformance-parity** — the drift detector.
//!
//! The conformance suites only prove sim-vs-live byte-identity for the
//! counters they actually compare. Historically every new counter family
//! (justification, faults, audits) had to be hand-threaded through
//! `NodeStats::merge`, the conformance `Outcome`, and the assertion
//! sites — and forgetting any one of the three silently weakens the
//! invariant. This rule parses the field lists out of the masked source
//! and fails when:
//!
//! * a `NodeStats` field is missing from its own `merge()` body (the
//!   counter would vanish when per-node stats are aggregated);
//! * a `NetMetrics` counter is never consumed by the conformance
//!   harness, directly or through a `NetMetrics` helper method the
//!   harness calls (`total_cost()` covers the six hop counters, for
//!   example — the rule computes that closure);
//! * a conformance `Outcome` field is never referenced by the
//!   sim-vs-live assertion suite.
//!
//! A field that is intentionally report-only can carry an allow-pragma
//! on its declaration line.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::{Finding, Rule, Workspace};

/// One parity obligation between a struct and the code that must
/// consume every one of its fields.
#[derive(Debug, Clone)]
pub enum ParityCheck {
    /// Every field of `struct_name` (declared in `struct_file`) must be
    /// referenced inside `fn fn_name`'s body in the same file.
    MergedInto {
        struct_file: String,
        struct_name: String,
        fn_name: String,
    },
    /// Every field of `struct_name` must be referenced by at least one
    /// of the `consumer_files` — directly, or via an inherent method of
    /// the struct whose (transitive) body touches the field.
    ConsumedBy {
        struct_file: String,
        struct_name: String,
        consumer_files: Vec<String>,
    },
}

pub struct ConformanceParity {
    pub checks: Vec<ParityCheck>,
}

impl ConformanceParity {
    /// The workspace's real parity obligations.
    pub fn workspace() -> Self {
        ConformanceParity {
            checks: vec![
                ParityCheck::MergedInto {
                    struct_file: "crates/core/src/stats.rs".into(),
                    struct_name: "NodeStats".into(),
                    fn_name: "merge".into(),
                },
                // The histogram itself: every `Hist` field must fold in
                // `merge`, or parallel sweep aggregation silently loses
                // whichever component was forgotten.
                ParityCheck::MergedInto {
                    struct_file: "crates/core/src/obs.rs".into(),
                    struct_name: "Hist".into(),
                    fn_name: "merge".into(),
                },
                ParityCheck::ConsumedBy {
                    struct_file: "crates/simnet/src/metrics.rs".into(),
                    struct_name: "NetMetrics".into(),
                    consumer_files: vec!["crates/testkit/src/conformance.rs".into()],
                },
                ParityCheck::ConsumedBy {
                    struct_file: "crates/testkit/src/conformance.rs".into(),
                    struct_name: "Outcome".into(),
                    consumer_files: vec!["tests/conformance.rs".into()],
                },
            ],
        }
    }
}

const RULE: &str = "conformance-parity";

impl Rule for ConformanceParity {
    fn name(&self) -> &'static str {
        RULE
    }

    fn description(&self) -> &'static str {
        "every counter declared in NetMetrics/NodeStats/Outcome must be merged and asserted"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for check in &self.checks {
            match check {
                ParityCheck::MergedInto {
                    struct_file,
                    struct_name,
                    fn_name,
                } => {
                    let Some(file) = ws.file(struct_file) else {
                        out.push(missing_file(struct_file));
                        continue;
                    };
                    let fields = struct_fields(&file.masked, struct_name);
                    if fields.is_empty() {
                        out.push(missing_struct(struct_file, struct_name));
                        continue;
                    }
                    let Some(body) = fn_body(&file.masked, fn_name) else {
                        out.push(Finding::new(
                            RULE,
                            struct_file,
                            1,
                            format!("fn {fn_name} not found — parity check cannot run"),
                        ));
                        continue;
                    };
                    let merged = idents(body);
                    for (line, field) in fields {
                        if !merged.contains(&field) {
                            out.push(Finding::new(
                                RULE,
                                struct_file,
                                line,
                                format!(
                                    "{struct_name}::{field} is never touched by \
                                     {fn_name}() — the counter would vanish on aggregation"
                                ),
                            ));
                        }
                    }
                }
                ParityCheck::ConsumedBy {
                    struct_file,
                    struct_name,
                    consumer_files,
                } => {
                    let Some(file) = ws.file(struct_file) else {
                        out.push(missing_file(struct_file));
                        continue;
                    };
                    let fields = struct_fields(&file.masked, struct_name);
                    if fields.is_empty() {
                        out.push(missing_struct(struct_file, struct_name));
                        continue;
                    }
                    let mut consumer_idents = BTreeSet::new();
                    for path in consumer_files {
                        let Some(consumer) = ws.file(path) else {
                            out.push(missing_file(path));
                            continue;
                        };
                        consumer_idents.extend(idents(&consumer.masked));
                    }
                    let covers = method_field_closure(
                        &file.masked,
                        struct_name,
                        &fields.iter().map(|(_, f)| f.clone()).collect::<Vec<_>>(),
                    );
                    for (line, field) in fields {
                        let direct = consumer_idents.contains(&field);
                        let via_method = covers.iter().any(|(method, covered)| {
                            consumer_idents.contains(method) && covered.contains(&field)
                        });
                        if !direct && !via_method {
                            out.push(Finding::new(
                                RULE,
                                struct_file,
                                line,
                                format!(
                                    "{struct_name}::{field} is never consumed by {} — \
                                     a counter the conformance suite does not compare \
                                     can drift sim-vs-live unnoticed",
                                    consumer_files.join(", ")
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

fn missing_file(path: &str) -> Finding {
    Finding::new(
        RULE,
        path,
        1,
        "file not found in lint workspace — update the parity check's paths",
    )
}

fn missing_struct(path: &str, name: &str) -> Finding {
    Finding::new(
        RULE,
        path,
        1,
        format!("struct {name} not found — update the parity check's struct names"),
    )
}

/// `(line, name)` of every named field of `struct name { … }` in a
/// masked source.
pub fn struct_fields(masked: &str, name: &str) -> Vec<(usize, String)> {
    let Some(body_range) = item_body(masked, &format!("struct {name}")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let body_start_line = masked[..body_range.0]
        .bytes()
        .filter(|&c| c == b'\n')
        .count()
        + 1;
    for (i, line) in masked[body_range.0..body_range.1].lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') || trimmed.is_empty() {
            continue;
        }
        let Some(colon) = non_path_colon(trimmed) else {
            continue;
        };
        let lhs = trimmed[..colon].trim();
        let field = lhs.rsplit(char::is_whitespace).next().unwrap_or(lhs);
        if !field.is_empty()
            && field.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !field.chars().next().unwrap().is_ascii_digit()
        {
            out.push((body_start_line + i, field.to_string()));
        }
    }
    out
}

/// Index of the first `:` that is not part of a `::` path separator.
fn non_path_colon(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b':' {
            if i + 1 < b.len() && b[i + 1] == b':' {
                i += 2;
                continue;
            }
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Byte range (exclusive of braces) of the `{ … }` body of the first
/// item matching `header` at an identifier boundary.
fn item_body(masked: &str, header: &str) -> Option<(usize, usize)> {
    let b = masked.as_bytes();
    let mut from = 0;
    let at = loop {
        let rel = masked[from..].find(header)?;
        let at = from + rel;
        let end = at + header.len();
        let ok_before = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let ok_after = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if ok_before && ok_after {
            break at;
        }
        from = end;
    };
    let open = at + masked[at..].find('{')?;
    let mut depth = 0usize;
    for (off, c) in masked[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, open + off));
                }
            }
            _ => {}
        }
    }
    None
}

/// Body of the first `fn name` in a masked source.
pub fn fn_body<'a>(masked: &'a str, name: &str) -> Option<&'a str> {
    item_body(masked, &format!("fn {name}")).map(|(s, e)| &masked[s..e])
}

/// Every identifier token in a masked source fragment.
pub fn idents(masked: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut cur = String::new();
    for c in masked.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if !cur.chars().next().unwrap().is_ascii_digit() {
                out.insert(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !cur.chars().next().unwrap().is_ascii_digit() {
        out.insert(cur);
    }
    out
}

/// For each inherent method of `type_name` (in `impl type_name { … }`
/// blocks), the set of struct fields its body touches — transitively:
/// `total_cost()` calling `miss_cost()` covers whatever `miss_cost`
/// covers.
fn method_field_closure(
    masked: &str,
    type_name: &str,
    fields: &[String],
) -> Vec<(String, BTreeSet<String>)> {
    // Collect method name → body idents from every `impl type_name`
    // block (trait impls like `impl Default for T` don't match the
    // header and are rightly excluded: constructing a default is not
    // consuming a counter).
    let mut bodies: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let header = format!("impl {type_name}");
    let mut from = 0;
    while let Some((start, end)) = {
        let rest = &masked[from..];
        item_body(rest, &header).map(|(s, e)| (from + s, from + e))
    } {
        let block = &masked[start..end];
        let mut pos = 0;
        while let Some(rel) = block[pos..].find("fn ") {
            let fn_at = pos + rel;
            let name_start = fn_at + 3;
            let name: String = block[name_start..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                pos = name_start;
                continue;
            }
            if let Some((bs, be)) = item_body(&block[fn_at..], &format!("fn {name}")) {
                bodies
                    .entry(name)
                    .or_default()
                    .extend(idents(&block[fn_at + bs..fn_at + be]));
                pos = fn_at + be;
            } else {
                pos = name_start;
            }
        }
        from = end;
    }

    // Fixpoint: a method covers a field if its body names it, or names
    // a method that covers it.
    let mut covers: BTreeMap<String, BTreeSet<String>> = bodies
        .iter()
        .map(|(name, ids)| {
            (
                name.clone(),
                fields
                    .iter()
                    .filter(|f| ids.contains(*f))
                    .cloned()
                    .collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        let names: Vec<String> = covers.keys().cloned().collect();
        for name in &names {
            let callees: Vec<String> = names
                .iter()
                .filter(|m| *m != name && bodies[name].contains(*m))
                .cloned()
                .collect();
            for callee in callees {
                let add: Vec<String> = covers[&callee]
                    .iter()
                    .filter(|f| !covers[name].contains(*f))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    covers.get_mut(name).unwrap().extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    covers.into_iter().collect()
}
