//! A live, sharded CUP deployment.
//!
//! The protocol core is a pure state machine; this crate demonstrates
//! that it runs unchanged outside the simulator — and at scale. The node
//! population is cut into shards by a [`ShardMap`], one shard per worker
//! thread (default: the machine's available parallelism), so a 100k-node
//! network costs a handful of OS threads instead of 100k. Placement is
//! pluggable ([`ShardMapMode`]): balanced contiguous id ranges by
//! default, or **overlay-aware** runs that co-locate CAN zone neighbors
//! and Chord successor arcs so neighbor-heavy protocol traffic stays
//! intra-shard. Each worker owns its shard's [`cup_core::CupNode`]s:
//! intra-shard messages are handled inline through a local FIFO, and
//! cross-shard messages are **batched** — accumulated into
//! per-destination buffers during dispatch and flushed as whole batches
//! into per-(sender, receiver) swap-buffer slots at loop boundaries, so
//! queue locking and the quiesce barrier's atomic in-flight counter are
//! amortized over whole batches instead of paid per envelope. The
//! overlay substrate (CAN or Chord) is a constructor parameter.
//!
//! **Two clock modes** ([`cup_core::clock::Clock`]): the default
//! constructors map the wall clock onto [`cup_des::SimTime`]
//! microseconds (real time for real deployments and throughput
//! benchmarks), while [`LiveNetwork::start_virtual`] runs on a
//! **virtual clock** — deterministic logical time that moves only when
//! the driver steps it via [`LiveNetwork::advance`] /
//! [`LiveNetwork::run_until`], always at a quiesce barrier, so all
//! workers observe byte-identical timestamps regardless of scheduling.
//! On the virtual clock every time-compared protocol behavior — the
//! `pfu_timeout` retry timer, freshness horizons, `@t=`-windowed fault
//! scripts replayed with [`LiveNetwork::run_plan_until`] — matches the
//! DES exactly; the conformance harness asserts it byte for byte.
//!
//! [`LiveNetwork::quiesce`] is the runtime's barrier: it blocks until
//! every inbox and transfer slot is drained and no worker is
//! mid-dispatch, the live equivalent of running a simulation until its
//! event queue empties. It stays exact under batching because workers
//! flush their outbound buffers before retiring consumed work and
//! before parking. Tests and benchmarks synchronize on it instead of
//! sleeping.
//!
//! The runtime keeps the overlay static (no churn) — it exists to
//! exercise the protocol under real concurrency, not to be a full
//! deployment — and exposes the same knobs as the simulation: node
//! configuration (mode, cut-off policy), replica events, and client
//! queries.
//!
//! The `cup-faults` plane plugs in through the same decide-before-
//! enqueue rule the DES uses: [`LiveNetwork::enable_faults`] arms a
//! shared [`cup_faults::FaultState`], every worker consults it before a
//! message enters any mailbox (so `quiesce` stays exact under loss), and
//! [`LiveNetwork::inject_fault`] scripts loss phases, partitions, and
//! crash/restart cycles — a crash wipes the node's protocol state while
//! its counters are folded into a retained aggregate.
//!
//! # Examples
//!
//! ```
//! use cup_des::{DetRng, KeyId, ReplicaId, SimDuration};
//! use cup_core::NodeConfig;
//! use cup_overlay::OverlayKind;
//! use cup_runtime::LiveNetwork;
//!
//! let mut rng = DetRng::seed_from(7);
//! let net = LiveNetwork::start(OverlayKind::Can, 16, NodeConfig::cup_default(), &mut rng).unwrap();
//! net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(60));
//! net.quiesce();
//! let entries = net.query(net.nodes()[3], KeyId(1)).unwrap();
//! assert_eq!(entries.len(), 1);
//! net.shutdown();
//! ```

pub mod network;
mod shard;
pub mod shard_map;

pub use network::{LiveNetwork, PendingQuery, RuntimeError};
pub use shard_map::{ShardMap, ShardMapMode};
