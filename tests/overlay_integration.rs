//! Overlay integration: CUP over CAN and Chord, and overlay invariants
//! under sustained churn.

use cup::overlay::{can::CanOverlay, chord::ChordOverlay};
use cup::prelude::*;
use cup_testkit::{assert_cheaper, small};

fn scenario() -> Scenario {
    small(10.0, 606)
}

#[test]
fn cup_wins_on_both_substrates() {
    for kind in [OverlayKind::Can, OverlayKind::Chord] {
        let mut std_config = ExperimentConfig::standard_caching(scenario());
        std_config.overlay = kind;
        let std = run_experiment(&std_config);
        let mut cup_config = ExperimentConfig::cup(scenario());
        cup_config.overlay = kind;
        let cup = run_experiment(&cup_config);
        assert_cheaper(&format!("{kind:?}"), &cup, &std);
    }
}

#[test]
fn chord_paths_are_logarithmic_can_paths_sqrt() {
    let mut rng = DetRng::seed_from(9);
    let can = CanOverlay::build(1_024, &mut rng).unwrap();
    let chord = ChordOverlay::build(1_024).unwrap();
    let avg = |overlay: &dyn Overlay| {
        let mut total = 0usize;
        let mut count = 0usize;
        for k in 0..40 {
            for start in [NodeId(1), NodeId(500), NodeId(900)] {
                total += overlay.distance(start, KeyId(k)).unwrap();
                count += 1;
            }
        }
        total as f64 / count as f64
    };
    let can_avg = avg(&can);
    let chord_avg = avg(&chord);
    // Chord routes in O(log n) ≈ 5–10 hops; a 2-D CAN needs O(√n) ≈ 16+.
    assert!(chord_avg < 10.0, "chord average {chord_avg}");
    assert!(can_avg > 10.0, "CAN average {can_avg}");
}

#[test]
fn can_survives_heavy_churn_with_valid_routing() {
    let mut rng = DetRng::seed_from(21);
    let mut can = CanOverlay::build(64, &mut rng).unwrap();
    for round in 0..50 {
        if round % 3 == 0 {
            can.join(&mut rng).unwrap();
        } else {
            let nodes = can.nodes();
            let victim = nodes[rng.choose_index(nodes.len())];
            if can.len() > 2 {
                can.leave(victim).unwrap();
            }
        }
        // Every key remains routable from every live node.
        for k in 0..5 {
            let key = KeyId(k);
            let auth = can.authority(key);
            for &start in can.nodes().iter().take(5) {
                let path = can.route(start, key).unwrap();
                assert_eq!(*path.last().unwrap(), auth);
            }
        }
    }
}

#[test]
fn chord_survives_heavy_churn_with_valid_routing() {
    let mut chord = ChordOverlay::build(64).unwrap();
    let mut rng = DetRng::seed_from(22);
    for round in 0..50 {
        if round % 3 == 0 {
            chord.join();
        } else if chord.len() > 2 {
            let nodes = chord.nodes();
            let victim = nodes[rng.choose_index(nodes.len())];
            chord.leave(victim).unwrap();
        }
        for k in 0..5 {
            let key = KeyId(k);
            let auth = chord.authority(key);
            let start = *chord.nodes().first().unwrap();
            let path = chord.route(start, key).unwrap();
            assert_eq!(*path.last().unwrap(), auth);
        }
    }
}

#[test]
fn reverse_query_paths_are_symmetric_edges() {
    // Updates flow down the reverse query path; every hop of a query path
    // must therefore be a bidirectional neighbor edge.
    let mut rng = DetRng::seed_from(17);
    let can = CanOverlay::build(256, &mut rng).unwrap();
    for k in 0..20 {
        let path = can.route(NodeId(3), KeyId(k)).unwrap();
        for w in path.windows(2) {
            assert!(can.neighbors(w[0]).contains(&w[1]));
            assert!(can.neighbors(w[1]).contains(&w[0]));
        }
    }
}

#[test]
fn authority_is_consistent_from_any_start() {
    let mut rng = DetRng::seed_from(23);
    let can = CanOverlay::build(128, &mut rng).unwrap();
    for k in 0..20 {
        let key = KeyId(k);
        let auth = can.authority(key);
        for start in [NodeId(0), NodeId(50), NodeId(100)] {
            assert_eq!(*can.route(start, key).unwrap().last().unwrap(), auth);
        }
    }
}
