//! Poisson arrival processes.
//!
//! "Query arrivals were generated according to a Poisson process" (§3.2):
//! inter-arrival times are exponential with rate λ.

use cup_des::{DetRng, SimDuration, SimTime};

/// A Poisson process generating successive arrival instants.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_per_sec: f64,
    next_at: SimTime,
}

impl PoissonProcess {
    /// Creates a process with `rate_per_sec` expected arrivals per second,
    /// starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_sec: f64, start: SimTime) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive and finite, got {rate_per_sec}"
        );
        PoissonProcess {
            rate_per_sec,
            next_at: start,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Returns the next arrival instant and advances the process. The
    /// first arrival is one exponential gap after the start instant.
    pub fn next_arrival(&mut self, rng: &mut DetRng) -> SimTime {
        let gap = rng.next_exp(self.rate_per_sec);
        self.next_at += SimDuration::from_secs_f64(gap);
        self.next_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone() {
        let mut p = PoissonProcess::new(10.0, SimTime::ZERO);
        let mut rng = DetRng::seed_from(1);
        let mut prev = SimTime::ZERO;
        for _ in 0..1_000 {
            let t = p.next_arrival(&mut rng);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = PoissonProcess::new(50.0, SimTime::ZERO);
        let mut rng = DetRng::seed_from(2);
        let n = 100_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = p.next_arrival(&mut rng);
        }
        let observed_rate = n as f64 / last.as_secs_f64();
        assert!(
            (observed_rate - 50.0).abs() < 1.0,
            "observed rate {observed_rate} should be ~50"
        );
    }

    #[test]
    fn offset_start_is_respected() {
        let start = SimTime::from_secs(100);
        let mut p = PoissonProcess::new(1.0, start);
        let mut rng = DetRng::seed_from(3);
        assert!(p.next_arrival(&mut rng) > start);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0, SimTime::ZERO);
    }
}
