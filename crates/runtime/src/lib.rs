//! A live, threaded CUP deployment.
//!
//! The protocol core is a pure state machine; this crate demonstrates that
//! it runs unchanged outside the simulator. Every overlay node becomes an
//! OS thread owning its [`cup_core::CupNode`]; the paper's per-neighbor
//! query and update channels are std mpsc channels; the clock is the
//! wall clock mapped onto [`cup_des::SimTime`] microseconds.
//!
//! The runtime keeps the overlay static (no churn) — it exists to exercise
//! the protocol under real concurrency, not to be a full deployment — and
//! exposes the same knobs as the simulation: node configuration (mode,
//! cut-off policy), replica events, and client queries.
//!
//! # Examples
//!
//! ```
//! use cup_des::{DetRng, KeyId, ReplicaId, SimDuration};
//! use cup_core::NodeConfig;
//! use cup_runtime::LiveNetwork;
//!
//! let mut rng = DetRng::seed_from(7);
//! let net = LiveNetwork::start(16, NodeConfig::cup_default(), &mut rng).unwrap();
//! net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(60));
//! let entries = net.query(net.nodes()[3], KeyId(1)).unwrap();
//! assert_eq!(entries.len(), 1);
//! net.shutdown();
//! ```

pub mod network;

pub use network::{LiveNetwork, RuntimeError};
