//! `cup-lint`: the workspace determinism & conformance-drift lint pass.
//!
//! Every claim this repository makes rests on one invariant: the DES
//! and the M-worker live runtime are *byte-identical*. This crate is
//! the static-analysis backstop for that invariant — a small Rust
//! [`lexer`] (comments, strings, raw strings and char literals are
//! blanked, so rules match *code*, not prose) under a rule [`engine`]
//! with per-crate scopes, inline
//! `// cup-lint: allow(<rule>, "<reason>")` pragmas, and a
//! machine-readable `LINT.json` report.
//!
//! Shipped rules:
//!
//! | rule | scope | hazard |
//! |------|-------|--------|
//! | `wall-clock` | cup-core, cup-runtime | wall-time reads outside `clock.rs` |
//! | `unordered-iteration` | cup-core, cup-simnet, cup-runtime | `HashMap`/`HashSet` iteration order leaking into state or metrics |
//! | `relaxed-atomic` | cup-runtime | `Ordering::Relaxed` on non-monotone-counter atomics at the quiesce barrier |
//! | `panic-path` | cup-runtime | `unwrap`/`expect` on the live worker dispatch path |
//! | `conformance-parity` | counter structs + assertion sites | counters declared but never merged/asserted |
//!
//! The pass runs twice: in-process as the tier-1 `tests/lint.rs` gate,
//! and as `cargo run -p cup-lint` in CI (which uploads `LINT.json`).

pub mod engine;
pub mod lexer;
pub mod parity;
pub mod rules;

use std::path::{Path, PathBuf};

use engine::{Report, Rule, Workspace};
use parity::ConformanceParity;
use rules::{PanicPath, RelaxedAtomic, UnorderedIteration, WallClock};

/// Source trees a full workspace run loads. Wider than any single
/// rule's scope: the parity rule reads the conformance harness and the
/// repo-level assertion suite too.
pub const WORKSPACE_TREES: &[&str] = &[
    "crates/core/src",
    "crates/simnet/src",
    "crates/runtime/src",
    "crates/testkit/src",
    "tests",
];

/// Repository root, resolved from this crate's manifest directory
/// (`crates/lint` → two levels up), so the binary and the in-process
/// test gates work from any CWD.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs the full rule set over a prepared workspace.
pub fn run_all(ws: &Workspace) -> Report {
    let wall = WallClock;
    let iter = UnorderedIteration;
    let atomics = RelaxedAtomic;
    let panics = PanicPath;
    let parity = ConformanceParity::workspace();
    let rules: [&dyn Rule; 5] = [&wall, &iter, &atomics, &panics, &parity];
    engine::run(ws, &rules)
}

/// Loads the real workspace and runs the full rule set — the one entry
/// point shared by the CLI, the tier-1 gate, and CI.
pub fn run_workspace() -> Report {
    let root = workspace_root();
    let ws = Workspace::load(&root, WORKSPACE_TREES);
    run_all(&ws)
}

#[cfg(test)]
mod tests;
