//! Differential tests pinning the calendar queue against the retired
//! heap scheduler.
//!
//! [`ReferenceHeapQueue`] is the oracle: its `(time, sequence)` pop order
//! defined the simulations' determinism contract before the calendar
//! queue landed, and every golden snapshot was generated under it. These
//! tests drive both queues with the same schedule/pop stream — including
//! interleavings, heavy timestamp collisions, and far-future outliers
//! that cross calendar resize and direct-scan paths — and require
//! identical observable behavior at every step.

use proptest::prelude::*;

use cup_des::{DetRng, EventQueue, ReferenceHeapQueue, SimDuration, SimTime};

/// Drains both queues fully, asserting every peek and pop agrees. The
/// engine's actual draining primitive, `pop_before`, is exercised too:
/// each event is first refused at its own firing time (the deadline is
/// exclusive) and then released one microsecond later.
fn assert_drain_identical(
    cal: &mut EventQueue<u64>,
    heap: &mut ReferenceHeapQueue<u64>,
) -> Result<(), TestCaseError> {
    loop {
        prop_assert_eq!(cal.peek_time(), heap.peek_time());
        prop_assert_eq!(cal.len(), heap.len());
        let Some(head) = cal.peek_time() else {
            prop_assert_eq!(heap.pop(), None);
            return Ok(());
        };
        prop_assert_eq!(cal.pop_before(head), None);
        prop_assert_eq!(heap.pop_before(head), None);
        let release = head + SimDuration::from_micros(1);
        match (cal.pop_before(release), heap.pop_before(release)) {
            (None, None) => return Ok(()),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}

proptest! {
    /// Identical pop order for a batch-scheduled stream with arbitrary
    /// times (collisions included: times are drawn from a small range).
    #[test]
    fn batch_schedule_pops_identically(times in proptest::collection::vec(0u64..5_000, 1..400)) {
        let mut cal = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_micros(t);
            cal.schedule(at, i as u64);
            heap.schedule(at, i as u64);
        }
        assert_drain_identical(&mut cal, &mut heap)?;
    }

    /// Identical behavior under interleaved schedule/pop, the engine's
    /// actual access pattern: handlers pop one event and schedule
    /// follow-ups at or after the current time.
    #[test]
    fn interleaved_stream_pops_identically(seed in any::<u64>(), ops in 10usize..300) {
        let mut rng = DetRng::seed_from(seed);
        let mut cal = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        let mut now = SimTime::ZERO;
        let mut next_payload = 0u64;
        for _ in 0..ops {
            // Mostly schedules, some pops, like a fanning-out simulation.
            if rng.next_below(4) == 0 {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if let Some((at, _)) = a {
                    now = at;
                }
            } else {
                // Spread offsets over several orders of magnitude so the
                // calendar queue crosses bucket-day and resize boundaries.
                let magnitude = 10u64.pow(rng.next_below(7) as u32);
                let at = now + SimDuration::from_micros(rng.next_below(magnitude.max(1)));
                cal.schedule(at, next_payload);
                heap.schedule(at, next_payload);
                next_payload += 1;
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        assert_drain_identical(&mut cal, &mut heap)?;
    }

    /// All-simultaneous events: the degenerate case where ordering is
    /// carried entirely by the FIFO sequence numbers.
    #[test]
    fn simultaneous_burst_stays_fifo(at_us in 0u64..1 << 40, n in 1usize..300) {
        let at = SimTime::from_micros(at_us);
        let mut cal = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        for i in 0..n as u64 {
            cal.schedule(at, i);
            heap.schedule(at, i);
        }
        assert_drain_identical(&mut cal, &mut heap)?;
    }

    /// Far-future outliers (beyond a whole calendar lap) mixed with a
    /// dense near-term cluster exercise the direct-scan fallback without
    /// perturbing the order.
    #[test]
    fn far_future_outliers_keep_order(seed in any::<u64>()) {
        let mut rng = DetRng::seed_from(seed);
        let mut cal = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        for i in 0..200u64 {
            let at = if rng.next_below(10) == 0 {
                // Hours to months of simulated time away.
                SimTime::from_secs(3_600 + rng.next_below(10_000_000))
            } else {
                SimTime::from_micros(rng.next_below(50_000))
            };
            cal.schedule(at, i);
            heap.schedule(at, i);
        }
        assert_drain_identical(&mut cal, &mut heap)?;
    }
}
