//! Emits `BENCH_des.json`: the DES throughput sweep over the
//! `large_scale` scenario family.
//!
//! Usage:
//!
//! ```text
//! bench_des [--sizes 10000,100000] [--queries 10000] [--seed 42]
//!           [--out BENCH_des.json] [--budget-secs N]
//! ```
//!
//! With `--budget-secs`, the process exits non-zero if any single run
//! exceeds the wall-clock budget — the CI smoke job's pass/fail line.

use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::des_bench::{render_json, run_point};

fn main() {
    let mut sizes: Vec<usize> = vec![10_000, 100_000];
    let mut queries: u64 = 10_000;
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_des.json");
    let mut budget_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sizes" => {
                sizes = value_of(&mut it, "--sizes")
                    .split(',')
                    .map(|s| parse_or_exit(s, "--sizes"))
                    .collect();
            }
            "--queries" => queries = parse_or_exit(&value_of(&mut it, "--queries"), "--queries"),
            "--seed" => seed = parse_or_exit(&value_of(&mut it, "--seed"), "--seed"),
            "--out" => out_path = value_of(&mut it, "--out"),
            "--budget-secs" => {
                budget_secs = Some(parse_or_exit(
                    &value_of(&mut it, "--budget-secs"),
                    "--budget-secs",
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_des [--sizes N,N,..] [--queries N] [--seed N] \
                     [--out PATH] [--budget-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::with_capacity(sizes.len());
    let mut over_budget = false;
    for &nodes in &sizes {
        let p = run_point(nodes, queries, seed);
        println!(
            "{:>8} nodes  {:>10} events  {:>9.2} s wall  {:>12.0} events/s  total cost {}",
            p.nodes,
            p.events,
            p.wall.as_secs_f64(),
            p.events_per_sec(),
            p.total_cost,
        );
        if let Some(budget) = budget_secs {
            if p.wall.as_secs() >= budget {
                eprintln!(
                    "BUDGET EXCEEDED: {} nodes took {:.2} s (budget {budget} s)",
                    p.nodes,
                    p.wall.as_secs_f64()
                );
                over_budget = true;
            }
        }
        points.push(p);
    }
    let json = render_json(&points, queries, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
    if over_budget {
        std::process::exit(1);
    }
}
