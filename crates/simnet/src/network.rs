//! The simulated network: nodes wired over an overlay inside the DES.
//!
//! Storage is sized for 100k-node experiments: per-node state lives in a
//! dense [`NodeArena`] indexed by [`NodeId`], the key → authority map is
//! a flat vector indexed by [`KeyId`] (keys are dense workload ids), and
//! protocol actions are drained through one reusable scratch buffer — the
//! dispatch hot path performs no per-event allocation of its own.

use std::collections::{BTreeMap, HashMap};

use cup_core::obs::{TraceBuf, TraceEvent, TraceKind};
use cup_core::{
    Action, ClientId, CupNode, Message, NodeConfig, ReplicaEvent, Requester, UpdateKind,
};
use cup_des::{DetRng, EventQueue, KeyId, LatencyModel, NodeId, ReplicaId, SimDuration, SimTime};
use cup_faults::{DropVerdict, FaultAction, FaultState};
use cup_overlay::{AnyOverlay, Overlay};
use cup_workload::{
    churn::ChurnEvent,
    replica::{ReplicaAction, ReplicaActionKind, ReplicaPlan},
    QueryGen,
};

use cup_core::justify::JustificationTracker;

use crate::arena::NodeArena;
use crate::event::Ev;
use crate::metrics::NetMetrics;

/// How often capacity-limited nodes service their outgoing queues.
pub const SERVICE_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// The complete state of one simulated CUP network.
#[derive(Debug)]
pub struct Network {
    /// The structured overlay carrying the messages.
    pub overlay: AnyOverlay,
    /// Dense per-node storage (protocol state + hot capacity array).
    nodes: NodeArena,
    latency: LatencyModel,
    rng: DetRng,
    /// Key → authority, dense by key id (`None` = not resolved since the
    /// last topology change).
    authority_cache: Vec<Option<NodeId>>,
    alive_list: Vec<NodeId>,
    /// Hop accounting.
    pub metrics: NetMetrics,
    /// Justified-update tracking (optional: costs CPU at high rates).
    pub justify: Option<JustificationTracker>,
    /// The fault plane (optional: loss-free and crash-free without it).
    /// Drops are decided here *before* an event is scheduled, mirroring
    /// the live runtime's decide-before-enqueue rule.
    pub faults: Option<FaultState>,
    /// Ground truth for staleness: globally deleted replicas and when
    /// they died (tracked only while a fault plan is active).
    dead_replicas: HashMap<(KeyId, ReplicaId), SimTime>,
    /// When each outstanding client query was posted (keyed by the raw
    /// client id), the start time of the `query_latency` histogram's
    /// samples. `BTreeMap` keeps iteration deterministic.
    query_posted: BTreeMap<u64, SimTime>,
    /// Structured event trace (off by default — see [`Network::enable_trace`]).
    pub trace: Option<TraceBuf>,
    /// The query workload (drained lazily via [`Ev::NextQuery`]).
    pub query_gen: Option<QueryGen>,
    /// Replica lifecycle plan.
    pub replica_plan: Option<ReplicaPlan>,
    next_client: u64,
    /// Configuration template for nodes joining after the build.
    node_config: NodeConfig,
    /// Reusable action buffer: handlers push into it, `apply_actions`
    /// drains it, so steady-state dispatch allocates nothing.
    scratch: Vec<Action>,
}

impl Network {
    /// Builds a network of `node_count` nodes over `overlay`, all using
    /// `node_config`.
    pub fn new(
        overlay: AnyOverlay,
        node_config: NodeConfig,
        latency: LatencyModel,
        rng: DetRng,
    ) -> Self {
        let ids = overlay.nodes();
        let nodes = NodeArena::build(&ids, node_config);
        Network {
            overlay,
            nodes,
            latency,
            rng,
            authority_cache: Vec::new(),
            alive_list: ids,
            metrics: NetMetrics::default(),
            justify: None,
            faults: None,
            dead_replicas: HashMap::new(),
            query_posted: BTreeMap::new(),
            trace: None,
            query_gen: None,
            replica_plan: None,
            next_client: 0,
            node_config,
            scratch: Vec::new(),
        }
    }

    /// Turns on structured event tracing with a ring buffer of `cap`
    /// events. Tracing is off by default and costs nothing when off (one
    /// `Option` check per emission site).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(TraceBuf::new(cap));
    }

    /// Detaches the trace buffer (tracing turns back off).
    pub fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take()
    }

    #[inline]
    fn trace_event(&mut self, t: SimTime, node: NodeId, kind: TraceKind, key: KeyId, detail: u64) {
        if let Some(buf) = self.trace.as_mut() {
            buf.record(TraceEvent {
                t,
                node,
                kind,
                key,
                detail,
            });
        }
    }

    /// The authority node for `key` (cached; invalidated on churn).
    pub fn authority_of(&mut self, key: KeyId) -> NodeId {
        let idx = key.index();
        if idx >= self.authority_cache.len() {
            self.authority_cache.resize(idx + 1, None);
        }
        if let Some(a) = self.authority_cache[idx] {
            return a;
        }
        let a = self.overlay.authority(key);
        self.authority_cache[idx] = Some(a);
        a
    }

    /// The next hop from `node` toward the authority of `key`, or `None`
    /// if `node` is the authority.
    fn upstream_of(&mut self, node: NodeId, key: KeyId) -> Option<NodeId> {
        if self.authority_of(key) == node {
            return None;
        }
        self.overlay
            .next_hop(node, key)
            .expect("routing from a live node must succeed")
    }

    /// Access a node (panics if it departed — callers check liveness).
    fn node_mut(&mut self, id: NodeId) -> &mut CupNode {
        self.nodes.get_mut(id)
    }

    /// Read-only access to one node's state, if alive.
    pub fn node(&self, id: NodeId) -> Option<&CupNode> {
        self.nodes.get(id)
    }

    /// Aggregates the protocol counters of all nodes, including counters
    /// retained from nodes that have since departed.
    pub fn aggregate_stats(&self) -> cup_core::stats::NodeStats {
        self.nodes.aggregate_stats()
    }

    /// Counters retained from departed or crash-wiped nodes only (the
    /// conformance harness mirrors them against the live runtime's
    /// crash-retained aggregate).
    pub fn retained_stats(&self) -> cup_core::stats::NodeStats {
        *self.nodes.departed_stats()
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.alive_list.len()
    }

    /// Handles one simulation event; the entry point the engine drives.
    pub fn dispatch(&mut self, queue: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::NextQuery => self.on_next_query(queue, now),
            Ev::PostQuery { node_index, key } => self.on_post_query(queue, now, node_index, key),
            Ev::Deliver { from, to, msg } => self.on_deliver(queue, now, from, to, msg),
            Ev::Replica(action) => self.on_replica(queue, now, action),
            Ev::ServiceCapacity { node } => self.on_service(queue, now, node),
            Ev::SetCapacity { nodes, capacity } => {
                self.on_set_capacity(queue, now, &nodes, capacity)
            }
            Ev::Churn(ev) => self.on_churn(queue, now, ev),
            Ev::Fault(ev) => self.on_fault(now, ev.action),
        }
    }

    /// Applies one scripted fault action. A crash additionally wipes the
    /// node's protocol state (cold cache, empty directory) while its
    /// counters are retained, matching the live runtime's crash reset.
    fn on_fault(&mut self, _now: SimTime, action: FaultAction) {
        let state = self.faults.get_or_insert_with(|| FaultState::new(0));
        let changed = state.apply(action);
        if let FaultAction::Crash { node } = action {
            let id = NodeId(node as u32);
            if changed && self.nodes.is_alive(id) {
                self.nodes.reset(id, self.node_config);
            }
        }
    }

    /// Pulls the next query arrival from the generator and schedules it.
    fn on_next_query(&mut self, queue: &mut EventQueue<Ev>, now: SimTime) {
        let Some(gen) = self.query_gen.as_mut() else {
            return;
        };
        if let Some(arrival) = gen.next_query() {
            // Bursty workloads can interleave: the Poisson clock may lag
            // the tail of a burst that spread past it, so clamp to `now`.
            let at = arrival.at.max(now);
            queue.schedule(
                at,
                Ev::PostQuery {
                    node_index: arrival.node_index,
                    key: arrival.key,
                },
            );
            queue.schedule(at, Ev::NextQuery);
        }
    }

    /// A client posts a query at a (live) node.
    fn on_post_query(
        &mut self,
        queue: &mut EventQueue<Ev>,
        now: SimTime,
        node_index: usize,
        key: KeyId,
    ) {
        if self.alive_list.is_empty() {
            return;
        }
        let node = self.alive_list[node_index % self.alive_list.len()];
        // A crashed node accepts no connections: the query is swallowed
        // (the live runtime answers such clients empty for the same
        // bookkeeping, without touching any node state).
        if let Some(f) = self.faults.as_mut() {
            if f.is_crashed(node) {
                f.note_query_at_crashed();
                return;
            }
        }
        let client = ClientId(self.next_client);
        self.next_client += 1;
        self.query_posted.insert(client.0, now);
        self.trace_event(now, node, TraceKind::ClientQuery, key, client.0);
        // Justification bookkeeping: this query covers every node on its
        // virtual path to the authority (§3.1 — V(N, K) membership).
        if self.justify.is_some() {
            let path = self
                .overlay
                .route(node, key)
                .expect("routing must succeed on a live overlay");
            if let Some(j) = self.justify.as_mut() {
                j.on_query(key, now, &path);
            }
        }
        let upstream = self.upstream_of(node, key);
        let mut actions = std::mem::take(&mut self.scratch);
        self.node_mut(node).handle_query_into(
            now,
            key,
            Requester::Client(client),
            upstream,
            &mut actions,
        );
        self.apply_actions(queue, now, node, &mut actions);
        self.scratch = actions;
    }

    /// Delivers one message after its hop of latency.
    fn on_deliver(
        &mut self,
        queue: &mut EventQueue<Ev>,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Message,
    ) {
        if !self.overlay.is_alive(to) || !self.nodes.is_alive(to) {
            self.metrics.dropped_messages += 1;
            return;
        }
        // Charge this hop to the §3.3 cost model.
        match &msg {
            Message::Query { .. } => self.metrics.query_hops += 1,
            Message::Update(u) => match u.kind {
                UpdateKind::FirstTime => self.metrics.first_time_hops += 1,
                UpdateKind::Refresh => self.metrics.refresh_hops += 1,
                UpdateKind::Delete => self.metrics.delete_hops += 1,
                UpdateKind::Append => self.metrics.append_hops += 1,
            },
            Message::ClearBit { .. } => self.metrics.clear_bit_hops += 1,
            Message::AuditProbe { .. } | Message::AuditReply { .. } => self.metrics.audit_hops += 1,
        }
        // A message in flight when its receiver crashed: the send-time
        // verdict predates the crash, so the transmission happened (the
        // hop above is charged, exactly as the live runtime charges it
        // at send) but a crashed node processes nothing. Scripted runs
        // that quiesce before a crash never hit this; it guards
        // overlapping traffic.
        if let Some(f) = self.faults.as_mut() {
            if f.is_crashed(to) {
                f.counters.dropped_to_crashed += 1;
                return;
            }
            // Byzantine receivers: a stale-serve node swallows inbound
            // deletions and audit repairs after the hop is paid.
            if !f.behavior_recv(to, &msg) {
                return;
            }
        }
        // Trace only messages that will actually be handled — the same
        // gate the live worker applies, so the two multisets match.
        if self.trace.is_some() {
            let (kind, key) = match &msg {
                Message::Query { key } => (TraceKind::Query, *key),
                Message::Update(u) => (
                    match u.kind {
                        UpdateKind::FirstTime => TraceKind::UpdateFirstTime,
                        UpdateKind::Refresh => TraceKind::UpdateRefresh,
                        UpdateKind::Delete => TraceKind::UpdateDelete,
                        UpdateKind::Append => TraceKind::UpdateAppend,
                    },
                    u.key,
                ),
                Message::ClearBit { key } => (TraceKind::ClearBit, *key),
                Message::AuditProbe { key, .. } => (TraceKind::AuditProbe, *key),
                Message::AuditReply { key, .. } => (TraceKind::AuditReply, *key),
            };
            self.trace_event(now, to, kind, key, from.0 as u64);
        }
        let mut actions = std::mem::take(&mut self.scratch);
        match msg {
            Message::Query { key } => {
                let upstream = self.upstream_of(to, key);
                self.node_mut(to).handle_query_into(
                    now,
                    key,
                    Requester::Neighbor(from),
                    upstream,
                    &mut actions,
                );
            }
            Message::Update(u) => {
                if u.kind != UpdateKind::FirstTime {
                    if let Some(j) = self.justify.as_mut() {
                        j.on_update_delivered(to, u.key, now, u.window_end);
                    }
                }
                self.node_mut(to)
                    .handle_update_into(now, from, u, &mut actions);
            }
            Message::ClearBit { key } => {
                let upstream = self.upstream_of(to, key);
                self.node_mut(to)
                    .handle_clear_bit_into(now, key, from, upstream, &mut actions);
            }
            Message::AuditProbe { key, round } => {
                self.node_mut(to)
                    .handle_audit_probe_into(now, key, round, from, &mut actions);
            }
            Message::AuditReply {
                key,
                round,
                entries,
                retired,
            } => {
                self.node_mut(to)
                    .handle_audit_reply(now, key, round, &entries, &retired);
            }
        }
        self.apply_actions(queue, now, to, &mut actions);
        self.scratch = actions;
    }

    /// A replica lifecycle action reaches its key's authority.
    fn on_replica(&mut self, queue: &mut EventQueue<Ev>, now: SimTime, action: ReplicaAction) {
        let Some(plan) = self.replica_plan.as_ref() else {
            return;
        };
        let lifetime = plan.lifetime;
        let event = match action.kind {
            ReplicaActionKind::Birth => ReplicaEvent::Birth {
                key: action.key,
                replica: action.replica,
                lifetime,
            },
            ReplicaActionKind::Refresh => ReplicaEvent::Refresh {
                key: action.key,
                replica: action.replica,
                lifetime,
            },
            ReplicaActionKind::Death => ReplicaEvent::Deletion {
                key: action.key,
                replica: action.replica,
            },
        };
        if let Some(next) = self
            .replica_plan
            .as_ref()
            .and_then(|p| p.next_event(&action, now))
        {
            queue.schedule(next.at, Ev::Replica(next));
        }
        // Ground truth for the staleness metric: the replica is globally
        // dead from this instant, whether or not its deletion reaches
        // (or survives at) the authority.
        if self.faults.is_some() && action.kind == ReplicaActionKind::Death {
            self.dead_replicas
                .entry((action.key, action.replica))
                .or_insert(now);
        }
        let authority = self.authority_of(action.key);
        // A crashed authority hears nothing from its replicas; the plan
        // keeps running so later events land once it restarts.
        if let Some(f) = self.faults.as_mut() {
            if f.is_crashed(authority) {
                f.note_replica_at_crashed();
                return;
            }
        }
        let kind = match action.kind {
            ReplicaActionKind::Birth => TraceKind::ReplicaBirth,
            ReplicaActionKind::Refresh => TraceKind::ReplicaRefresh,
            ReplicaActionKind::Death => TraceKind::ReplicaDeletion,
        };
        self.trace_event(now, authority, kind, action.key, action.replica.0 as u64);
        let mut actions = std::mem::take(&mut self.scratch);
        self.node_mut(authority)
            .handle_replica_event_into(now, event, &mut actions);
        self.apply_actions(queue, now, authority, &mut actions);
        self.scratch = actions;
    }

    /// Services a capacity-limited node's outgoing queues.
    fn on_service(&mut self, queue: &mut EventQueue<Ev>, now: SimTime, node: NodeId) {
        if !self.overlay.is_alive(node) {
            return;
        }
        let c = self.nodes.capacity(node);
        let mut actions = std::mem::take(&mut self.scratch);
        self.node_mut(node)
            .service_outgoing_into(now, c, &mut actions);
        self.apply_actions(queue, now, node, &mut actions);
        self.scratch = actions;
        if c < 1.0 {
            queue.schedule(now + SERVICE_INTERVAL, Ev::ServiceCapacity { node });
        } else {
            // Fully recovered: back to immediate forwarding.
            self.node_mut(node).set_capacity_limited(false);
        }
    }

    /// Applies a §3.7 capacity change to a set of nodes.
    fn on_set_capacity(
        &mut self,
        queue: &mut EventQueue<Ev>,
        now: SimTime,
        nodes: &[usize],
        capacity: f64,
    ) {
        for &idx in nodes {
            let id = NodeId(idx as u32);
            if !self.overlay.is_alive(id) {
                continue;
            }
            let was = self.nodes.set_capacity(id, capacity);
            if capacity < 1.0 && was >= 1.0 {
                self.node_mut(id).set_capacity_limited(true);
                queue.schedule(now + SERVICE_INTERVAL, Ev::ServiceCapacity { node: id });
            }
            // Recovery (capacity >= 1.0) is finalized by the next
            // ServiceCapacity event, which drains the queue in one go.
        }
    }

    /// A node joins or leaves the overlay (§2.9).
    fn on_churn(&mut self, _queue: &mut EventQueue<Ev>, now: SimTime, ev: ChurnEvent) {
        match ev {
            ChurnEvent::Join { .. } => {
                let Ok(report) = self.overlay.join(&mut self.rng) else {
                    return;
                };
                let new_id = report.joined.expect("join reports the joiner");
                self.nodes.push_joined(new_id, self.node_config);
                self.patch_interest(&report);
                // Hand over the directory slice the new node now owns.
                if let Some(split) = report.counterpart {
                    let overlay = &self.overlay;
                    let moved = self
                        .nodes
                        .get_mut(split)
                        .export_directory(|k| overlay.authority(k) == new_id);
                    self.node_mut(new_id).import_directory(moved);
                }
                self.after_topology_change();
            }
            ChurnEvent::Leave { graceful, .. } => {
                if self.alive_list.len() <= 1 {
                    return;
                }
                let victim = self.alive_list[self.rng.choose_index(self.alive_list.len())];
                let Ok(report) = self.overlay.leave(victim) else {
                    return;
                };
                let takeover = report.counterpart;
                if graceful {
                    // §2.9: a graceful departure may hand its entries to
                    // the takeover node, which merges and de-duplicates.
                    if let Some(t) = takeover {
                        let moved = self.nodes.get_mut(victim).export_directory(|_| true);
                        self.node_mut(t).import_directory(moved);
                    }
                }
                self.patch_interest(&report);
                self.nodes.remove(victim);
                self.after_topology_change();
                let _ = now;
            }
        }
    }

    /// Applies §2.9 interest patching from a churn report: every node
    /// whose neighbor set lost members drops interest bookkeeping for
    /// them (entries at dependents then simply expire, the paper's
    /// no-hand-over option).
    fn patch_interest(&mut self, report: &cup_overlay::ChurnReport) {
        for change in &report.neighbor_changes {
            if !self.nodes.is_alive(change.node) {
                continue;
            }
            let node = self.nodes.get_mut(change.node);
            for &removed in &change.removed {
                node.on_neighbor_departed(removed, None);
            }
        }
    }

    /// Refreshes caches that depend on the topology.
    fn after_topology_change(&mut self) {
        self.authority_cache.fill(None);
        self.alive_list = self.overlay.nodes();
    }

    /// Turns protocol actions (emitted by `sender`'s handlers) into
    /// network traffic and client responses, draining the buffer for
    /// reuse.
    fn apply_actions(
        &mut self,
        queue: &mut EventQueue<Ev>,
        now: SimTime,
        sender: NodeId,
        actions: &mut Vec<Action>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, mut msg } => {
                    // Fault-plane drops are decided *here*, before the
                    // delivery is scheduled — the same decide-before-
                    // enqueue rule the live runtime follows, so a
                    // dropped message never becomes in-flight work.
                    // Behavior faults run first: a suppressed (or
                    // rewritten) send never advances the per-link loss
                    // counter, in either runtime.
                    if let Some(f) = self.faults.as_mut() {
                        if !f.behavior_send(sender, &mut msg) {
                            continue;
                        }
                        if f.roll(sender, to) != DropVerdict::Deliver {
                            continue;
                        }
                    }
                    let mut delay = self.latency.sample(&mut self.rng);
                    if let Some(f) = self.faults.as_ref() {
                        let factor = f.latency_factor();
                        if factor != 1.0 {
                            delay = SimDuration::from_secs_f64(delay.as_secs_f64() * factor);
                        }
                    }
                    queue.schedule(
                        now + delay,
                        Ev::Deliver {
                            from: sender,
                            to,
                            msg,
                        },
                    );
                }
                Action::RespondClient {
                    client,
                    key,
                    ref entries,
                } => {
                    self.metrics.client_responses += 1;
                    if let Some(t0) = self.query_posted.remove(&client.0) {
                        self.metrics
                            .query_latency
                            .record(now.saturating_since(t0).as_micros());
                    }
                    self.trace_event(now, sender, TraceKind::Respond, key, entries.len() as u64);
                    // Staleness: the answer names a replica the world
                    // already deleted (the cache missed the delete —
                    // under loss, the delete may never arrive).
                    if !self.dead_replicas.is_empty() {
                        let stale_since = entries
                            .iter()
                            .filter_map(|e| self.dead_replicas.get(&(e.key, e.replica)))
                            .min();
                        if let Some(&died) = stale_since {
                            let age = now.saturating_since(died).as_micros();
                            self.metrics.stale_answers += 1;
                            self.metrics.stale_age_micros += age;
                            self.metrics.stale_age_hist.record(age);
                        }
                    }
                }
            }
        }
    }
}
