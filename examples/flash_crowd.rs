//! Flash crowds: suddenly-hot keys, the paper's favorable conditions.
//!
//! "Queries for keys that become suddenly hot not only justify the
//! propagation overhead, but also enjoy a significant reduction in
//! latency" (§3.2). This example replays the same bursty workload — each
//! Poisson arrival is a crowd of queries for one key posted from many
//! nodes within two seconds — under standard caching and under CUP, and
//! shows how CUP's query-channel coalescing plus update propagation tame
//! the burst.
//!
//! Run with: `cargo run --release --example flash_crowd`

use cup::prelude::*;

fn main() {
    for &(burst, rate) in &[(50u32, 100.0f64), (100, 1_000.0)] {
        let scenario = Scenario {
            nodes: 1_024,
            keys: 100,
            query_rate: rate,
            burst_size: burst,
            burst_spread: SimDuration::from_secs(2),
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(3_300),
            sim_end: SimTime::from_secs(22_000),
            seed: 99,
            ..Scenario::default()
        };
        let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
        let cup = run_experiment(&ExperimentConfig::cup(scenario));
        println!("flash crowds of {burst} queries, {rate} q/s over 1024 nodes and 100 keys:");
        println!(
            "  standard caching: total {:>9} hops, {:>7} misses, {:>5.1} hops/miss",
            std.total_cost(),
            std.misses(),
            std.miss_latency()
        );
        println!(
            "  CUP:              total {:>9} hops, {:>7} misses, {:>5.1} hops/miss  ({:.2}x total, {:.2}x miss cost, {} queries coalesced)",
            cup.total_cost(),
            cup.misses(),
            cup.miss_latency(),
            cup.total_cost() as f64 / std.total_cost() as f64,
            cup.miss_cost() as f64 / std.miss_cost() as f64,
            cup.nodes.coalesced_queries
        );
        println!();
    }
}
