//! Light-weight statistics collectors.
//!
//! The experiment harness aggregates hop counts and latencies across
//! millions of events; these collectors are allocation-free on the hot path.

use core::fmt;

/// A running mean/min/max accumulator over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        ((self.sum_sq - self.sum * self.sum / n) / n).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A fixed-bucket histogram over non-negative integer samples (hop counts).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering samples `0..buckets`; anything larger is
    /// counted in the overflow bucket.
    pub fn new(buckets: usize) -> Self {
        Histogram {
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        self.total += 1;
        match self.buckets.get_mut(value) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Count of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `v` such that at least `q` (in `[0,1]`) of samples
    /// are `<= v`. Overflowed samples count as the last bucket index + 1.
    pub fn quantile(&self, q: f64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return i;
            }
        }
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_combined() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for x in 0..10 {
            let v = x as f64;
            if x % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10);
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.1), 0);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
    }

    #[test]
    fn summary_display_readable() {
        let mut s = Summary::new();
        s.record(2.0);
        let text = s.to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("mean=2.000"));
    }
}
