//! Adaptive control of update push (§2.8).
//!
//! A node's capacity for pushing updates varies with its workload. Under
//! limited capacity, outgoing updates wait in per-neighbor queues; at each
//! service opportunity the node divides its push budget among the
//! channels proportionally to their queue lengths ("this allocation
//! maintains the queues roughly equally sized"), re-orders queued updates
//! by impact (first-time, deletes, refreshes, appends; earlier expiry
//! first within a class), and eliminates expired updates. The queues are
//! therefore "bounded by the expiration times of the entries in the
//! queues": even a completely shut-off channel drains as entries expire.

use std::collections::BTreeMap;

use cup_des::{NodeId, SimTime};

use crate::message::Update;

/// Per-neighbor outgoing update queues with capacity-controlled service.
#[derive(Debug, Clone, Default)]
pub struct OutgoingQueues {
    queues: BTreeMap<NodeId, Vec<Update>>,
    /// Updates enqueued since the last service (basis for the budget).
    enqueued_since_service: u64,
    /// Fractional budget carried between services.
    carry: f64,
}

impl OutgoingQueues {
    /// Creates empty queues.
    pub fn new() -> Self {
        OutgoingQueues::default()
    }

    /// Queues an update for one neighbor.
    pub fn enqueue(&mut self, to: NodeId, update: Update) {
        self.queues.entry(to).or_default().push(update);
        self.enqueued_since_service += 1;
    }

    /// Total queued updates across all channels.
    pub fn total_len(&self) -> usize {
        self.queues.values().map(Vec::len).sum()
    }

    /// Queue length for one neighbor.
    pub fn len_for(&self, to: NodeId) -> usize {
        self.queues.get(&to).map_or(0, Vec::len)
    }

    /// Removes expired updates from all queues, returning how many were
    /// dropped.
    pub fn drop_expired(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        for q in self.queues.values_mut() {
            let before = q.len();
            q.retain(|u| !u.is_expired(now));
            dropped += before - q.len();
        }
        self.queues.retain(|_, q| !q.is_empty());
        dropped
    }

    /// Removes every update queued toward `neighbor` (it departed).
    pub fn drop_neighbor(&mut self, neighbor: NodeId) -> usize {
        self.queues.remove(&neighbor).map_or(0, |q| q.len())
    }

    /// Removes updates for one key queued toward one neighbor (a
    /// clear-bit arrived while updates were still waiting).
    pub fn drop_matching(&mut self, neighbor: NodeId, key: cup_des::KeyId) -> usize {
        let Some(q) = self.queues.get_mut(&neighbor) else {
            return 0;
        };
        let before = q.len();
        q.retain(|u| u.key != key);
        let dropped = before - q.len();
        if q.is_empty() {
            self.queues.remove(&neighbor);
        }
        dropped
    }

    /// Services the queues with capacity fraction `c` (in `[0, 1]`): the
    /// node pushes out roughly `c` times the updates it enqueued since the
    /// last service, plus any fractional carry-over. Expired updates are
    /// eliminated first; the budget is split across channels
    /// proportionally to queue length; each channel sends its
    /// highest-impact updates first.
    ///
    /// Returns the `(neighbor, update)` pairs to transmit now.
    pub fn service(&mut self, now: SimTime, c: f64) -> Vec<(NodeId, Update)> {
        self.drop_expired(now);
        let arrived = std::mem::take(&mut self.enqueued_since_service);
        if c >= 1.0 {
            // Full capacity: no limit — drain everything, including any
            // backlog accumulated while the node was degraded.
            self.carry = 0.0;
            let mut out = Vec::with_capacity(self.total_len());
            for (to, mut q) in std::mem::take(&mut self.queues) {
                q.sort_by_key(|u| (u.kind.priority(), u.window_end));
                out.extend(q.into_iter().map(|u| (to, u)));
            }
            return out;
        }
        let entitled = c.clamp(0.0, 1.0) * arrived as f64 + self.carry;
        let mut budget = entitled.floor() as usize;
        self.carry = entitled - entitled.floor();
        let total = self.total_len();
        if budget == 0 || total == 0 {
            // Cap the carry so a long-idle node cannot burst unboundedly.
            self.carry = self.carry.min(1.0);
            return Vec::new();
        }
        budget = budget.min(total);

        // Re-order every channel by impact: kind priority, then earliest
        // justification-window end (closest to expiring first).
        for q in self.queues.values_mut() {
            q.sort_by_key(|u| (u.kind.priority(), u.window_end));
        }

        // Proportional allocation, remainders to the longest queues — this
        // drains channels toward equal length as §2.8 prescribes.
        let mut out = Vec::with_capacity(budget);
        let mut shares: Vec<(NodeId, usize, usize)> = self
            .queues
            .iter()
            .map(|(&to, q)| {
                let share = budget * q.len() / total;
                (to, share.min(q.len()), q.len())
            })
            .collect();
        let mut allocated: usize = shares.iter().map(|&(_, s, _)| s).sum();
        // Distribute the remainder one update at a time to the channel
        // with the most still-queued updates.
        while allocated < budget {
            let Some(best) = shares
                .iter_mut()
                .filter(|(_, share, len)| share < len)
                .max_by_key(|&&mut (to, share, len)| (len - share, std::cmp::Reverse(to)))
            else {
                break;
            };
            best.1 += 1;
            allocated += 1;
        }
        for (to, share, _) in shares {
            if share == 0 {
                continue;
            }
            let q = self.queues.get_mut(&to).expect("share implies queue");
            for u in q.drain(..share) {
                out.push((to, u));
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::IndexEntry;
    use crate::message::UpdateKind;
    use cup_des::{KeyId, ReplicaId, SimDuration};

    fn update(kind: UpdateKind, window_secs: u64) -> Update {
        Update {
            key: KeyId(1),
            kind,
            entries: vec![IndexEntry::new(
                KeyId(1),
                ReplicaId(0),
                SimDuration::from_secs(window_secs),
                SimTime::ZERO,
            )],
            replica: ReplicaId(0),
            depth: 1,
            origin: SimTime::ZERO,
            window_end: SimTime::from_secs(window_secs),
        }
    }

    #[test]
    fn full_capacity_sends_everything() {
        let mut q = OutgoingQueues::new();
        for i in 0..5 {
            q.enqueue(NodeId(i % 2), update(UpdateKind::Refresh, 300));
        }
        let sent = q.service(SimTime::from_secs(1), 1.0);
        assert_eq!(sent.len(), 5);
        assert_eq!(q.total_len(), 0);
    }

    #[test]
    fn zero_capacity_sends_nothing() {
        let mut q = OutgoingQueues::new();
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 300));
        let sent = q.service(SimTime::from_secs(1), 0.0);
        assert!(sent.is_empty());
        assert_eq!(q.total_len(), 1, "update stays queued");
    }

    #[test]
    fn fractional_capacity_accumulates_carry() {
        let mut q = OutgoingQueues::new();
        // One update per service at c = 0.5: sends on every second call.
        let mut sent_total = 0;
        for round in 0..4 {
            q.enqueue(NodeId(0), update(UpdateKind::Refresh, 300));
            sent_total += q.service(SimTime::from_secs(round), 0.5).len();
        }
        assert_eq!(sent_total, 2, "half the enqueued updates were pushed");
    }

    #[test]
    fn expired_updates_are_eliminated() {
        let mut q = OutgoingQueues::new();
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 10));
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 1_000));
        let sent = q.service(SimTime::from_secs(100), 1.0);
        assert_eq!(sent.len(), 1, "expired update dropped, fresh one sent");
        assert_eq!(sent[0].1.window_end, SimTime::from_secs(1_000));
    }

    #[test]
    fn reordering_prioritizes_kind_then_expiry() {
        let mut q = OutgoingQueues::new();
        q.enqueue(NodeId(0), update(UpdateKind::Append, 500));
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 900));
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 400));
        q.enqueue(NodeId(0), update(UpdateKind::Delete, 700));
        q.enqueue(NodeId(0), update(UpdateKind::FirstTime, 600));
        // Budget of 3 out of 5 queued.
        q.enqueued_since_service = 5;
        let sent = q.service(SimTime::from_secs(1), 0.6);
        let kinds: Vec<UpdateKind> = sent.iter().map(|(_, u)| u.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UpdateKind::FirstTime,
                UpdateKind::Delete,
                UpdateKind::Refresh
            ]
        );
        // The refresh sent is the one closest to expiring.
        assert_eq!(sent[2].1.window_end, SimTime::from_secs(400));
    }

    #[test]
    fn budget_split_proportionally_to_queue_length() {
        let mut q = OutgoingQueues::new();
        for _ in 0..8 {
            q.enqueue(NodeId(0), update(UpdateKind::Refresh, 300));
        }
        for _ in 0..2 {
            q.enqueue(NodeId(1), update(UpdateKind::Refresh, 300));
        }
        // Budget = 5 of 10: channel 0 (80% of queue) should get 4.
        let sent = q.service(SimTime::from_secs(1), 0.5);
        let to0 = sent.iter().filter(|(to, _)| *to == NodeId(0)).count();
        let to1 = sent.iter().filter(|(to, _)| *to == NodeId(1)).count();
        assert_eq!(to0 + to1, 5);
        assert_eq!(to0, 4);
        assert_eq!(to1, 1);
    }

    #[test]
    fn drop_neighbor_clears_channel() {
        let mut q = OutgoingQueues::new();
        q.enqueue(NodeId(0), update(UpdateKind::Refresh, 300));
        q.enqueue(NodeId(1), update(UpdateKind::Refresh, 300));
        assert_eq!(q.drop_neighbor(NodeId(0)), 1);
        assert_eq!(q.total_len(), 1);
        assert_eq!(q.len_for(NodeId(0)), 0);
    }

    #[test]
    fn queues_bounded_by_expiration() {
        // Even with zero capacity forever, the queue empties as entries
        // expire (§2.8).
        let mut q = OutgoingQueues::new();
        for w in [10u64, 20, 30] {
            q.enqueue(NodeId(0), update(UpdateKind::Refresh, w));
        }
        assert!(q.service(SimTime::from_secs(5), 0.0).is_empty());
        assert_eq!(q.total_len(), 3);
        assert!(q.service(SimTime::from_secs(25), 0.0).is_empty());
        assert_eq!(q.total_len(), 1);
        assert!(q.service(SimTime::from_secs(35), 0.0).is_empty());
        assert_eq!(q.total_len(), 0);
    }
}
