//! The sim-vs-live conformance harness: one scripted workload, two
//! runtimes, one truth.
//!
//! The CUP node is a pure state machine; `cup-simnet` drives it inside
//! the deterministic DES while `cup-runtime` runs it on the sharded
//! worker pool. [`run_sim`] and [`run_live`] push the same scripted
//! scenario — replica births, a serialized query workload, a deletion,
//! more queries — through both runtimes over the *same* topology (same
//! overlay kind, same build seed) and return comparable [`Outcome`]s.
//!
//! Queries are serialized (each completes before the next is posted, and
//! the live side [`cup::prelude::LiveNetwork::quiesce`]s between script
//! events where the sim side leaves an inter-event gap), so the message
//! orders the two runtimes see are equivalent and the comparison is
//! exact, not statistical.
//!
//! The live side runs on a **virtual clock** stepped through exactly the
//! DES schedule's instants, and the DES runs at zero per-hop latency, so
//! every handler in both runtimes observes identical timestamps. That
//! puts *time-compared* behavior inside the byte-identical comparison:
//! the paper-default 30 s `pfu_timeout` runs un-parked (retry counters
//! must agree), and `@t=`-windowed fault scripts execute their window
//! edges at the same logical instant in both runtimes.
//!
//! Both runtimes run §3.1 justified-update accounting through the shared
//! [`cup::protocol::justify::JustificationTracker`], and the script's
//! refresh rounds (between phase A and the deletion) generate the
//! maintenance updates the accounting measures — so the comparison
//! covers the economics, not just the caching behaviour.

use cup::des::LatencyModel;
use cup::faults::FaultEvent;
use cup::prelude::*;
use cup::protocol::justify::JustificationTracker;
use cup::protocol::stats::NodeStats;
use cup::simnet::{Ev, Network};
use cup::workload::replica::{ReplicaAction, ReplicaActionKind, ReplicaPlan};

/// The key whose replica the script deletes between phases A and B.
pub const DELETED_KEY: u32 = 1;

/// Entry lifetime: far beyond both runtimes' horizons, so freshness
/// expiry and refresh traffic never enter the picture.
pub const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);

/// One scripted query: posted at the node with this dense index, for
/// this key.
pub type ScriptedQuery = (usize, u32);

/// One sim-vs-live conformance scenario.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceSpec {
    /// The overlay substrate both runtimes build (same seed).
    pub kind: OverlayKind,
    /// Overlay population.
    pub nodes: usize,
    /// Keys `0..keys`, one replica each (`ReplicaId(k)` serves
    /// `KeyId(k)`). Must exceed [`DELETED_KEY`].
    pub keys: u32,
    /// Queries in the pre-deletion phase.
    pub phase_a_queries: usize,
    /// Serialized replica-refresh rounds between phase A and the
    /// deletion, one refresh per surviving key per round. These generate
    /// the maintenance updates the justification accounting tracks (and
    /// give cut-off policies something to decide about). The deleted
    /// key's tree is left unrefreshed so the deletion still reaches every
    /// cache.
    pub refresh_rounds: u32,
    /// Node configuration both runtimes run (policy economics scripts
    /// override the default second-chance CUP).
    pub config: NodeConfig,
    /// Topology build seed shared by both runtimes.
    pub topology_seed: u64,
    /// Seed of the query script.
    pub script_seed: u64,
    /// Sim seconds between scripted events. Must exceed the WAN drain
    /// time of one query cascade (path hops × latency, both ways) so
    /// consecutive queries never overlap inside the DES.
    pub step_secs: u64,
    /// Worker threads for the live side (explicit, so sharding is
    /// exercised even on single-core CI runners).
    pub workers: usize,
    /// Node→shard placement mode for the live side. Conformance must
    /// hold under every mode — placement is a performance knob, not a
    /// semantic one.
    pub shard_map: ShardMapMode,
    /// Runs the spec's standard fault script (see
    /// [`ConformanceSpec::fault_events`]) through both runtimes'
    /// `cup-faults` planes. Queries then may legitimately go unanswered,
    /// so the live side claims answers with detached queries instead of
    /// asserting payloads.
    pub fault_script: bool,
    /// Runs the spec's *timed-window* fault script (see
    /// [`ConformanceSpec::fault_plan`]): `drop:`/`spike:`/`crash:`
    /// windows at absolute logical times, executed by the DES as
    /// scheduled events and by the live runtime as a virtual-clock plan
    /// replay — the same instants in both. Implies the detached-query
    /// discipline of `fault_script`.
    pub timed_faults: bool,
    /// Arms the spec's Byzantine cast (see
    /// [`ConformanceSpec::byzantine_cast`]): a stale-serving node parked
    /// upstream of an honest witness, an update-dropper, and a
    /// refresh-liar, installed at `t = 0` through both fault planes —
    /// with the sampled cache audit switched on in `config`, so the
    /// poisoned-answer, audit, and repair counters are part of the
    /// byte-identical comparison. Implies the detached-query discipline
    /// of `fault_script`.
    pub byzantine: bool,
    /// Seed both runtimes' fault planes share.
    pub fault_seed: u64,
}

/// The scripted Byzantine cast, computed from the overlay and the
/// phase-A query script (see [`ConformanceSpec::byzantine_cast`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineCast {
    /// An honest node that cached the deleted key in phase A and whose
    /// only upstream toward its authority is the stale server — the
    /// deletion dies there, so this node serves poisoned answers in
    /// phase B until its audit repairs it.
    pub witness: usize,
    /// The `stale-serve` attacker: swallows the deletion (and any audit
    /// repairs aimed at itself) while serving its stale entry forever.
    pub stale_server: usize,
    /// The `drop-updates` attacker: an interior node of a surviving
    /// key's interest tree that silently swallows the maintenance
    /// updates it should forward.
    pub update_dropper: usize,
    /// The `lie-refresh` attacker: forwards the deletion as a refresh,
    /// resurrecting the dead replica downstream.
    pub refresh_liar: usize,
}

impl ConformanceSpec {
    /// The small exact-script scenario (a couple dozen nodes).
    pub fn small(kind: OverlayKind) -> Self {
        ConformanceSpec {
            kind,
            nodes: 24,
            keys: 3,
            phase_a_queries: 20,
            refresh_rounds: 2,
            config: NodeConfig::cup_default(),
            topology_seed: 11,
            script_seed: 99,
            step_secs: 10,
            workers: 3,
            shard_map: ShardMapMode::Contiguous,
            fault_script: false,
            timed_faults: false,
            byzantine: false,
            fault_seed: 0,
        }
    }

    /// The at-scale scenario: ≥2k live nodes on a small worker pool.
    pub fn large(kind: OverlayKind) -> Self {
        ConformanceSpec {
            kind,
            nodes: 2_048,
            keys: 4,
            phase_a_queries: 30,
            refresh_rounds: 2,
            config: NodeConfig::cup_default(),
            topology_seed: 17,
            script_seed: 23,
            // CAN paths at 2k nodes can run to ~100 hops; at 50 ms per
            // hop each way a cascade still drains well inside 30 s.
            step_secs: 30,
            workers: 4,
            shard_map: ShardMapMode::Contiguous,
            fault_script: false,
            timed_faults: false,
            byzantine: false,
            fault_seed: 0,
        }
    }

    /// The small scenario with the standard fault script armed: a lossy
    /// phase, a crash/restart cycle, and a 2-way partition, all inside
    /// phase A (refresh rounds, the deletion, and phase B then run
    /// fault-free on whatever state the faults left behind).
    ///
    /// Runs the paper-default 30 s `pfu_timeout`: on the virtual clock
    /// both runtimes compare the same logical elapsed times, so the
    /// retry counter is part of the byte-identical comparison (phase-A
    /// losses strand Pending-First-Update flags; later queries past the
    /// timeout retry instead of coalescing forever).
    pub fn faulty(kind: OverlayKind) -> Self {
        ConformanceSpec {
            fault_script: true,
            fault_seed: 0xFA_17,
            ..ConformanceSpec::small(kind)
        }
    }

    /// The small scenario with the timed-window fault script armed: a
    /// loss window, a latency-spike window (pure fault-epoch noise at
    /// the conformance latency — see [`run_sim`]), and a crash/restart
    /// window, all at absolute logical times inside phase A. See
    /// [`ConformanceSpec::fault_plan`].
    pub fn timed(kind: OverlayKind) -> Self {
        ConformanceSpec {
            timed_faults: true,
            fault_seed: 0x71_3D,
            ..ConformanceSpec::small(kind)
        }
    }

    /// The small scenario with the Byzantine cast armed and the sampled
    /// cache audit switched on: `stale-serve` parks a liar on the
    /// deletion path upstream of an honest witness, `drop-updates` and
    /// `lie-refresh` corrupt the maintenance plane, and every phase-B
    /// probe of the deleted key lands on the witness — so the
    /// poisoned-answer, audit, and repair counters all take non-trivial
    /// values that must agree byte-for-byte across runtimes.
    ///
    /// The audit samples 8 of the population every 5 logical seconds per
    /// key per node; phase-B probes arrive every `step_secs` (10 s), so
    /// each probe at the witness opens a fresh audit round.
    pub fn byzantine(kind: OverlayKind) -> Self {
        let base = ConformanceSpec::small(kind);
        ConformanceSpec {
            byzantine: true,
            fault_seed: 0xB1_2A,
            config: base.config.with_audit(AuditConfig::sampled(
                SimDuration::from_secs(5),
                base.nodes as u32,
                0xC0DE_A0D1,
            )),
            ..base
        }
    }

    /// Whether any fault surface (positional, timed, or Byzantine) is
    /// armed.
    pub fn any_faults(&self) -> bool {
        self.fault_script || self.timed_faults || self.byzantine
    }

    /// A crash victim that is no key's authority, so the scripted
    /// replica traffic keeps its meaning while the victim is down.
    /// Authorities are collected into a set first: the scan is
    /// O(nodes + keys), not O(nodes × keys), which matters at the
    /// 2048-node conformance tier.
    fn crash_victim(&self) -> usize {
        let mut topo_rng = DetRng::seed_from(self.topology_seed);
        let overlay = AnyOverlay::build(self.kind, self.nodes, &mut topo_rng).unwrap();
        let authorities: std::collections::HashSet<NodeId> = (0..self.keys)
            .map(|k| overlay.authority(KeyId(k)))
            .collect();
        (0..self.nodes)
            .find(|&i| !authorities.contains(&NodeId(i as u32)))
            .expect("a non-authority node exists")
    }

    /// The scripted Byzantine cast, derived from the overlay and the
    /// phase-A script so the attack provably bites: the witness is the
    /// *first* phase-A querier of the deleted key (so its interest-tree
    /// parent toward the authority is exactly its overlay next hop), and
    /// the stale server is that parent — the deletion's only path to the
    /// witness runs through the liar. The other two attackers sit on
    /// maintenance paths: the update-dropper is a surviving-key querier's
    /// parent (refresh forwards die there), the refresh-liar another
    /// deleted-key querier's parent (a deletion reaching it leaves as a
    /// refresh). All picks avoid every key authority so the scripted
    /// replica traffic keeps its meaning. `None` unless `byzantine`.
    pub fn byzantine_cast(&self) -> Option<ByzantineCast> {
        if !self.byzantine {
            return None;
        }
        let mut topo_rng = DetRng::seed_from(self.topology_seed);
        let overlay = AnyOverlay::build(self.kind, self.nodes, &mut topo_rng).unwrap();
        let authorities: std::collections::HashSet<usize> = (0..self.keys)
            .map(|k| overlay.authority(KeyId(k)).0 as usize)
            .collect();
        // Re-draw phase A exactly as `query_script` does (phase A is
        // never rewritten by the cast, so the streams agree).
        let mut rng = DetRng::seed_from(self.script_seed);
        let phase_a: Vec<ScriptedQuery> = (0..self.phase_a_queries)
            .map(|_| {
                (
                    rng.choose_index(self.nodes),
                    rng.next_below(u64::from(self.keys)) as u32,
                )
            })
            .collect();
        let hop_of = |n: usize, k: u32| -> Option<usize> {
            overlay
                .next_hop(NodeId(n as u32), KeyId(k))
                .ok()
                .flatten()
                .map(|h| h.0 as usize)
        };
        let (witness, stale_server) = phase_a
            .iter()
            .filter(|&&(n, k)| k == DELETED_KEY && !authorities.contains(&n))
            .find_map(|&(n, _)| {
                let v = hop_of(n, DELETED_KEY)?;
                (!authorities.contains(&v)).then_some((n, v))
            })
            .expect("a deleted-key querier with a non-authority parent exists");
        let taken = |picked: &[usize], c: usize| picked.contains(&c) || authorities.contains(&c);
        let update_dropper = phase_a
            .iter()
            .filter(|&&(_, k)| k != DELETED_KEY)
            .find_map(|&(n, k)| {
                let w = hop_of(n, k)?;
                (!taken(&[witness, stale_server], w)).then_some(w)
            })
            .expect("a surviving-key querier with a free parent exists");
        let picked = [witness, stale_server, update_dropper];
        let refresh_liar = phase_a
            .iter()
            .filter(|&&(n, k)| k == DELETED_KEY && n != witness)
            .find_map(|&(n, _)| {
                let x = hop_of(n, DELETED_KEY)?;
                (!taken(&picked, x)).then_some(x)
            })
            // No second suitable parent: any free non-authority works
            // (the lie then simply never triggers — identically in both
            // runtimes).
            .unwrap_or_else(|| {
                (0..self.nodes)
                    .find(|&c| !taken(&picked, c))
                    .expect("a free non-authority node exists")
            });
        Some(ByzantineCast {
            witness,
            stale_server,
            update_dropper,
            refresh_liar,
        })
    }

    /// The standard fault script, as `(phase_a_position, action)` pairs:
    /// each action applies immediately before the phase-A query with
    /// that index (both runtimes interleave them at the same points).
    pub fn fault_events(&self) -> Vec<(usize, FaultAction)> {
        if !self.fault_script {
            return Vec::new();
        }
        let victim = self.crash_victim();
        let n = self.phase_a_queries;
        assert!(
            n >= 20,
            "the standard fault script needs ≥ 20 phase-A steps"
        );
        vec![
            (2, FaultAction::SetLoss { rate: 0.25 }),
            (8, FaultAction::SetLoss { rate: 0.0 }),
            (10, FaultAction::Crash { node: victim }),
            (14, FaultAction::Restart { node: victim }),
            (16, FaultAction::Partition { groups: 2 }),
            (n - 1, FaultAction::Heal),
        ]
    }

    /// The scheduled fault script as a [`FaultPlan`] built from the
    /// standard spec strings. With `timed_faults`: `drop:`/`spike:`/
    /// `crash:` windows whose edges land mid-gap between scripted
    /// queries — the network is drained there in both runtimes, so each
    /// edge applies to the same quiescent state at the same logical
    /// instant. With `byzantine`: unwindowed `stale-serve:`/
    /// `drop-updates:`/`lie-refresh:` specs installing the cast's
    /// behaviors permanently from `t = 0`. Empty unless one of the two
    /// is set.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut specs: Vec<String> = Vec::new();
        if self.timed_faults {
            let victim = self.crash_victim();
            let s = self.step_secs;
            // Mid-gap instant before phase-A query `pos`.
            let mid = |pos: u64| 100 + pos * s - s / 2;
            assert!(
                self.phase_a_queries >= 16,
                "the timed fault script needs ≥ 16 phase-A steps"
            );
            specs.push(format!("drop:0.35@t={}..{}", mid(2), mid(8)));
            specs.push(format!("spike:3@t={}..{}", mid(4), mid(10)));
            specs.push(format!("crash:{victim}@t={}..{}", mid(11), mid(15)));
        }
        if let Some(cast) = self.byzantine_cast() {
            specs.push(format!("stale-serve:{}", cast.stale_server));
            specs.push(format!("drop-updates:{}", cast.update_dropper));
            specs.push(format!("lie-refresh:{}", cast.refresh_liar));
        }
        if specs.is_empty() {
            return FaultPlan::none();
        }
        FaultPlan::parse_specs(&specs).expect("the built-in specs parse")
    }

    /// The same script under a different node configuration (policy
    /// comparisons).
    pub fn with_config(mut self, config: NodeConfig) -> Self {
        self.config = config;
        self
    }

    /// The same script with a different number of refresh rounds.
    pub fn with_refresh_rounds(mut self, rounds: u32) -> Self {
        self.refresh_rounds = rounds;
        self
    }

    /// Surviving keys, in script order.
    fn surviving_keys(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.keys).filter(|&k| k != DELETED_KEY)
    }

    /// The scripted workload: `(node_index, key)` per query, two phases.
    /// Phase B probes the deleted key from three nodes, then each
    /// surviving key once more. Under `byzantine`, the deleted-key
    /// probes are re-aimed at the cast's witness (the rng stream is
    /// drawn identically first, so phase A and the surviving-key probes
    /// are untouched): every probe then crosses poisoned state, and each
    /// one — arriving a `step` past the 5 s audit interval — opens a
    /// fresh audit round at the witness.
    pub fn query_script(&self) -> (Vec<ScriptedQuery>, Vec<ScriptedQuery>) {
        let mut rng = DetRng::seed_from(self.script_seed);
        let mut phase_a = Vec::new();
        for _ in 0..self.phase_a_queries {
            phase_a.push((
                rng.choose_index(self.nodes),
                rng.next_below(u64::from(self.keys)) as u32,
            ));
        }
        let mut phase_b = Vec::new();
        for _ in 0..3 {
            phase_b.push((rng.choose_index(self.nodes), DELETED_KEY));
        }
        for k in (0..self.keys).filter(|&k| k != DELETED_KEY) {
            phase_b.push((rng.choose_index(self.nodes), k));
        }
        if let Some(cast) = self.byzantine_cast() {
            for q in phase_b.iter_mut().filter(|q| q.1 == DELETED_KEY) {
                q.0 = cast.witness;
            }
        }
        (phase_a, phase_b)
    }

    /// Total scripted queries across both phases.
    pub fn total_queries(&self) -> u64 {
        let (a, b) = self.query_script();
        (a.len() + b.len()) as u64
    }
}

/// What one runtime run produced, in comparable form.
#[derive(Debug, PartialEq)]
pub struct Outcome {
    /// Aggregated per-node protocol counters (including counters
    /// retained from crashed nodes).
    pub stats: NodeStats,
    /// Per key: sorted node ids holding a fresh cached entry at quiesce.
    pub cached_by: Vec<Vec<NodeId>>,
    /// §3.1 justified maintenance updates.
    pub justified: u64,
    /// Maintenance updates tracked (the justification denominator).
    pub tracked: u64,
    /// Peer messages delivered (total hops — the live counter and the
    /// DES's summed hop metrics measure the same thing; messages vetoed
    /// by the fault plane at send time count in neither, and a message
    /// already in flight when its receiver crashes counts in both).
    pub hops: u64,
    /// Messages dropped by failed overlay routing lookups (always zero
    /// on a well-formed static overlay; the DES panics instead, so its
    /// side reports zero by construction).
    pub routing_failures: u64,
    /// Messages dropped for any reason — the fault plane plus, on the
    /// DES side, deliveries to churned-away nodes.
    pub dropped_messages: u64,
    /// Client answers that served a replica the script had already
    /// deleted (ground truth recorded at the deletion instant; only
    /// populated while a fault plane is armed).
    pub poisoned_answers: u64,
    /// Summed logical age (µs past deletion) of those poisoned answers.
    pub poisoned_age_micros: u64,
    /// The fault plane's full drop/crash breakdown.
    pub faults: cup::faults::FaultCounters,
    /// Client-query latency histogram (µs, post → answer). Degenerate at
    /// the conformance latency (zero per-hop delay on a stepped virtual
    /// clock ⇒ every sample is 0), but its *counts* — one per answered
    /// query — and its byte-exact `Eq` are part of the comparison.
    pub query_latency: Hist,
    /// Staleness-age histogram: one sample per poisoned answer, the
    /// distribution whose sum is `poisoned_age_micros`.
    pub stale_age_hist: Hist,
}

impl Outcome {
    /// Fraction of tracked updates justified.
    pub fn justified_ratio(&self) -> f64 {
        if self.tracked == 0 {
            0.0
        } else {
            self.justified as f64 / self.tracked as f64
        }
    }
}

/// The network-level counters one runtime reports into its [`Outcome`]
/// (everything not derived from per-node state).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounters {
    /// §3.1 justified maintenance updates.
    pub justified: u64,
    /// Maintenance updates tracked.
    pub tracked: u64,
    /// Peer messages delivered.
    pub hops: u64,
    /// Failed-routing drops.
    pub routing_failures: u64,
    /// Total dropped messages.
    pub dropped_messages: u64,
    /// Poisoned client answers (stale ground truth).
    pub poisoned_answers: u64,
    /// Summed poisoned-answer age in µs.
    pub poisoned_age_micros: u64,
    /// Fault-plane breakdown.
    pub faults: cup::faults::FaultCounters,
    /// Client-query latency histogram.
    pub query_latency: Hist,
    /// Staleness-age histogram.
    pub stale_age_hist: Hist,
}

/// Collects the comparable outcome from final per-node states plus the
/// runtime's network-level counters.
pub fn outcome_of<'a>(
    nodes: impl Iterator<Item = &'a CupNode>,
    keys: u32,
    probe_time: SimTime,
    counters: RunCounters,
) -> Outcome {
    let mut stats = NodeStats::default();
    let mut cached_by: Vec<Vec<NodeId>> = (0..keys).map(|_| Vec::new()).collect();
    for node in nodes {
        stats.merge(&node.stats);
        for k in 0..keys {
            let cached = node
                .key_state(KeyId(k))
                .is_some_and(|st| st.has_fresh(probe_time));
            if cached {
                cached_by[k as usize].push(node.id());
            }
        }
    }
    for ids in &mut cached_by {
        ids.sort_unstable();
    }
    Outcome {
        stats,
        cached_by,
        justified: counters.justified,
        tracked: counters.tracked,
        hops: counters.hops,
        routing_failures: counters.routing_failures,
        dropped_messages: counters.dropped_messages,
        poisoned_answers: counters.poisoned_answers,
        poisoned_age_micros: counters.poisoned_age_micros,
        faults: counters.faults,
        query_latency: counters.query_latency,
        stale_age_hist: counters.stale_age_hist,
    }
}

/// Runs the script through the DES, returning the outcome plus the
/// number of client responses delivered.
///
/// # Panics
///
/// Panics if the overlay cannot be built for the spec.
pub fn run_sim(spec: &ConformanceSpec) -> (Outcome, u64) {
    let (outcome, responses, _) = run_sim_inner(spec, None);
    (outcome, responses)
}

/// [`run_sim`] with structured event tracing on (a ring buffer of
/// `trace_cap` events). Compare against a live trace via
/// `TraceBuf::sorted` / `cup::prelude::trace_diff`.
pub fn run_sim_traced(spec: &ConformanceSpec, trace_cap: usize) -> (Outcome, u64, TraceBuf) {
    let (outcome, responses, trace) = run_sim_inner(spec, Some(trace_cap));
    (outcome, responses, trace.expect("tracing was enabled"))
}

fn run_sim_inner(
    spec: &ConformanceSpec,
    trace_cap: Option<usize>,
) -> (Outcome, u64, Option<TraceBuf>) {
    let mut topo_rng = DetRng::seed_from(spec.topology_seed);
    let overlay = AnyOverlay::build(spec.kind, spec.nodes, &mut topo_rng).unwrap();
    // Zero per-hop latency: every handler in a cascade then observes
    // exactly the cascade's scheduled time — the same instants the live
    // side realizes by stepping its virtual clock at quiesce barriers.
    // That makes *time-compared* behavior (the 30 s `pfu_timeout`,
    // freshness horizons) part of the byte-identical comparison instead
    // of diverging by per-hop latency offsets the live runtime cannot
    // reproduce. (A latency spike window is then pure fault-epoch noise
    // — factor × 0 = 0 — identically in both runtimes.)
    let mut net = Network::new(
        overlay,
        spec.config,
        LatencyModel::Fixed(SimDuration::ZERO),
        DetRng::seed_from(7),
    );
    net.justify = Some(JustificationTracker::new());
    if let Some(cap) = trace_cap {
        net.enable_trace(cap);
    }
    if spec.any_faults() {
        net.faults = Some(FaultState::new(spec.fault_seed));
    }
    // A plan is required for `Ev::Replica` dispatch; only its lifetime
    // and next-event logic are used (we schedule births ourselves so the
    // two runtimes share an explicit, ordered script).
    let plan_scenario = Scenario {
        nodes: spec.nodes,
        keys: spec.keys,
        entry_lifetime: LIFETIME,
        sim_end: SimTime::from_secs(2_000_000),
        query_end: SimTime::from_secs(1_000),
        ..Scenario::default()
    };
    net.replica_plan = Some(ReplicaPlan::build(
        &plan_scenario,
        &mut DetRng::seed_from(1),
    ));

    let mut engine = cup::des::Engine::new(net);
    for k in 0..spec.keys {
        engine.schedule(
            SimTime::from_secs(1 + u64::from(k)),
            Ev::Replica(ReplicaAction {
                at: SimTime::from_secs(1 + u64::from(k)),
                key: KeyId(k),
                replica: ReplicaId(k),
                kind: ReplicaActionKind::Birth,
            }),
        );
    }
    let (phase_a, phase_b) = spec.query_script();
    let mut t = SimTime::from_secs(100);
    let step = SimDuration::from_secs(spec.step_secs);
    // Fault actions fire mid-gap before their phase-A position: the
    // previous cascade has drained, the positioned query has not fired —
    // the same interleaving the live side realizes with quiesce barriers.
    for (position, action) in spec.fault_events() {
        let fire = SimTime::from_secs(100 + position as u64 * spec.step_secs - spec.step_secs / 2);
        engine.schedule(fire, Ev::Fault(FaultEvent { at: fire, action }));
    }
    // The timed-window script schedules by absolute logical time; the
    // live side replays the identical plan against its virtual clock.
    for ev in spec.fault_plan().events() {
        engine.schedule(ev.at, Ev::Fault(*ev));
    }
    for &(node_index, key) in &phase_a {
        engine.schedule(
            t,
            Ev::PostQuery {
                node_index,
                key: KeyId(key),
            },
        );
        t += step;
    }
    // Refresh rounds for the surviving keys: the maintenance traffic the
    // justification accounting (and the cut-off policies) act on. The
    // deleted key is skipped so its interest tree stays intact and the
    // deletion reaches every cache.
    for _round in 0..spec.refresh_rounds {
        for k in spec.surviving_keys() {
            engine.schedule(
                t,
                Ev::Replica(ReplicaAction {
                    at: t,
                    key: KeyId(k),
                    replica: ReplicaId(k),
                    kind: ReplicaActionKind::Refresh,
                }),
            );
            t += step;
        }
    }
    // The deletion, then a settle gap before phase B.
    engine.schedule(
        t,
        Ev::Replica(ReplicaAction {
            at: t,
            key: KeyId(DELETED_KEY),
            replica: ReplicaId(DELETED_KEY),
            kind: ReplicaActionKind::Death,
        }),
    );
    t += step;
    for &(node_index, key) in &phase_b {
        engine.schedule(
            t,
            Ev::PostQuery {
                node_index,
                key: KeyId(key),
            },
        );
        t += step;
    }
    let quiesce = t + SimDuration::from_secs(100);
    engine.run_until(quiesce, |net, queue, now, ev| net.dispatch(queue, now, ev));
    let probe = engine.now();
    let mut net = engine.into_state();
    let trace = net.take_trace();
    let responses = net.metrics.client_responses;
    let (justified, tracked) = net
        .justify
        .as_ref()
        .map_or((0, 0), |j| (j.justified(), j.total()));
    let faults = net.faults.as_ref().map(|f| f.counters).unwrap_or_default();
    let counters = RunCounters {
        justified,
        tracked,
        // Audit traffic rides outside the paper's §3.3 cost model, but
        // the live side's hop counter sees every delivered message — add
        // it back so the totals compare like for like.
        hops: net.metrics.total_cost() + net.metrics.audit_hops,
        routing_failures: 0,
        dropped_messages: net.metrics.dropped_messages + faults.dropped(),
        poisoned_answers: net.metrics.stale_answers,
        poisoned_age_micros: net.metrics.stale_age_micros,
        faults,
        query_latency: net.metrics.query_latency,
        stale_age_hist: net.metrics.stale_age_hist,
    };
    let ids: Vec<NodeId> = (0..spec.nodes as u32).map(NodeId).collect();
    let mut outcome = outcome_of(
        ids.iter().filter_map(|&id| net.node(id)),
        spec.keys,
        probe,
        counters,
    );
    // Counters wiped by crashes live in the arena's departed aggregate.
    outcome.stats.merge(&net.retained_stats());
    (outcome, responses, trace)
}

/// Runs the same script through the worker-pool live runtime on a
/// **virtual clock**, synchronizing on `quiesce()` between script
/// events (no sleeps) and stepping logical time through exactly the
/// instants the DES schedule uses — births at `t = 1 + k`, phase-A
/// query `i` at `t = 100 + i·step`, fault events mid-gap or at their
/// scripted windows, and so on. Every handler in both runtimes then
/// observes identical timestamps, so time-compared behavior (the 30 s
/// `pfu_timeout`, windowed fault edges) is part of the byte-identical
/// comparison.
///
/// # Panics
///
/// Panics if the runtime cannot start, a query is not answered as the
/// script demands, or any message hit a routing failure.
pub fn run_live(spec: &ConformanceSpec) -> (Outcome, u64) {
    let (outcome, responses, _) = run_live_inner(spec, None);
    (outcome, responses)
}

/// [`run_live`] with structured event tracing on (a ring buffer of
/// `trace_cap` events). Raw live arrival order is scheduling-dependent;
/// compare via `TraceBuf::sorted` / `cup::prelude::trace_diff`, which
/// the canonical ordering makes deterministic.
pub fn run_live_traced(spec: &ConformanceSpec, trace_cap: usize) -> (Outcome, u64, TraceBuf) {
    let (outcome, responses, trace) = run_live_inner(spec, Some(trace_cap));
    (outcome, responses, trace.expect("tracing was enabled"))
}

fn run_live_inner(
    spec: &ConformanceSpec,
    trace_cap: Option<usize>,
) -> (Outcome, u64, Option<TraceBuf>) {
    let mut topo_rng = DetRng::seed_from(spec.topology_seed);
    let net = LiveNetwork::start_virtual_with_map(
        spec.kind,
        spec.nodes,
        spec.config,
        spec.workers,
        spec.shard_map,
        &mut topo_rng,
    )
    .unwrap();
    net.track_justification(true);
    if let Some(cap) = trace_cap {
        net.enable_trace(cap);
    }
    if spec.any_faults() {
        net.enable_faults(spec.fault_seed);
    }
    let plan = spec.fault_plan();
    let mut plan_cursor = 0usize;
    // Unwindowed behavior specs install at t = 0 — replay them before
    // the clock first advances (a no-op for the windowed scripts, whose
    // earliest edge sits mid-phase-A).
    net.run_plan_until(&plan, &mut plan_cursor, SimTime::ZERO);
    for k in 0..spec.keys {
        net.run_until(SimTime::from_secs(1 + u64::from(k)));
        net.replica_birth(KeyId(k), ReplicaId(k), LIFETIME);
        net.quiesce();
    }

    let (phase_a, phase_b) = spec.query_script();
    let fault_events = spec.fault_events();
    let step = spec.step_secs;
    // The script clock, mirroring `run_sim`'s `t` in whole seconds.
    let mut t = 100u64;
    let mut responses = 0u64;
    // Queries whose answer a fault swallowed *so far*: a later PFU
    // retry at the same node can still resurrect them (the first-time
    // update answers every waiting client), and the DES counts that
    // late delivery — so the receivers stay registered until the run
    // ends and late answers are claimed at the final barrier.
    let mut stranded = Vec::new();
    for (i, &(node_index, key)) in phase_a.iter().enumerate() {
        // Apply this step's positional fault actions at their mid-gap
        // instant — exactly when the DES schedules them (previous
        // cascade drained, positioned query not yet fired).
        for &(position, action) in &fault_events {
            if position == i {
                net.run_until(SimTime::from_secs(100 + position as u64 * step - step / 2));
                net.inject_fault(action);
                net.quiesce();
            }
        }
        // Replay any due timed windows, then land on the query instant.
        net.run_plan_until(&plan, &mut plan_cursor, SimTime::from_secs(t));
        if spec.any_faults() {
            // Under faults an answer may legitimately never come; after
            // a quiesce, "nothing yet" is "nothing ever".
            let pending = net
                .query_detached(net.nodes()[node_index], KeyId(key))
                .unwrap();
            net.quiesce();
            match pending.poll() {
                Some(entries) => {
                    assert!(entries.len() <= 1);
                    responses += 1;
                }
                None => stranded.push(pending),
            }
        } else {
            let entries = net.query(net.nodes()[node_index], KeyId(key)).unwrap();
            assert_eq!(
                entries.len(),
                1,
                "live query for k{key} must find its replica"
            );
            assert_eq!(entries[0].replica, ReplicaId(key));
            responses += 1;
            net.quiesce();
        }
        t += step;
    }
    // Refresh rounds for the surviving keys, serialized exactly like the
    // DES schedule (one refresh per step instant).
    for _round in 0..spec.refresh_rounds {
        for k in spec.surviving_keys() {
            net.run_plan_until(&plan, &mut plan_cursor, SimTime::from_secs(t));
            net.replica_refresh(KeyId(k), ReplicaId(k), LIFETIME);
            net.quiesce();
            t += step;
        }
    }
    net.run_plan_until(&plan, &mut plan_cursor, SimTime::from_secs(t));
    net.replica_deletion(KeyId(DELETED_KEY), ReplicaId(DELETED_KEY));
    net.quiesce();
    t += step;
    for &(node_index, key) in &phase_b {
        net.run_plan_until(&plan, &mut plan_cursor, SimTime::from_secs(t));
        if spec.any_faults() {
            // Phase B runs fault-free, but phase-A losses may have left
            // stuck Pending-First-Update flags; past the 30 s timeout
            // those retry upstream (counted identically in both
            // runtimes), yet a query can still go unanswered — claim
            // answers without payload assertions.
            let pending = net
                .query_detached(net.nodes()[node_index], KeyId(key))
                .unwrap();
            net.quiesce();
            match pending.poll() {
                Some(_) => responses += 1,
                None => stranded.push(pending),
            }
        } else {
            let entries = net.query(net.nodes()[node_index], KeyId(key)).unwrap();
            if key == DELETED_KEY {
                assert!(
                    entries.is_empty(),
                    "deleted key must yield an empty live answer"
                );
            } else {
                assert_eq!(entries.len(), 1);
            }
            responses += 1;
            net.quiesce();
        }
        t += step;
    }
    // The settle gap before the probe, mirroring the DES's final
    // `run_until(t + 100 s)` — and flushing any still-pending timed
    // window edges so both planes end in the same state.
    net.run_plan_until(&plan, &mut plan_cursor, SimTime::from_secs(t + 100));
    // Claim answers that arrived after their query's own step — the DES
    // counts a client response whenever the cascade delivers it.
    responses += stranded.iter().filter(|p| p.poll().is_some()).count() as u64;
    drop(stranded);
    assert_eq!(net.routing_failures(), 0, "static routing must not fail");
    let (justified, tracked) = net.justification();
    let faults = net.fault_counters();
    let counters = RunCounters {
        justified,
        tracked,
        hops: net.hops(),
        routing_failures: net.routing_failures(),
        dropped_messages: faults.dropped(),
        poisoned_answers: net.stale_answers(),
        poisoned_age_micros: net.stale_age_micros(),
        faults,
        query_latency: net.query_latency_hist(),
        stale_age_hist: net.stale_age_hist(),
    };
    let crash_retained = net.crash_retained_stats();
    let trace = net.take_trace();
    // The probe instant is the virtual clock's final reading — the very
    // same instant `run_sim` probes (`engine.now()` after its final
    // `run_until`), so freshness horizons agree bit for bit.
    let probe = net.now();
    let final_nodes = net.shutdown();
    let mut outcome = outcome_of(final_nodes.iter(), spec.keys, probe, counters);
    outcome.stats.merge(&crash_retained);
    (outcome, responses, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic_and_well_formed() {
        let spec = ConformanceSpec::small(OverlayKind::Can);
        let (a1, b1) = spec.query_script();
        let (a2, b2) = spec.query_script();
        assert_eq!((&a1, &b1), (&a2, &b2), "same seed, same script");
        assert_eq!(a1.len(), spec.phase_a_queries);
        assert_eq!(b1.len(), 3 + spec.keys as usize - 1);
        assert_eq!(spec.total_queries(), (a1.len() + b1.len()) as u64);
        assert!(b1.iter().take(3).all(|&(_, k)| k == DELETED_KEY));
        for &(node, key) in a1.iter().chain(&b1) {
            assert!(node < spec.nodes);
            assert!(key < spec.keys);
        }
    }

    #[test]
    fn fault_script_is_deterministic_and_avoids_authorities() {
        for kind in OverlayKind::ALL {
            let spec = ConformanceSpec::faulty(kind);
            let events = spec.fault_events();
            assert_eq!(events, spec.fault_events(), "same spec, same script");
            assert_eq!(events.len(), 6);
            assert!(
                events.windows(2).all(|w| w[0].0 <= w[1].0),
                "positions ordered"
            );
            assert!(events.iter().all(|&(p, _)| p < spec.phase_a_queries));
            let victim = events
                .iter()
                .find_map(|&(_, a)| match a {
                    FaultAction::Crash { node } => Some(node),
                    _ => None,
                })
                .expect("the script crashes someone");
            let mut rng = DetRng::seed_from(spec.topology_seed);
            let overlay = AnyOverlay::build(kind, spec.nodes, &mut rng).unwrap();
            for k in 0..spec.keys {
                assert_ne!(
                    overlay.authority(KeyId(k)),
                    NodeId(victim as u32),
                    "{kind}: the crash victim must not own a scripted key"
                );
            }
        }
        // Non-fault specs script nothing.
        assert!(ConformanceSpec::small(OverlayKind::Can)
            .fault_events()
            .is_empty());
    }

    #[test]
    fn timed_fault_plan_is_deterministic_and_lands_mid_gap() {
        for kind in OverlayKind::ALL {
            let spec = ConformanceSpec::timed(kind);
            assert!(spec.any_faults() && !spec.fault_script);
            let plan = spec.fault_plan();
            assert_eq!(plan, spec.fault_plan(), "same spec, same plan");
            assert_eq!(plan.events().len(), 6, "three windows, two edges each");
            let phase_a_end = 100 + spec.phase_a_queries as u64 * spec.step_secs;
            for ev in plan.events() {
                let secs = ev.at.as_micros() / 1_000_000;
                assert!(
                    (100..phase_a_end).contains(&secs),
                    "windows sit inside phase A"
                );
                assert_ne!(
                    (secs - 100) % spec.step_secs,
                    0,
                    "{kind}: edge at t={secs}s collides with a scripted query"
                );
            }
            // The crash victim owns no scripted key.
            let victim = plan
                .events()
                .iter()
                .find_map(|e| match e.action {
                    FaultAction::Crash { node } => Some(node),
                    _ => None,
                })
                .expect("the timed script crashes someone");
            let mut rng = DetRng::seed_from(spec.topology_seed);
            let overlay = AnyOverlay::build(kind, spec.nodes, &mut rng).unwrap();
            for k in 0..spec.keys {
                assert_ne!(overlay.authority(KeyId(k)), NodeId(victim as u32), "{kind}");
            }
        }
        // Non-timed specs plan nothing.
        assert!(ConformanceSpec::small(OverlayKind::Can)
            .fault_plan()
            .is_empty());
        assert!(ConformanceSpec::faulty(OverlayKind::Can)
            .fault_plan()
            .is_empty());
    }

    #[test]
    fn byzantine_cast_is_deterministic_and_well_placed() {
        for kind in OverlayKind::ALL {
            let spec = ConformanceSpec::byzantine(kind);
            assert!(spec.any_faults() && !spec.fault_script && !spec.timed_faults);
            assert!(
                spec.config.audit.is_some(),
                "{kind}: the Byzantine spec runs with the audit armed"
            );
            let cast = spec.byzantine_cast().expect("the cast forms");
            assert_eq!(Some(cast), spec.byzantine_cast(), "same spec, same cast");
            let members = [
                cast.witness,
                cast.stale_server,
                cast.update_dropper,
                cast.refresh_liar,
            ];
            for (i, a) in members.iter().enumerate() {
                for b in &members[i + 1..] {
                    assert_ne!(a, b, "{kind}: cast members are distinct");
                }
            }
            let mut rng = DetRng::seed_from(spec.topology_seed);
            let overlay = AnyOverlay::build(kind, spec.nodes, &mut rng).unwrap();
            for k in 0..spec.keys {
                for m in members {
                    assert_ne!(
                        overlay.authority(KeyId(k)),
                        NodeId(m as u32),
                        "{kind}: no cast member owns a scripted key"
                    );
                }
            }
            // The deletion's only path to the witness runs through the
            // stale server: it is the witness's interest-tree parent.
            assert_eq!(
                overlay
                    .next_hop(NodeId(cast.witness as u32), KeyId(DELETED_KEY))
                    .unwrap(),
                Some(NodeId(cast.stale_server as u32)),
                "{kind}: the stale server sits on the witness's only upstream"
            );
            // Three unwindowed behavior specs, all installing at t = 0.
            let plan = spec.fault_plan();
            assert_eq!(plan, spec.fault_plan(), "same spec, same plan");
            assert_eq!(plan.events().len(), 3);
            for ev in plan.events() {
                assert_eq!(ev.at, SimTime::ZERO, "{kind}: behaviors install at t=0");
            }
            // The witness queried the deleted key in phase A (it holds
            // poisoned state) and absorbs every phase-B probe of it.
            let (phase_a, phase_b) = spec.query_script();
            assert!(phase_a.contains(&(cast.witness, DELETED_KEY)));
            assert!(phase_b
                .iter()
                .filter(|&&(_, k)| k == DELETED_KEY)
                .all(|&(n, _)| n == cast.witness));
            // Non-Byzantine specs carry no cast and no behavior specs.
            assert!(ConformanceSpec::small(kind).byzantine_cast().is_none());
        }
    }

    #[test]
    fn faulty_spec_runs_the_paper_default_pfu_timeout() {
        // The PR-5 sentinel (an effectively infinite timeout parking the
        // retry path) is gone: the fault conformance scripts run the
        // same 30 s timeout as every other scenario.
        for kind in OverlayKind::ALL {
            for spec in [ConformanceSpec::faulty(kind), ConformanceSpec::timed(kind)] {
                assert_eq!(
                    spec.config.pfu_timeout,
                    NodeConfig::cup_default().pfu_timeout,
                    "{kind}: fault specs must not park the PFU timeout"
                );
            }
        }
    }

    #[test]
    fn specs_stay_inside_their_populations() {
        for kind in OverlayKind::ALL {
            for spec in [ConformanceSpec::small(kind), ConformanceSpec::large(kind)] {
                assert!(spec.keys > DELETED_KEY);
                assert!(spec.workers >= 1);
                assert!(spec.nodes >= spec.workers);
            }
        }
    }
}
