//! Plain-text rendering of the paper's tables and figures.

use crate::sweeps::{CapacityPoint, PolicyRow, PushLevelPoint, ReplicaRow, SizeColumn};

/// Renders a Figure 3/4 style series: one block per query rate with
/// `(level, total cost, miss cost)` rows.
pub fn render_push_level(points: &[PushLevelPoint]) -> String {
    let mut out = String::new();
    let mut rates: Vec<f64> = points.iter().map(|p| p.rate).collect();
    rates.dedup();
    for rate in rates {
        out.push_str(&format!("# query rate {rate} q/s\n"));
        out.push_str("push_level  total_cost  miss_cost\n");
        for p in points.iter().filter(|p| p.rate == rate) {
            out.push_str(&format!(
                "{:>10}  {:>10}  {:>9}\n",
                p.level, p.total_cost, p.miss_cost
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders Table 1: rows are policies, columns are query rates; each cell
/// is `total (normalized)` exactly like the paper.
pub fn render_policy_table(rows: &[PolicyRow], rates: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "Policy"));
    for rate in rates {
        out.push_str(&format!("{:>20}", format!("{rate} q/s Total Cost")));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<24}", row.policy));
        for (cost, norm) in row.total_costs.iter().zip(&row.normalized) {
            out.push_str(&format!("{:>20}", format!("{cost} ({norm:.2})")));
        }
        out.push('\n');
    }
    out
}

/// Renders Table 2: metrics across network sizes.
pub fn render_size_table(cols: &[SizeColumn]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<40}", "Number of Nodes"));
    for c in cols {
        out.push_str(&format!("{:>9}", c.nodes));
    }
    out.push('\n');
    out.push_str(&format!("{:<40}", "CUP / STD Caching Miss Cost"));
    for c in cols {
        out.push_str(&format!("{:>9.2}", c.miss_cost_ratio));
    }
    out.push('\n');
    out.push_str(&format!("{:<40}", "CUP miss latency"));
    for c in cols {
        out.push_str(&format!("{:>9.1}", c.cup_miss_latency));
    }
    out.push('\n');
    out.push_str(&format!("{:<40}", "STD Caching miss latency"));
    for c in cols {
        out.push_str(&format!("{:>9.1}", c.std_miss_latency));
    }
    out.push('\n');
    out.push_str(&format!("{:<40}", "Saved miss hops per CUP overhead hop"));
    for c in cols {
        out.push_str(&format!("{:>9.2}", c.saved_per_overhead));
    }
    out.push('\n');
    out
}

/// Renders Table 3: replica counts versus cut-off implementations.
pub fn render_replica_table(rows: &[ReplicaRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}  {:>24}  {:>24}  {:>12}\n",
        "Replicas", "Naive Miss Cost (Misses)", "Fixed Miss Cost (Misses)", "Fixed Total"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>24}  {:>24}  {:>12}\n",
            r.replicas,
            format!("{} ({})", r.naive_miss_cost, r.naive_misses),
            format!("{} ({})", r.fixed_miss_cost, r.fixed_misses),
            r.fixed_total_cost
        ));
    }
    out
}

/// Renders Figure 5/6 series: total cost versus reduced capacity.
pub fn render_capacity(points: &[CapacityPoint]) -> String {
    let mut out = String::new();
    out.push_str("capacity  up_and_down  once_down_always_down  standard_caching\n");
    for p in points {
        out.push_str(&format!(
            "{:>8.2}  {:>11}  {:>21}  {:>16}\n",
            p.capacity, p.up_and_down, p.once_down, p.standard
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_level_render_groups_by_rate() {
        let points = vec![
            PushLevelPoint {
                rate: 1.0,
                level: 0,
                total_cost: 100,
                miss_cost: 100,
            },
            PushLevelPoint {
                rate: 1.0,
                level: 5,
                total_cost: 60,
                miss_cost: 50,
            },
        ];
        let text = render_push_level(&points);
        assert!(text.contains("query rate 1 q/s"));
        assert!(text.contains("100"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn policy_render_includes_normalization() {
        let rows = vec![PolicyRow {
            policy: "Second-chance".into(),
            total_costs: vec![150],
            normalized: vec![0.27],
        }];
        let text = render_policy_table(&rows, &[1.0]);
        assert!(text.contains("Second-chance"));
        assert!(text.contains("150 (0.27)"));
    }

    #[test]
    fn size_render_has_all_metric_rows() {
        let cols = vec![SizeColumn {
            nodes: 1024,
            miss_cost_ratio: 0.15,
            cup_miss_latency: 3.9,
            std_miss_latency: 9.4,
            saved_per_overhead: 7.05,
        }];
        let text = render_size_table(&cols);
        assert!(text.contains("Miss Cost"));
        assert!(text.contains("1024"));
        assert!(text.contains("0.15"));
        assert!(text.contains("7.05"));
    }

    #[test]
    fn replica_render_pairs_cost_with_misses() {
        let rows = vec![ReplicaRow {
            replicas: 10,
            naive_miss_cost: 44079,
            naive_misses: 4296,
            fixed_miss_cost: 7565,
            fixed_misses: 504,
            fixed_total_cost: 69086,
        }];
        let text = render_replica_table(&rows);
        assert!(text.contains("44079 (4296)"));
        assert!(text.contains("7565 (504)"));
    }

    #[test]
    fn capacity_render_lists_profiles() {
        let points = vec![CapacityPoint {
            capacity: 0.25,
            up_and_down: 30_000,
            once_down: 33_000,
            standard: 55_000,
        }];
        let text = render_capacity(&points);
        assert!(text.contains("up_and_down"));
        assert!(text.contains("0.25"));
        assert!(text.contains("55000"));
    }
}
