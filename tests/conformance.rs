//! Sim-vs-live conformance: the same protocol, two runtimes, one truth.
//!
//! The CUP node is a pure state machine; `cup-simnet` drives it inside
//! the deterministic DES while `cup-runtime` runs it on real threads and
//! channels. This suite scripts one small scenario — replica births, a
//! serialized query workload, a deletion, more queries — through *both*
//! runtimes over the *same* CAN topology (same build seed) and asserts
//! the protocol-level outcomes agree:
//!
//! * **cache-hit accounting** — aggregate client queries, hits, and
//!   first-time misses are identical;
//! * **update delivery** — updates received/forwarded agree, and the
//!   *set of nodes* caching each key is identical;
//! * **no stale entries at quiesce** — after the deletion propagates,
//!   no node in either runtime still caches or indexes the deleted
//!   replica, and every surviving cached entry is fresh.
//!
//! Queries are serialized (each completes before the next is posted), so
//! the message orders the two runtimes see are identical and the
//! comparison is exact, not statistical.

use std::time::Duration;

use cup::des::LatencyModel;
use cup::prelude::*;
use cup::simnet::{Ev, Network};
use cup_workload::replica::{ReplicaAction, ReplicaActionKind, ReplicaPlan};

/// Nodes in the overlay (small enough for the live runtime's threads).
const NODES: usize = 24;
/// Keys 0..KEYS, one replica each (`ReplicaId(k)` serves `KeyId(k)`).
const KEYS: u32 = 3;
/// The topology seed shared by both runtimes.
const TOPOLOGY_SEED: u64 = 11;
/// Entry lifetime: far beyond both runtimes' horizons, so freshness
/// expiry and refresh traffic never enter the picture.
const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);

/// One scripted query: posted at the node with this dense index, for
/// this key.
type ScriptedQuery = (usize, u32);

/// The scripted workload: `(node_index, key)` per query, two phases.
fn query_script() -> (Vec<ScriptedQuery>, Vec<ScriptedQuery>) {
    let mut rng = DetRng::seed_from(99);
    let mut phase_a = Vec::new();
    for _ in 0..20 {
        phase_a.push((rng.choose_index(NODES), rng.next_below(KEYS as u64) as u32));
    }
    // After key 1's replica is deleted: probe the deleted key from three
    // nodes, and the surviving keys once more.
    let phase_b = vec![
        (rng.choose_index(NODES), 1),
        (rng.choose_index(NODES), 1),
        (rng.choose_index(NODES), 1),
        (rng.choose_index(NODES), 0),
        (rng.choose_index(NODES), 2),
    ];
    (phase_a, phase_b)
}

/// What one runtime run produced, in comparable form.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: cup::protocol::stats::NodeStats,
    /// Per key: sorted node ids holding a fresh cached entry at quiesce.
    cached_by: Vec<Vec<NodeId>>,
}

/// Collects the comparable outcome from final per-node states.
fn outcome_of<'a>(nodes: impl Iterator<Item = &'a CupNode>, probe_time: SimTime) -> Outcome {
    let mut stats = cup::protocol::stats::NodeStats::default();
    let mut cached_by: Vec<Vec<NodeId>> = (0..KEYS).map(|_| Vec::new()).collect();
    for node in nodes {
        stats.merge(&node.stats);
        for k in 0..KEYS {
            let cached = node
                .key_state(KeyId(k))
                .is_some_and(|st| st.has_fresh(probe_time));
            if cached {
                cached_by[k as usize].push(node.id());
            }
        }
    }
    for ids in &mut cached_by {
        ids.sort_unstable();
    }
    Outcome { stats, cached_by }
}

/// Runs the script through the DES, returning the outcome plus the
/// number of client responses delivered.
fn run_sim() -> (Outcome, u64) {
    let mut topo_rng = DetRng::seed_from(TOPOLOGY_SEED);
    let overlay = AnyOverlay::build(OverlayKind::Can, NODES, &mut topo_rng).unwrap();
    let mut net = Network::new(
        overlay,
        NodeConfig::cup_default(),
        LatencyModel::default_wan(),
        DetRng::seed_from(7),
    );
    // A plan is required for `Ev::Replica` dispatch; only its lifetime
    // and next-event logic are used (we schedule births ourselves so the
    // two runtimes share an explicit, ordered script).
    let plan_scenario = Scenario {
        nodes: NODES,
        keys: KEYS,
        entry_lifetime: LIFETIME,
        sim_end: SimTime::from_secs(2_000_000),
        query_end: SimTime::from_secs(1_000),
        ..Scenario::default()
    };
    net.replica_plan = Some(ReplicaPlan::build(
        &plan_scenario,
        &mut DetRng::seed_from(1),
    ));

    let mut engine = cup::des::Engine::new(net);
    for k in 0..KEYS {
        engine.schedule(
            SimTime::from_secs(1 + k as u64),
            Ev::Replica(ReplicaAction {
                at: SimTime::from_secs(1 + k as u64),
                key: KeyId(k),
                replica: ReplicaId(k),
                kind: ReplicaActionKind::Birth,
            }),
        );
    }
    let (phase_a, phase_b) = query_script();
    let mut t = SimTime::from_secs(100);
    let step = SimDuration::from_secs(10);
    for &(node_index, key) in &phase_a {
        engine.schedule(
            t,
            Ev::PostQuery {
                node_index,
                key: KeyId(key),
            },
        );
        t += step;
    }
    // The deletion, then a settle gap before phase B.
    engine.schedule(
        t,
        Ev::Replica(ReplicaAction {
            at: t,
            key: KeyId(1),
            replica: ReplicaId(1),
            kind: ReplicaActionKind::Death,
        }),
    );
    t += step;
    for &(node_index, key) in &phase_b {
        engine.schedule(
            t,
            Ev::PostQuery {
                node_index,
                key: KeyId(key),
            },
        );
        t += step;
    }
    let quiesce = t + SimDuration::from_secs(100);
    engine.run_until(quiesce, |net, queue, now, ev| net.dispatch(queue, now, ev));
    let probe = engine.now();
    let net = engine.into_state();
    let responses = net.metrics.client_responses;
    let ids: Vec<NodeId> = (0..NODES as u32).map(NodeId).collect();
    let outcome = outcome_of(ids.iter().filter_map(|&id| net.node(id)), probe);
    (outcome, responses)
}

/// Runs the same script through the threaded live runtime.
fn run_live() -> (Outcome, u64) {
    let mut topo_rng = DetRng::seed_from(TOPOLOGY_SEED);
    let net = LiveNetwork::start(NODES, NodeConfig::cup_default(), &mut topo_rng).unwrap();
    for k in 0..KEYS {
        net.replica_birth(KeyId(k), ReplicaId(k), LIFETIME);
    }
    std::thread::sleep(Duration::from_millis(100));

    let (phase_a, phase_b) = query_script();
    let mut responses = 0u64;
    for &(node_index, key) in &phase_a {
        let entries = net.query(net.nodes()[node_index], KeyId(key)).unwrap();
        assert_eq!(
            entries.len(),
            1,
            "live query for k{key} must find its replica"
        );
        assert_eq!(entries[0].replica, ReplicaId(key));
        responses += 1;
    }
    net.replica_deletion(KeyId(1), ReplicaId(1));
    std::thread::sleep(Duration::from_millis(200));
    for &(node_index, key) in &phase_b {
        let entries = net.query(net.nodes()[node_index], KeyId(key)).unwrap();
        if key == 1 {
            assert!(
                entries.is_empty(),
                "deleted key must yield an empty live answer"
            );
        } else {
            assert_eq!(entries.len(), 1);
        }
        responses += 1;
    }
    std::thread::sleep(Duration::from_millis(200));
    let final_nodes = net.shutdown();
    // The live clock is microseconds since start; all entries carry the
    // huge scripted lifetime, so any probe instant inside the run works.
    let probe = SimTime::from_secs(1);
    let outcome = outcome_of(final_nodes.iter(), probe);
    (outcome, responses)
}

#[test]
fn sim_and_live_agree_on_protocol_outcomes() {
    let (sim, sim_responses) = run_sim();
    let (live, live_responses) = run_live();

    // Every scripted query was answered in both runtimes.
    let (phase_a, phase_b) = query_script();
    let total = (phase_a.len() + phase_b.len()) as u64;
    assert_eq!(sim_responses, total, "sim answered every client query");
    assert_eq!(live_responses, total, "live answered every client query");

    // Cache-hit accounting agrees exactly.
    assert_eq!(
        sim.stats.client_queries, live.stats.client_queries,
        "client query counts diverged"
    );
    assert_eq!(
        sim.stats.client_hits, live.stats.client_hits,
        "cache-hit counts diverged"
    );
    assert_eq!(
        sim.stats.first_time_misses, live.stats.first_time_misses,
        "first-time miss counts diverged"
    );
    assert_eq!(sim.stats.freshness_misses, 0, "nothing expires in-script");
    assert_eq!(live.stats.freshness_misses, 0);

    // Update delivery agrees: same message counts, and the same set of
    // nodes ended up caching each key.
    assert_eq!(
        sim.stats.updates_received, live.stats.updates_received,
        "update delivery counts diverged"
    );
    assert_eq!(
        sim.stats.updates_forwarded, live.stats.updates_forwarded,
        "update forward counts diverged"
    );
    assert_eq!(
        sim.stats.neighbor_queries, live.stats.neighbor_queries,
        "neighbor query counts diverged"
    );
    assert_eq!(
        sim.cached_by, live.cached_by,
        "the sets of caching nodes diverged"
    );

    // No stale state at quiesce: the deleted key is gone everywhere.
    assert!(
        sim.cached_by[1].is_empty(),
        "sim nodes still cache the deleted key: {:?}",
        sim.cached_by[1]
    );
    assert!(
        live.cached_by[1].is_empty(),
        "live nodes still cache the deleted key: {:?}",
        live.cached_by[1]
    );
    // The surviving keys are cached somewhere (the workload touched
    // them), in the same places.
    assert!(!sim.cached_by[0].is_empty());
    assert!(!sim.cached_by[2].is_empty());
}
