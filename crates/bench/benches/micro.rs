//! Micro-benchmarks of the building blocks: overlay routing, protocol
//! handlers, capacity queues, and the event queue.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_core::capacity::OutgoingQueues;
use cup_core::message::ClientId;
use cup_core::{CupNode, IndexEntry, NodeConfig, Requester, Update, UpdateKind};
use cup_des::{DetRng, EventQueue, KeyId, NodeId, ReplicaId, SimDuration, SimTime};
use cup_overlay::{can::CanOverlay, chord::ChordOverlay, Overlay};

fn bench_routing(c: &mut Criterion) {
    let mut rng = DetRng::seed_from(1);
    let can = CanOverlay::build(1_024, &mut rng).unwrap();
    let chord = ChordOverlay::build(1_024).unwrap();
    let mut group = c.benchmark_group("routing");
    group.bench_function("can_route_1024", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            can.route(NodeId(3), KeyId(k % 512)).unwrap().len()
        })
    });
    group.bench_function("chord_route_1024", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            chord.route(NodeId(3), KeyId(k % 512)).unwrap().len()
        })
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.bench_function("query_fresh_hit", |b| {
        let mut node = CupNode::new(NodeId(1), NodeConfig::cup_default());
        let entry = IndexEntry::new(
            KeyId(1),
            ReplicaId(0),
            SimDuration::from_secs(1_000_000),
            SimTime::ZERO,
        );
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(0)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            Update {
                key: KeyId(1),
                kind: UpdateKind::FirstTime,
                entries: vec![entry],
                replica: ReplicaId(0),
                depth: 1,
                origin: SimTime::ZERO,
                window_end: SimTime::MAX,
            },
        );
        let mut t = 2u64;
        b.iter(|| {
            t += 1;
            node.handle_query(
                SimTime::from_secs(t),
                KeyId(1),
                Requester::Client(ClientId(t)),
                Some(NodeId(9)),
            )
            .len()
        })
    });
    group.bench_function("refresh_apply_and_forward", |b| {
        let mut node = CupNode::new(NodeId(1), NodeConfig::cup_default());
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let entry = IndexEntry::new(
                KeyId(1),
                ReplicaId(0),
                SimDuration::from_secs(300),
                SimTime::from_secs(t),
            );
            node.handle_update(
                SimTime::from_secs(t),
                NodeId(9),
                Update {
                    key: KeyId(1),
                    kind: UpdateKind::Refresh,
                    entries: vec![entry],
                    replica: ReplicaId(0),
                    depth: 1,
                    origin: SimTime::from_secs(t),
                    window_end: entry.expires_at(),
                },
            )
            .len()
        })
    });
    group.finish();
}

fn bench_capacity_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_queue");
    group.bench_function("enqueue_service_100", |b| {
        b.iter(|| {
            let mut q = OutgoingQueues::new();
            for i in 0..100u32 {
                let entry = IndexEntry::new(
                    KeyId(1),
                    ReplicaId(i),
                    SimDuration::from_secs(300),
                    SimTime::ZERO,
                );
                q.enqueue(
                    NodeId(i % 8),
                    Update {
                        key: KeyId(1),
                        kind: UpdateKind::Refresh,
                        entries: vec![entry],
                        replica: ReplicaId(i),
                        depth: 1,
                        origin: SimTime::ZERO,
                        window_end: entry.expires_at(),
                    },
                );
            }
            q.service(SimTime::from_secs(1), 0.5).len()
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        let mut rng = DetRng::seed_from(3);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(rng.next_below(1_000_000)), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_protocol,
    bench_capacity_queue,
    bench_event_queue
);
criterion_main!(benches);
