//! Criterion sweep over the `large_scale` scenario family.
//!
//! Tracks DES wall-clock across population sizes (the calendar-queue /
//! node-arena hot path). Sample counts are small: one iteration is a
//! whole multi-second experiment. For the flagship 100k-node point and
//! the JSON artifact, run `cargo run --release -p cup-bench --bin
//! bench_des`.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::des_bench::run_point;

fn large_scale_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_scale");
    group.sample_size(2);
    for &nodes in &[2_000usize, 10_000] {
        group.bench_function(&format!("{nodes}_nodes_10k_queries"), |b| {
            b.iter(|| run_point(nodes, 10_000, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, large_scale_sweep);
criterion_main!(benches);
