//! Unit tests: the lexer's code/prose split and each rule against
//! minimal positive/negative fixtures.

use crate::engine::{self, Rule, Workspace};
use crate::lexer;
use crate::parity::{ConformanceParity, ParityCheck};
use crate::rules::{PanicPath, RelaxedAtomic, UnorderedIteration, WallClock};

fn run_rule(rule: &dyn Rule, sources: &[(&str, &str)]) -> engine::Report {
    let ws = Workspace::from_sources(sources);
    engine::run(&ws, &[rule])
}

// ---------------------------------------------------------------- lexer

#[test]
fn mask_blanks_line_comments_but_keeps_code() {
    let m = lexer::mask("let x = 1; // Instant::now() here\nlet y = 2;");
    assert!(m.contains("let x = 1;"));
    assert!(m.contains("let y = 2;"));
    assert!(!m.contains("Instant::now"));
    assert_eq!(
        m.len(),
        "let x = 1; // Instant::now() here\nlet y = 2;".len()
    );
}

#[test]
fn mask_blanks_nested_block_comments() {
    let m = lexer::mask("a /* outer /* inner SystemTime */ still out */ b");
    assert!(m.contains('a') && m.contains('b'));
    assert!(!m.contains("SystemTime"));
    assert!(!m.contains("still out"));
}

#[test]
fn mask_blanks_strings_and_escapes() {
    let m = lexer::mask(r#"panic!("thread::sleep \" quoted"); x"#);
    assert!(!m.contains("thread::sleep"));
    assert!(m.contains("panic!("));
    assert!(m.contains("; x"));
}

#[test]
fn mask_blanks_raw_and_byte_strings() {
    let m = lexer::mask(r###"let s = r#"SystemTime " inside"#; let b = b"thread::sleep";"###);
    assert!(!m.contains("SystemTime"));
    assert!(!m.contains("thread::sleep"));
    assert!(m.contains("let s ="));
    assert!(m.contains("let b ="));
}

#[test]
fn mask_distinguishes_chars_from_lifetimes() {
    let m = lexer::mask("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
    // Lifetimes survive (they are code)…
    assert!(m.contains("<'a>"));
    assert!(m.contains("&'a str"));
    // …char literal contents do not.
    assert!(!m.contains('y'));
    assert!(!m.contains("\\n"));
}

#[test]
fn mask_preserves_line_structure() {
    let src = "line one // comment\n/* multi\nline */ code\n\"str\ning\" tail\n";
    let m = lexer::mask(src);
    assert_eq!(m.lines().count(), src.lines().count());
    assert!(m.lines().nth(2).unwrap().contains("code"));
    assert!(m.lines().nth(4).unwrap().contains("tail"));
}

#[test]
fn pragmas_parse_rule_and_reason() {
    let src = "\
x(); // cup-lint: allow(wall-clock, \"bench timing is the point\")
y(); // cup-lint: allow(panic-path)
";
    let ps = lexer::pragmas(src);
    assert_eq!(ps.len(), 2);
    assert_eq!(ps[0].line, 1);
    assert_eq!(ps[0].rule, "wall-clock");
    assert_eq!(ps[0].reason.as_deref(), Some("bench timing is the point"));
    assert_eq!(ps[1].rule, "panic-path");
    assert_eq!(ps[1].reason, None);
}

#[test]
fn cfg_test_bodies_are_blanked() {
    let src = "\
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
";
    let m = lexer::mask_cfg_test(&lexer::mask(src));
    assert!(m.contains("x.unwrap()"));
    assert!(!m.contains("y.unwrap()"));
    assert_eq!(m.lines().count(), src.lines().count());
}

// --------------------------------------------------------------- engine

#[test]
fn pragma_on_same_line_or_line_above_allows_a_finding() {
    let src = "\
use std::time::Instant;
// cup-lint: allow(wall-clock, \"fixture: pragma above\")
let a = Instant::now();
let b = Instant::now(); // cup-lint: allow(wall-clock, \"fixture: same line\")
let c = Instant::now();
";
    let report = run_rule(&WallClock, &[("crates/core/src/x.rs", src)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1, "only the unpragma'd site stays denied");
    assert_eq!(denied[0].line, 5);
    assert_eq!(report.allowed().count(), 2);
}

#[test]
fn pragma_without_reason_is_itself_denied() {
    let src = "let a = Instant::now(); // cup-lint: allow(wall-clock)\n";
    let report = run_rule(&WallClock, &[("crates/core/src/x.rs", src)]);
    let rules: Vec<_> = report.denied().map(|f| f.rule).collect();
    // The wall-clock finding stays denied (no reason → no suppression)
    // and the naked pragma is reported too.
    assert!(rules.contains(&"wall-clock"));
    assert!(rules.contains(&"pragma"));
}

#[test]
fn report_serializes_to_json() {
    let src = "let a = Instant::now();\n";
    let report = run_rule(&WallClock, &[("crates/core/src/x.rs", src)]);
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"path\": \"crates/core/src/x.rs\""));
    assert!(json.contains("\"denied\": 1"));
}

// ----------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_in_code_not_prose() {
    let report = run_rule(
        &WallClock,
        &[(
            "crates/runtime/src/x.rs",
            "// thread::sleep is banned\nlet s = \"SystemTime\";\nthread::sleep(d);\n",
        )],
    );
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert_eq!(denied[0].line, 3);
}

#[test]
fn wall_clock_exempts_the_designated_module_and_other_crates() {
    let report = run_rule(
        &WallClock,
        &[
            ("crates/core/src/clock.rs", "let t = Instant::now();\n"),
            ("crates/bench/src/lib.rs", "let t = Instant::now();\n"),
        ],
    );
    assert_eq!(report.denied().count(), 0);
}

// -------------------------------------------------- unordered-iteration

#[test]
fn iteration_over_hash_field_fires() {
    let src = "\
struct S { entries: HashMap<K, V> }
impl S {
    fn f(&mut self) { self.entries.retain(|_, v| v.keep()); }
    fn g(&self) { for (k, v) in &self.entries {} }
}
";
    let report = run_rule(&UnorderedIteration, &[("crates/core/src/d.rs", src)]);
    let lines: Vec<usize> = report.denied().map(|f| f.line).collect();
    assert_eq!(lines, vec![3, 4]);
}

#[test]
fn iteration_over_hash_let_binding_fires() {
    let src = "\
fn f() {
    let mut seen = HashSet::new();
    for x in &seen {}
}
";
    let report = run_rule(&UnorderedIteration, &[("crates/simnet/src/n.rs", src)]);
    assert_eq!(report.denied().count(), 1);
}

#[test]
fn lookups_and_btree_iteration_do_not_fire() {
    let src = "\
struct S { entries: BTreeMap<K, V>, index: HashMap<K, V> }
impl S {
    fn f(&self) -> Option<&V> { self.index.get(&k) }
    fn g(&mut self) { self.entries.retain(|_, v| v.keep()); }
    fn h(&self) { for (k, v) in &self.entries {} }
}
";
    let report = run_rule(&UnorderedIteration, &[("crates/core/src/d.rs", src)]);
    assert_eq!(report.denied().count(), 0);
}

#[test]
fn iteration_rule_ignores_out_of_scope_crates() {
    let src = "struct S { m: HashMap<K, V> }\nfn f(s: &S) { for x in &s.m {} }\n";
    let report = run_rule(&UnorderedIteration, &[("crates/workload/src/w.rs", src)]);
    assert_eq!(report.denied().count(), 0);
}

// ------------------------------------------------------- relaxed-atomic

#[test]
fn relaxed_on_monotone_counter_is_fine() {
    let src = "fn f(s: &S) { s.hops.fetch_add(1, Ordering::Relaxed); }\n";
    let report = run_rule(&RelaxedAtomic, &[("crates/runtime/src/s.rs", src)]);
    assert_eq!(report.denied().count(), 0);
}

#[test]
fn relaxed_on_a_flag_fires_even_across_line_wraps() {
    let src = "\
fn f(s: &S) -> bool {
    s.faults_on
        .load(Ordering::Relaxed)
}
";
    let report = run_rule(&RelaxedAtomic, &[("crates/runtime/src/s.rs", src)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert!(denied[0].message.contains("faults_on"));
    assert_eq!(denied[0].line, 3, "reported at the Ordering::Relaxed token");
}

#[test]
fn relaxed_batch_counters_pass_but_a_relaxed_flush_flag_fires() {
    // The batch plane's throughput counters are monotone — Relaxed is
    // the point — but its dirty/flush *flags* gate worker wakeups and
    // must carry ordering.
    let src = "\
fn f(s: &S) {
    s.batch_flushes.fetch_add(1, Ordering::Relaxed);
    s.batched_envelopes.fetch_add(n as u64, Ordering::Relaxed);
    s.flush_dirty.store(true, Ordering::Relaxed);
}
";
    let report = run_rule(&RelaxedAtomic, &[("crates/runtime/src/s.rs", src)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1, "only the flag store may fire");
    assert!(denied[0].message.contains("flush_dirty"));
}

#[test]
fn acquire_and_out_of_scope_relaxed_do_not_fire() {
    let report = run_rule(
        &RelaxedAtomic,
        &[
            (
                "crates/runtime/src/a.rs",
                "s.flag.load(Ordering::Acquire);\n",
            ),
            ("crates/core/src/b.rs", "s.flag.load(Ordering::Relaxed);\n"),
        ],
    );
    assert_eq!(report.denied().count(), 0);
}

// ----------------------------------------------------------- panic-path

#[test]
fn unwrap_on_live_path_fires_but_tests_and_recovery_do_not() {
    let src = "\
fn live(m: &Mutex<u32>) {
    let a = m.lock().unwrap();
    let b = m.lock().unwrap_or_else(|e| e.into_inner());
}
#[cfg(test)]
mod tests {
    fn t(m: &Mutex<u32>) { m.lock().unwrap(); }
}
";
    let report = run_rule(&PanicPath, &[("crates/runtime/src/s.rs", src)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert_eq!(denied[0].line, 2);
}

#[test]
fn expect_fires_and_pragma_with_reason_suppresses() {
    let src = "\
fn start() {
    // cup-lint: allow(panic-path, \"before workers exist, panicking is the report\")
    spawn().expect(\"worker thread must spawn\");
    join().expect(\"joined\");
}
";
    let report = run_rule(&PanicPath, &[("crates/runtime/src/n.rs", src)]);
    assert_eq!(report.denied().count(), 1);
    assert_eq!(report.allowed().count(), 1);
}

// --------------------------------------------------- conformance-parity

const STATS_FIXTURE: &str = "\
pub struct NodeStats {
    pub client_queries: u64,
    pub updates_received: u64,
}
impl NodeStats {
    pub fn merge(&mut self, other: &NodeStats) {
        self.client_queries += other.client_queries;
    }
}
";

#[test]
fn field_missing_from_merge_fires() {
    let rule = ConformanceParity {
        checks: vec![ParityCheck::MergedInto {
            struct_file: "crates/core/src/stats.rs".into(),
            struct_name: "NodeStats".into(),
            fn_name: "merge".into(),
        }],
    };
    let report = run_rule(&rule, &[("crates/core/src/stats.rs", STATS_FIXTURE)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert!(denied[0].message.contains("updates_received"));
    assert_eq!(denied[0].line, 3, "reported at the field's declaration");
}

#[test]
fn hist_field_missing_from_merge_fires() {
    // A histogram whose `merge` folds the bucket array but forgets the
    // running total: parallel sweep aggregation would silently return
    // quantiles over a miscounted population.
    let src = "\
pub struct Hist {
    counts: [u64; HIST_BUCKETS],
    total: u64,
}
impl Hist {
    pub fn merge(&mut self, other: &Hist) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
    }
}
";
    let rule = ConformanceParity {
        checks: vec![ParityCheck::MergedInto {
            struct_file: "crates/core/src/obs.rs".into(),
            struct_name: "Hist".into(),
            fn_name: "merge".into(),
        }],
    };
    let report = run_rule(&rule, &[("crates/core/src/obs.rs", src)]);
    let denied: Vec<_> = report.denied().collect();
    assert_eq!(denied.len(), 1);
    assert!(denied[0].message.contains("total"));
    assert_eq!(denied[0].line, 3, "reported at the field's declaration");
}

#[test]
fn consumption_via_helper_method_closure_counts() {
    let metrics = "\
pub struct NetMetrics {
    pub query_hops: u64,
    pub first_time_hops: u64,
}
impl NetMetrics {
    pub fn miss_cost(&self) -> u64 { self.query_hops + self.first_time_hops }
    pub fn total_cost(&self) -> u64 { self.miss_cost() }
}
";
    // The consumer only calls total_cost(), two hops away from the
    // fields — the closure must still count both as consumed.
    let consumer = "fn check(m: &NetMetrics) { assert_eq!(m.total_cost(), 0); }\n";
    let rule = ConformanceParity {
        checks: vec![ParityCheck::ConsumedBy {
            struct_file: "crates/simnet/src/metrics.rs".into(),
            struct_name: "NetMetrics".into(),
            consumer_files: vec!["crates/testkit/src/conformance.rs".into()],
        }],
    };
    let report = run_rule(
        &rule,
        &[
            ("crates/simnet/src/metrics.rs", metrics),
            ("crates/testkit/src/conformance.rs", consumer),
        ],
    );
    assert_eq!(report.denied().count(), 0);
}

#[test]
fn missing_parity_input_file_is_a_finding() {
    let rule = ConformanceParity::workspace();
    let report = run_rule(&rule, &[("crates/core/src/other.rs", "fn f() {}\n")]);
    assert!(
        report.denied().any(|f| f.message.contains("not found")),
        "moving a parity input file must fail loudly, not silently pass"
    );
}
