//! Tiny flag-parsing helpers shared by the bench binaries.
//!
//! The workspace builds fully offline (no clap); `bench_des` and
//! `bench_live` share these so their `--flag value` handling, error
//! wording, and exit-code convention (2 = usage error) cannot drift
//! apart.

use std::fmt::Display;
use std::str::FromStr;

/// Returns the value following a `--flag`, exiting with a usage error
/// (code 2) if the argument list ends first.
pub fn value_of(it: &mut core::slice::Iter<'_, String>, name: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("{name} needs a value");
        std::process::exit(2);
    })
}

/// Parses a flag value, exiting with a usage error (code 2) on garbage.
pub fn parse_or_exit<T>(raw: &str, name: &str) -> T
where
    T: FromStr,
    T::Err: Display,
{
    raw.trim().parse().unwrap_or_else(|e| {
        eprintln!("bad {name} value '{raw}': {e}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_of_yields_the_next_argument() {
        let args = [String::from("10"), String::from("--x")];
        let mut it = args.iter();
        assert_eq!(value_of(&mut it, "--n"), "10");
        assert_eq!(it.next().map(String::as_str), Some("--x"));
    }

    #[test]
    fn parse_or_exit_accepts_valid_input() {
        assert_eq!(parse_or_exit::<u64>("42", "--n"), 42);
        assert_eq!(parse_or_exit::<usize>(" 7 ", "--n"), 7);
    }
}
