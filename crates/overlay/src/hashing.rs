//! Uniform hashing of keys onto the coordinate space and the Chord ring.
//!
//! The paper assumes "a hashing scheme that maps keys ... onto a virtual
//! coordinate space using a uniform hash function that evenly distributes
//! the keys to the space" (§2.1). We use SplitMix64 finalizers, which pass
//! standard avalanche tests and are deterministic across platforms.

use cup_des::KeyId;

use crate::point::{Point, SPACE_WIDTH};

/// A 64-bit finalizer (SplitMix64's output stage).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a key onto a point of the CAN coordinate space.
pub fn key_to_point(key: KeyId) -> Point {
    let h = mix64(key.0 as u64 ^ 0xC0FF_EE00_D15E_A5E5);
    Point::new(h >> 32, h & (SPACE_WIDTH - 1))
}

/// Maps a key onto the Chord identifier ring.
pub fn key_to_ring(key: KeyId) -> u64 {
    mix64(key.0 as u64 ^ 0x5EED_5EED_5EED_5EED)
}

/// Maps a node (by dense index) onto the Chord identifier ring.
pub fn node_to_ring(node_index: u32) -> u64 {
    mix64(node_index as u64 ^ 0x0DDB_A11A_D0BE_C0DE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_to_point_is_deterministic() {
        assert_eq!(key_to_point(KeyId(42)), key_to_point(KeyId(42)));
        assert_ne!(key_to_point(KeyId(42)), key_to_point(KeyId(43)));
    }

    #[test]
    fn key_to_point_spreads_over_quadrants() {
        let mut quadrants = [0u32; 4];
        for k in 0..4_000 {
            let p = key_to_point(KeyId(k));
            let qx = (p.x >= SPACE_WIDTH / 2) as usize;
            let qy = (p.y >= SPACE_WIDTH / 2) as usize;
            quadrants[qx * 2 + qy] += 1;
        }
        for &q in &quadrants {
            assert!((800..1200).contains(&q), "quadrant count {q} skewed");
        }
    }

    #[test]
    fn ring_hashes_differ_between_domains() {
        // The key and node hash domains must be independent.
        assert_ne!(key_to_ring(KeyId(1)), node_to_ring(1));
    }

    #[test]
    fn ring_hash_spreads() {
        let mut below = 0;
        for k in 0..4_000 {
            if key_to_ring(KeyId(k)) < u64::MAX / 2 {
                below += 1;
            }
        }
        assert!((1800..2200).contains(&below), "ring hash skewed: {below}");
    }
}
