//! The paper's headline comparisons: CUP versus standard caching — and
//! the economic claim behind them: controlled propagation buys a higher
//! justified-update ratio (§3.1) at equal or lower total cost than
//! all-out push, on both runtimes.

use cup::prelude::*;
use cup_testkit::conformance::{run_live, run_sim, ConformanceSpec, Outcome};
use cup_testkit::{assert_cheaper, assert_no_costlier, medium, run_cup_and_standard, scenario};

/// This suite's master seed.
const SEED: u64 = 77;

/// The comparison shape at a non-default size: 4 keys, 1 500 s of
/// querying.
fn sized(nodes: usize, rate: f64) -> Scenario {
    scenario(nodes, 4, rate, 1_500, SEED)
}

#[test]
fn cup_wins_at_moderate_and_high_rates() {
    for rate in [10.0, 50.0] {
        let (cup, std) = run_cup_and_standard(medium(rate, SEED));
        assert_cheaper(&format!("rate {rate}"), &cup, &std);
    }
}

#[test]
fn the_gap_widens_with_query_rate() {
    let ratio = |rate: f64| {
        let (cup, std) = run_cup_and_standard(medium(rate, SEED));
        cup.total_cost() as f64 / std.total_cost() as f64
    };
    let low = ratio(2.0);
    let high = ratio(50.0);
    assert!(
        high < low,
        "normalized total cost must improve with rate: {low:.2} -> {high:.2}"
    );
}

#[test]
fn miss_cost_reduction_matches_paper_range() {
    // The paper reports CUP/standard miss-cost ratios of 0.09–0.47 across
    // its configurations; check we land in a comparable band.
    let (cup, std) = run_cup_and_standard(sized(512, 20.0));
    let ratio = cup.miss_cost() as f64 / std.miss_cost() as f64;
    assert!(
        (0.05..0.6).contains(&ratio),
        "miss-cost ratio {ratio:.2} outside the paper-like band"
    );
}

#[test]
fn second_chance_beats_badly_tuned_linear() {
    // Table 1: at low rates a badly chosen α makes the linear policy
    // worse than second-chance.
    let s = medium(5.0, SEED);
    let second = run_experiment(&ExperimentConfig::cup(s.clone()));
    let mut linear = ExperimentConfig::cup(s);
    linear.node_config = NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha: 0.25 });
    let linear = run_experiment(&linear);
    assert_no_costlier("second-chance vs linear α=0.25", &second, &linear);
}

#[test]
fn push_level_zero_matches_standard_caching_shape() {
    let s = sized(128, 10.0);
    let mut level0 = ExperimentConfig::cup(s.clone());
    level0.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 0 });
    let level0 = run_experiment(&level0);
    assert_eq!(level0.overhead(), 0, "level 0 pushes nothing");
    let std = run_experiment(&ExperimentConfig::standard_caching(s));
    // Level-0 CUP still coalesces; it must not cost more than the
    // baseline.
    assert_no_costlier("level-0 CUP vs standard caching", &level0, &std);
}

#[test]
fn deeper_push_levels_cut_misses() {
    let s = medium(10.0, SEED);
    let run_level = |level: u32| {
        let mut c = ExperimentConfig::cup(s.clone());
        c.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level });
        run_experiment(&c)
    };
    let shallow = run_level(0);
    let mid = run_level(4);
    let deep = run_level(16);
    assert!(mid.miss_cost() < shallow.miss_cost());
    assert!(deep.miss_cost() <= mid.miss_cost());
    assert!(deep.overhead() >= mid.overhead());
}

/// The DES side of the paper's economic claim: second-chance cut-offs
/// prune exactly the subscriptions whose updates were not paying for
/// themselves. The regime matters — with short entry lifetimes (many
/// refresh intervals per run) and per-node query rates too low to
/// justify every subscription, all-out push keeps feeding dead
/// subscribers while second-chance stops after two silent intervals.
#[test]
fn second_chance_justifies_better_than_all_out_push_in_sim() {
    let run = |policy: CutoffPolicy| {
        let mut s = medium(1.0, SEED);
        s.keys = 8;
        s.entry_lifetime = SimDuration::from_secs(100);
        let mut config = ExperimentConfig::cup(s);
        config.node_config = NodeConfig::cup_with_policy(policy);
        config.track_justification = true;
        run_experiment(&config)
    };
    let second = run(CutoffPolicy::second_chance());
    let always = run(CutoffPolicy::Always);
    assert!(second.tracked_updates > 0 && always.tracked_updates > 0);
    assert!(
        second.justified_fraction() > always.justified_fraction(),
        "second-chance justified ratio {:.3} must strictly beat all-out push {:.3}",
        second.justified_fraction(),
        always.justified_fraction()
    );
    assert!(
        second.total_cost() <= always.total_cost(),
        "second-chance total cost {} must not exceed all-out push {}",
        second.total_cost(),
        always.total_cost()
    );
}

/// The same claim on both runtimes, through the conformance script: the
/// worker-pool live runtime and the DES each report a strictly higher
/// justified ratio for second-chance than for `Always`, at equal or
/// lower total hop cost.
#[test]
fn second_chance_justifies_better_than_all_out_push_on_both_runtimes() {
    // Extra refresh rounds give the cut-offs time to prune the
    // no-longer-queried subscriptions that all-out push keeps feeding.
    let base = ConformanceSpec::small(OverlayKind::Can).with_refresh_rounds(6);
    let second_spec = base; // cup_default *is* second-chance
    let always_spec = base.with_config(NodeConfig::cup_with_policy(CutoffPolicy::Always));
    type Runner = fn(&ConformanceSpec) -> (Outcome, u64);
    for (runtime, run) in [("sim", run_sim as Runner), ("live", run_live as Runner)] {
        let (second, _) = run(&second_spec);
        let (always, _) = run(&always_spec);
        assert!(
            second.tracked > 0 && always.tracked > 0,
            "{runtime}: the script must generate tracked maintenance updates"
        );
        assert!(
            second.justified_ratio() > always.justified_ratio(),
            "{runtime}: second-chance ratio {:.3} ({}/{}) must strictly beat always {:.3} ({}/{})",
            second.justified_ratio(),
            second.justified,
            second.tracked,
            always.justified_ratio(),
            always.justified,
            always.tracked
        );
        assert!(
            second.hops <= always.hops,
            "{runtime}: second-chance hops {} must not exceed always {}",
            second.hops,
            always.hops
        );
    }
}

#[test]
fn scaling_the_network_grows_cup_advantage() {
    // Table 2's headline: "CUP reduces latency respectively by 5.5, 7.5,
    // and 11.8 hops per miss for the 1024, 2048, and 4096 node networks"
    // — the absolute hops-per-miss saving grows with network size.
    let saved = |nodes: usize| {
        let (cup, std) = run_cup_and_standard(sized(nodes, 2.0));
        std.miss_latency() - cup.miss_latency()
    };
    let small = saved(128);
    let large = saved(512);
    assert!(
        large > small && large > 1.0,
        "latency saving should grow with size: {small:.2} -> {large:.2}"
    );
}
