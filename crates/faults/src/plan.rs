//! Fault scripts: timed events and their stable spec-string surface.
//!
//! Workloads name faults as strings (mirroring `Scenario::policy_classes`,
//! which keeps `cup-workload` free of protocol dependencies):
//!
//! ```text
//! drop:0.05                 5% link loss for the whole run
//! drop:0.2@t=100..400       20% loss during [100 s, 400 s)
//! spike:3@t=50..80          per-hop latency ×3 during the window
//! crash:17@t=50             node 17 crashes at t = 50 s (no restart)
//! crash:17@t=50..90         ... and restarts cold at t = 90 s
//! partition:2@t=30..60      2-way partition during [30 s, 60 s)
//! ```
//!
//! [`FaultPlan::parse_specs`] turns a list of those specs into one sorted
//! event script.

use cup_des::SimTime;

/// The fault families a spec string can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Probabilistic per-message link loss.
    Drop,
    /// Multiplicative latency spike.
    Spike,
    /// Node crash (state wiped), with optional restart.
    Crash,
    /// K-way overlay partition, with optional heal.
    Partition,
}

cup_core::string_surface!(FaultKind {
    Drop => "drop",
    Spike => "spike",
    Crash => "crash",
    Partition => "partition",
});

/// One instantaneous change to the fault plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Sets the global per-message link-loss probability.
    SetLoss {
        /// Drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Sets the multiplicative factor on per-hop latency.
    SetLatencyFactor {
        /// Multiplier (1.0 = nominal).
        factor: f64,
    },
    /// Crashes a node: protocol state wiped, all traffic to it dropped.
    Crash {
        /// Dense index of the crashing node.
        node: usize,
    },
    /// Restarts a crashed node (cold cache, empty directory).
    Restart {
        /// Dense index of the restarting node.
        node: usize,
    },
    /// Splits the population into `groups` hash-assigned groups; messages
    /// crossing a group boundary are dropped.
    Partition {
        /// Number of groups (at least 2 to have any effect).
        groups: u32,
    },
    /// Heals the active partition.
    Heal,
}

/// One timed fault action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What changes.
    pub action: FaultAction,
}

/// An ordered script of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by fire time (stable for ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends one timed action (builder style).
    pub fn with(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Appends one timed action, keeping the script sorted by time
    /// (insertion order breaks ties).
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, action });
    }

    /// The not-yet-replayed events due at or before `until`, advancing
    /// `cursor` past them. A driver stepping a clock through the script
    /// calls this once per step with a persistent cursor (start at 0)
    /// and applies each returned event at exactly its `at` — the
    /// returned slice is in fire order, ties in insertion order.
    pub fn due(&self, cursor: &mut usize, until: SimTime) -> &[FaultEvent] {
        let start = (*cursor).min(self.events.len());
        let end = start + self.events[start..].partition_point(|e| e.at <= until);
        *cursor = end;
        &self.events[start..end]
    }

    /// Parses a list of fault spec strings (see the module docs for the
    /// grammar) into one plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed spec.
    pub fn parse_specs<S: AsRef<str>>(specs: &[S]) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for spec in specs {
            let spec = spec.as_ref();
            for ev in parse_spec(spec).map_err(|e| format!("fault spec '{spec}': {e}"))? {
                plan.push(ev.at, ev.action);
            }
        }
        Ok(plan)
    }
}

/// A parsed `@t=A` or `@t=A..B` suffix.
struct Window {
    from: SimTime,
    until: Option<SimTime>,
}

/// Splits `body@t=...` into the body and its (optional) time window.
fn split_window(spec: &str) -> Result<(&str, Option<Window>), String> {
    let Some((body, time)) = spec.split_once("@t=") else {
        return Ok((spec, None));
    };
    let (from, until) = match time.split_once("..") {
        Some((a, b)) => {
            let from = parse_secs(a)?;
            let until = parse_secs(b)?;
            if until <= from {
                return Err(format!("window {a}..{b} must end after it starts"));
            }
            (from, Some(until))
        }
        None => (parse_secs(time)?, None),
    };
    Ok((body, Some(Window { from, until })))
}

fn parse_secs(s: &str) -> Result<SimTime, String> {
    s.trim()
        .parse::<u64>()
        .map(SimTime::from_secs)
        .map_err(|_| format!("bad time '{s}' (whole seconds)"))
}

/// Parses one spec string into its (one or two) events.
fn parse_spec(spec: &str) -> Result<Vec<FaultEvent>, String> {
    let (body, window) = split_window(spec.trim())?;
    let (family, params) = body
        .split_once(':')
        .ok_or_else(|| "expected family:params".to_string())?;
    let kind = FaultKind::parse(family)
        .ok_or_else(|| format!("unknown fault family '{family}' (drop|spike|crash|partition)"))?;
    let at = window.as_ref().map_or(SimTime::ZERO, |w| w.from);
    let until = window.as_ref().and_then(|w| w.until);
    match kind {
        FaultKind::Drop => {
            let rate: f64 = params.parse().map_err(|_| format!("bad rate '{params}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("loss rate {rate} outside [0, 1]"));
            }
            let mut evs = vec![FaultEvent {
                at,
                action: FaultAction::SetLoss { rate },
            }];
            if let Some(until) = until {
                evs.push(FaultEvent {
                    at: until,
                    action: FaultAction::SetLoss { rate: 0.0 },
                });
            }
            Ok(evs)
        }
        FaultKind::Spike => {
            let factor: f64 = params
                .parse()
                .map_err(|_| format!("bad factor '{params}'"))?;
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(format!("latency factor {factor} must be positive"));
            }
            let mut evs = vec![FaultEvent {
                at,
                action: FaultAction::SetLatencyFactor { factor },
            }];
            if let Some(until) = until {
                evs.push(FaultEvent {
                    at: until,
                    action: FaultAction::SetLatencyFactor { factor: 1.0 },
                });
            }
            Ok(evs)
        }
        FaultKind::Crash => {
            let node: usize = params.parse().map_err(|_| format!("bad node '{params}'"))?;
            if window.is_none() {
                return Err("crash needs a time (@t=A or @t=A..B)".into());
            }
            let mut evs = vec![FaultEvent {
                at,
                action: FaultAction::Crash { node },
            }];
            if let Some(until) = until {
                evs.push(FaultEvent {
                    at: until,
                    action: FaultAction::Restart { node },
                });
            }
            Ok(evs)
        }
        FaultKind::Partition => {
            let groups: u32 = params
                .parse()
                .map_err(|_| format!("bad group count '{params}'"))?;
            if groups < 2 {
                return Err(format!("a {groups}-way partition partitions nothing"));
            }
            if window.is_none() {
                return Err("partition needs a time (@t=A or @t=A..B)".into());
            }
            let mut evs = vec![FaultEvent {
                at,
                action: FaultAction::Partition { groups },
            }];
            if let Some(until) = until {
                evs.push(FaultEvent {
                    at: until,
                    action: FaultAction::Heal,
                });
            }
            Ok(evs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(FaultKind::parse("meteor"), None);
    }

    #[test]
    fn whole_run_loss_spec() {
        let plan = FaultPlan::parse_specs(&["drop:0.05"]).unwrap();
        assert_eq!(
            plan.events(),
            &[FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::SetLoss { rate: 0.05 },
            }]
        );
    }

    #[test]
    fn windowed_specs_emit_paired_events() {
        let plan = FaultPlan::parse_specs(&["drop:0.2@t=100..400", "crash:17@t=50..90"]).unwrap();
        assert_eq!(plan.events().len(), 4);
        // Sorted by time across specs.
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(plan.events().iter().any(
            |e| e.action == FaultAction::Restart { node: 17 } && e.at == SimTime::from_secs(90)
        ));
        assert!(plan
            .events()
            .iter()
            .any(|e| e.action == FaultAction::SetLoss { rate: 0.0 }
                && e.at == SimTime::from_secs(400)));
    }

    #[test]
    fn partition_and_spike_specs() {
        let plan = FaultPlan::parse_specs(&["partition:2@t=30..60", "spike:3@t=10..20"]).unwrap();
        assert_eq!(plan.events().len(), 4);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::SetLatencyFactor { factor: 3.0 }
        );
        assert_eq!(plan.events()[3].action, FaultAction::Heal);
    }

    #[test]
    fn crash_without_restart_is_permanent() {
        let plan = FaultPlan::parse_specs(&["crash:3@t=7"]).unwrap();
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.events()[0].action, FaultAction::Crash { node: 3 });
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "drop:1.5",
            "drop:x",
            "drop",
            "crash:3",
            "crash:3@t=9..9",
            "crash:x@t=1",
            "partition:1@t=5..9",
            "partition:2",
            "spike:0@t=1..2",
            "meteor:1@t=5",
            "drop:0.1@t=abc",
        ] {
            let err = FaultPlan::parse_specs(&[bad]).unwrap_err();
            assert!(
                err.contains(bad),
                "error for '{bad}' must name the spec: {err}"
            );
        }
    }

    #[test]
    fn due_replays_the_script_in_order_without_repeats() {
        let plan = FaultPlan::parse_specs(&["drop:0.2@t=100..400", "crash:17@t=50..90"]).unwrap();
        let mut cursor = 0;
        // Nothing due before the first event.
        assert!(plan.due(&mut cursor, SimTime::from_secs(49)).is_empty());
        // Events at exactly `until` are due.
        let first = plan.due(&mut cursor, SimTime::from_secs(90));
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].action, FaultAction::Crash { node: 17 });
        assert_eq!(first[1].action, FaultAction::Restart { node: 17 });
        // Already-replayed events never come back.
        assert!(plan.due(&mut cursor, SimTime::from_secs(90)).is_empty());
        let rest = plan.due(&mut cursor, SimTime::from_secs(1_000));
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[1].action, FaultAction::SetLoss { rate: 0.0 });
        assert!(plan.due(&mut cursor, SimTime::MAX).is_empty(), "drained");
        // An overshot cursor is clamped, not a panic.
        let mut wild = 99;
        assert!(plan.due(&mut wild, SimTime::MAX).is_empty());
    }

    #[test]
    fn builder_keeps_time_order_with_stable_ties() {
        let plan = FaultPlan::none()
            .with(SimTime::from_secs(5), FaultAction::Heal)
            .with(SimTime::from_secs(1), FaultAction::Crash { node: 0 })
            .with(SimTime::from_secs(5), FaultAction::Crash { node: 1 });
        assert_eq!(plan.events()[0].action, FaultAction::Crash { node: 0 });
        assert_eq!(plan.events()[1].action, FaultAction::Heal);
        assert_eq!(plan.events()[2].action, FaultAction::Crash { node: 1 });
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }
}
