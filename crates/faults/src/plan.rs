//! Fault scripts: timed events and their stable spec-string surface.
//!
//! Workloads name faults as strings (mirroring `Scenario::policy_classes`,
//! which keeps `cup-workload` free of protocol dependencies):
//!
//! ```text
//! drop:0.05                 5% link loss for the whole run
//! drop:0.2@t=100..400       20% loss during [100 s, 400 s)
//! spike:3@t=50..80          per-hop latency ×3 during the window
//! crash:17@t=50             node 17 crashes at t = 50 s (no restart)
//! crash:17@t=50..90         ... and restarts cold at t = 90 s
//! partition:2@t=30..60      2-way partition during [30 s, 60 s)
//! stale-serve:17            node 17 ignores deletions (and audit
//!                           repairs) from t = 0, forever
//! stale-serve:17@t=50..200  ... only during [50 s, 200 s)
//! drop-updates:9            node 9 silently drops its outbound
//!                           maintenance updates (queries still flow)
//! lie-refresh:3@t=40        node 3 rewrites deletions it forwards into
//!                           fresh-looking refreshes from t = 40 s
//! ```
//!
//! [`FaultPlan::parse_specs`] turns a list of those specs into one sorted
//! event script. A single spec's structured form is [`FaultSpec`], whose
//! `FromStr`/`Display` pair round-trips: `Display` prints the canonical
//! spelling, which parses back to the same value.

use std::fmt;
use std::str::FromStr;

use cup_des::SimTime;

/// The fault families a spec string can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Probabilistic per-message link loss.
    Drop,
    /// Multiplicative latency spike.
    Spike,
    /// Node crash (state wiped), with optional restart.
    Crash,
    /// K-way overlay partition, with optional heal.
    Partition,
    /// Behavior fault: the node keeps serving entries it should retire
    /// (inbound deletions and audit repairs are swallowed).
    StaleServe,
    /// Behavior fault: the node silently drops its outbound maintenance
    /// updates while still forwarding queries and first-time answers.
    DropUpdates,
    /// Behavior fault: the node rewrites deletions it forwards into
    /// fresh-looking refreshes (false versions downstream).
    LieRefresh,
}

cup_core::string_surface!(FaultKind {
    Drop => "drop",
    Spike => "spike",
    Crash => "crash",
    Partition => "partition",
    StaleServe => "stale-serve",
    DropUpdates => "drop-updates",
    LieRefresh => "lie-refresh",
});

/// A per-node behavior override: how a Byzantine node misbehaves while
/// staying up and routable. Installed and removed by
/// [`FaultAction::SetBehavior`]/[`FaultAction::ClearBehavior`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Serve deliberately stale entries: inbound deletions and audit
    /// repairs are swallowed, so the node (and its subtree) keeps
    /// answering from entries the rest of the network has retired.
    StaleServe,
    /// Silently drop outbound maintenance updates while still forwarding
    /// queries and answering with first-time updates.
    DropUpdates,
    /// Report false versions: deletions this node forwards are rewritten
    /// into refreshes, resurrecting dead replicas downstream.
    LieRefresh,
}

cup_core::string_surface!(Behavior {
    StaleServe => "stale-serve",
    DropUpdates => "drop-updates",
    LieRefresh => "lie-refresh",
});

/// One instantaneous change to the fault plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Sets the global per-message link-loss probability.
    SetLoss {
        /// Drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Sets the multiplicative factor on per-hop latency.
    SetLatencyFactor {
        /// Multiplier (1.0 = nominal).
        factor: f64,
    },
    /// Crashes a node: protocol state wiped, all traffic to it dropped.
    Crash {
        /// Dense index of the crashing node.
        node: usize,
    },
    /// Restarts a crashed node (cold cache, empty directory).
    Restart {
        /// Dense index of the restarting node.
        node: usize,
    },
    /// Splits the population into `groups` hash-assigned groups; messages
    /// crossing a group boundary are dropped.
    Partition {
        /// Number of groups (at least 2 to have any effect).
        groups: u32,
    },
    /// Heals the active partition.
    Heal,
    /// Installs a behavior override: the node starts misbehaving.
    SetBehavior {
        /// Dense index of the misbehaving node.
        node: usize,
        /// How it misbehaves.
        behavior: Behavior,
    },
    /// Removes a behavior override: the node behaves honestly again
    /// (whatever damage its caches took stays until the protocol or the
    /// audit repairs it).
    ClearBehavior {
        /// Dense index of the recovering node.
        node: usize,
        /// The override being lifted.
        behavior: Behavior,
    },
}

/// One timed fault action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What changes.
    pub action: FaultAction,
}

/// An ordered script of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by fire time (stable for ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends one timed action (builder style).
    pub fn with(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Appends one timed action, keeping the script sorted by time
    /// (insertion order breaks ties).
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, action });
    }

    /// The not-yet-replayed events due at or before `until`, advancing
    /// `cursor` past them. A driver stepping a clock through the script
    /// calls this once per step with a persistent cursor (start at 0)
    /// and applies each returned event at exactly its `at` — the
    /// returned slice is in fire order, ties in insertion order.
    pub fn due(&self, cursor: &mut usize, until: SimTime) -> &[FaultEvent] {
        let start = (*cursor).min(self.events.len());
        let end = start + self.events[start..].partition_point(|e| e.at <= until);
        *cursor = end;
        &self.events[start..end]
    }

    /// Parses a list of fault spec strings (see the module docs for the
    /// grammar) into one plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed spec,
    /// naming the offending token.
    pub fn parse_specs<S: AsRef<str>>(specs: &[S]) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for spec in specs {
            let spec = spec.as_ref();
            let parsed: FaultSpec = spec
                .parse()
                .map_err(|e| format!("fault spec '{spec}': {e}"))?;
            for ev in parsed.events() {
                plan.push(ev.at, ev.action);
            }
        }
        Ok(plan)
    }
}

/// The parameter a fault family takes, in structured form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecParam {
    /// `drop`: loss probability in `[0, 1]`.
    Rate(f64),
    /// `spike`: positive finite latency multiplier.
    Factor(f64),
    /// `crash` and the behavior families: a dense node index.
    Node(usize),
    /// `partition`: group count (≥ 2).
    Groups(u32),
}

impl fmt::Display for SpecParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecParam::Rate(v) | SpecParam::Factor(v) => write!(f, "{v}"),
            SpecParam::Node(v) => write!(f, "{v}"),
            SpecParam::Groups(v) => write!(f, "{v}"),
        }
    }
}

/// A parsed `@t=A` or `@t=A..B` suffix, in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecWindow {
    /// When the fault switches on.
    pub from_secs: u64,
    /// When it reverts, if the window is closed.
    pub until_secs: Option<u64>,
}

impl fmt::Display for SpecWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@t={}", self.from_secs)?;
        if let Some(until) = self.until_secs {
            write!(f, "..{until}")?;
        }
        Ok(())
    }
}

/// One fault spec in structured form: family, parameter, optional window.
///
/// `FromStr` validates exactly what [`FaultPlan::parse_specs`] accepts;
/// `Display` prints the canonical spelling, and parsing that spelling
/// yields the same value back (the round-trip the spec-grammar proptest
/// pins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault family.
    pub kind: FaultKind,
    /// Its parameter (paired with the family by parsing/validation).
    pub param: SpecParam,
    /// The optional time window. `None` means "for the whole run" for
    /// the families that allow it (drop, spike, behaviors).
    pub window: Option<SpecWindow>,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind.name(), self.param)?;
        if let Some(w) = self.window {
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(spec: &str) -> Result<FaultSpec, String> {
        let (body, window) = split_window(spec.trim())?;
        let (family, params) = body
            .split_once(':')
            .ok_or_else(|| format!("'{body}' has no ':' separator (expected family:params)"))?;
        let kind = FaultKind::parse(family).ok_or_else(|| {
            let known = FaultKind::ALL.map(|k| k.name()).join("|");
            format!("unknown fault family '{family}' ({known})")
        })?;
        let param = match kind {
            FaultKind::Drop => {
                let rate: f64 = params.parse().map_err(|_| format!("bad rate '{params}'"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("loss rate {rate} outside [0, 1]"));
                }
                SpecParam::Rate(rate)
            }
            FaultKind::Spike => {
                let factor: f64 = params
                    .parse()
                    .map_err(|_| format!("bad factor '{params}'"))?;
                if !(factor > 0.0 && factor.is_finite()) {
                    return Err(format!("latency factor {factor} must be positive"));
                }
                SpecParam::Factor(factor)
            }
            FaultKind::Crash
            | FaultKind::StaleServe
            | FaultKind::DropUpdates
            | FaultKind::LieRefresh => {
                let node: usize = params.parse().map_err(|_| format!("bad node '{params}'"))?;
                SpecParam::Node(node)
            }
            FaultKind::Partition => {
                let groups: u32 = params
                    .parse()
                    .map_err(|_| format!("bad group count '{params}'"))?;
                if groups < 2 {
                    return Err(format!("a {groups}-way partition partitions nothing"));
                }
                SpecParam::Groups(groups)
            }
        };
        if window.is_none() && matches!(kind, FaultKind::Crash | FaultKind::Partition) {
            return Err(format!("'{family}' needs a time (@t=A or @t=A..B)"));
        }
        Ok(FaultSpec {
            kind,
            param,
            window,
        })
    }
}

impl FaultSpec {
    /// The (one or two) timed events the spec expands to: the onset
    /// action at the window start (t = 0 when unwindowed), and — for
    /// closed windows — the matching reversal at the window end.
    ///
    /// # Panics
    ///
    /// Panics if `kind` and `param` were paired by hand in a combination
    /// the grammar never produces (e.g. a `drop` with a node index).
    pub fn events(&self) -> Vec<FaultEvent> {
        let at = self
            .window
            .map_or(SimTime::ZERO, |w| SimTime::from_secs(w.from_secs));
        let until = self
            .window
            .and_then(|w| w.until_secs)
            .map(SimTime::from_secs);
        let (set, clear) = match (self.kind, self.param) {
            (FaultKind::Drop, SpecParam::Rate(rate)) => (
                FaultAction::SetLoss { rate },
                FaultAction::SetLoss { rate: 0.0 },
            ),
            (FaultKind::Spike, SpecParam::Factor(factor)) => (
                FaultAction::SetLatencyFactor { factor },
                FaultAction::SetLatencyFactor { factor: 1.0 },
            ),
            (FaultKind::Crash, SpecParam::Node(node)) => {
                (FaultAction::Crash { node }, FaultAction::Restart { node })
            }
            (FaultKind::Partition, SpecParam::Groups(groups)) => {
                (FaultAction::Partition { groups }, FaultAction::Heal)
            }
            (FaultKind::StaleServe, SpecParam::Node(node)) => {
                behavior_pair(node, Behavior::StaleServe)
            }
            (FaultKind::DropUpdates, SpecParam::Node(node)) => {
                behavior_pair(node, Behavior::DropUpdates)
            }
            (FaultKind::LieRefresh, SpecParam::Node(node)) => {
                behavior_pair(node, Behavior::LieRefresh)
            }
            (kind, param) => panic!("{kind} spec cannot carry {param:?}"),
        };
        let mut evs = vec![FaultEvent { at, action: set }];
        if let Some(until) = until {
            evs.push(FaultEvent {
                at: until,
                action: clear,
            });
        }
        evs
    }
}

/// The set/clear action pair of one behavior window.
fn behavior_pair(node: usize, behavior: Behavior) -> (FaultAction, FaultAction) {
    (
        FaultAction::SetBehavior { node, behavior },
        FaultAction::ClearBehavior { node, behavior },
    )
}

/// Splits `body@t=...` into the body and its (optional) time window.
fn split_window(spec: &str) -> Result<(&str, Option<SpecWindow>), String> {
    let Some((body, time)) = spec.split_once("@t=") else {
        return Ok((spec, None));
    };
    let (from, until) = match time.split_once("..") {
        Some((a, b)) => {
            let from = parse_secs(a)?;
            let until = parse_secs(b)?;
            if until <= from {
                return Err(format!("window {a}..{b} must end after it starts"));
            }
            (from, Some(until))
        }
        None => (parse_secs(time)?, None),
    };
    Ok((
        body,
        Some(SpecWindow {
            from_secs: from,
            until_secs: until,
        }),
    ))
}

fn parse_secs(s: &str) -> Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("bad time '{s}' (whole seconds)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        for behavior in Behavior::ALL {
            assert_eq!(Behavior::parse(behavior.name()), Some(behavior));
        }
        assert_eq!(FaultKind::parse("meteor"), None);
    }

    #[test]
    fn whole_run_loss_spec() {
        let plan = FaultPlan::parse_specs(&["drop:0.05"]).unwrap();
        assert_eq!(
            plan.events(),
            &[FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::SetLoss { rate: 0.05 },
            }]
        );
    }

    #[test]
    fn windowed_specs_emit_paired_events() {
        let plan = FaultPlan::parse_specs(&["drop:0.2@t=100..400", "crash:17@t=50..90"]).unwrap();
        assert_eq!(plan.events().len(), 4);
        // Sorted by time across specs.
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(plan.events().iter().any(
            |e| e.action == FaultAction::Restart { node: 17 } && e.at == SimTime::from_secs(90)
        ));
        assert!(plan
            .events()
            .iter()
            .any(|e| e.action == FaultAction::SetLoss { rate: 0.0 }
                && e.at == SimTime::from_secs(400)));
    }

    #[test]
    fn partition_and_spike_specs() {
        let plan = FaultPlan::parse_specs(&["partition:2@t=30..60", "spike:3@t=10..20"]).unwrap();
        assert_eq!(plan.events().len(), 4);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::SetLatencyFactor { factor: 3.0 }
        );
        assert_eq!(plan.events()[3].action, FaultAction::Heal);
    }

    #[test]
    fn crash_without_restart_is_permanent() {
        let plan = FaultPlan::parse_specs(&["crash:3@t=7"]).unwrap();
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.events()[0].action, FaultAction::Crash { node: 3 });
    }

    #[test]
    fn behavior_specs_install_and_lift_overrides() {
        let plan = FaultPlan::parse_specs(&[
            "stale-serve:17@t=50..200",
            "drop-updates:9",
            "lie-refresh:3@t=40",
        ])
        .unwrap();
        assert_eq!(plan.events().len(), 4, "one closed window, two open ends");
        // Unwindowed behavior faults are permanent from t = 0.
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::SetBehavior {
                    node: 9,
                    behavior: Behavior::DropUpdates,
                },
            }
        );
        assert!(plan.events().iter().any(|e| e.at == SimTime::from_secs(40)
            && e.action
                == FaultAction::SetBehavior {
                    node: 3,
                    behavior: Behavior::LieRefresh,
                }));
        // The closed window lifts the override at its end.
        assert!(plan.events().iter().any(|e| e.at == SimTime::from_secs(200)
            && e.action
                == FaultAction::ClearBehavior {
                    node: 17,
                    behavior: Behavior::StaleServe,
                }));
    }

    #[test]
    fn specs_display_their_canonical_spelling_and_reparse() {
        for spec in [
            "drop:0.05",
            "drop:0.2@t=100..400",
            "spike:3@t=50..80",
            "crash:17@t=50",
            "partition:2@t=30..60",
            "stale-serve:17@t=50..200",
            "drop-updates:9",
            "lie-refresh:3@t=40",
        ] {
            let parsed: FaultSpec = spec.parse().unwrap();
            let printed = parsed.to_string();
            let reparsed: FaultSpec = printed.parse().unwrap();
            assert_eq!(parsed, reparsed, "'{spec}' → '{printed}' must round-trip");
            assert_eq!(parsed.events(), reparsed.events());
        }
        // The canonical spelling normalizes numeric forms but nothing else.
        let spec: FaultSpec = "drop:.5@t= 7".parse().unwrap();
        assert_eq!(spec.to_string(), "drop:0.5@t=7");
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "drop:1.5",
            "drop:x",
            "drop",
            "crash:3",
            "crash:3@t=9..9",
            "crash:x@t=1",
            "partition:1@t=5..9",
            "partition:2",
            "spike:0@t=1..2",
            "meteor:1@t=5",
            "drop:0.1@t=abc",
            "stale-serve:x",
            "lie-refresh",
        ] {
            let err = FaultPlan::parse_specs(&[bad]).unwrap_err();
            assert!(
                err.contains(bad),
                "error for '{bad}' must name the spec: {err}"
            );
        }
        // Errors name the offending token, not just the whole spec.
        let err = FaultPlan::parse_specs(&["meteor:1@t=5"]).unwrap_err();
        assert!(err.contains("'meteor'"), "family named: {err}");
        let err = FaultPlan::parse_specs(&["drop-updates:abc"]).unwrap_err();
        assert!(err.contains("'abc'"), "bad node token named: {err}");
        let err = FaultPlan::parse_specs(&["drop"]).unwrap_err();
        assert!(
            err.contains("no ':' separator"),
            "missing colon named: {err}"
        );
        let err = FaultPlan::parse_specs(&["drop:0.1@t=abc"]).unwrap_err();
        assert!(err.contains("'abc'"), "bad time token named: {err}");
    }

    #[test]
    fn due_replays_the_script_in_order_without_repeats() {
        let plan = FaultPlan::parse_specs(&["drop:0.2@t=100..400", "crash:17@t=50..90"]).unwrap();
        let mut cursor = 0;
        // Nothing due before the first event.
        assert!(plan.due(&mut cursor, SimTime::from_secs(49)).is_empty());
        // Events at exactly `until` are due.
        let first = plan.due(&mut cursor, SimTime::from_secs(90));
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].action, FaultAction::Crash { node: 17 });
        assert_eq!(first[1].action, FaultAction::Restart { node: 17 });
        // Already-replayed events never come back.
        assert!(plan.due(&mut cursor, SimTime::from_secs(90)).is_empty());
        let rest = plan.due(&mut cursor, SimTime::from_secs(1_000));
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[1].action, FaultAction::SetLoss { rate: 0.0 });
        assert!(plan.due(&mut cursor, SimTime::MAX).is_empty(), "drained");
        // An overshot cursor is clamped, not a panic.
        let mut wild = 99;
        assert!(plan.due(&mut wild, SimTime::MAX).is_empty());
    }

    #[test]
    fn builder_keeps_time_order_with_stable_ties() {
        let plan = FaultPlan::none()
            .with(SimTime::from_secs(5), FaultAction::Heal)
            .with(SimTime::from_secs(1), FaultAction::Crash { node: 0 })
            .with(SimTime::from_secs(5), FaultAction::Crash { node: 1 });
        assert_eq!(plan.events()[0].action, FaultAction::Crash { node: 0 });
        assert_eq!(plan.events()[1].action, FaultAction::Heal);
        assert_eq!(plan.events()[2].action, FaultAction::Crash { node: 1 });
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }
}
