//! A small Rust lexer that separates *code* from *prose*.
//!
//! Every rule in this crate works on a **masked** view of a source file:
//! the original text with comments, string literals, raw strings, byte
//! strings, and char literals blanked out (each non-newline byte replaced
//! by a space). Byte offsets and line numbers are preserved exactly, so a
//! finding located in masked text maps 1:1 onto the original file — but a
//! banned construct mentioned in a doc comment or an error string can
//! never fire a rule.
//!
//! The same pass extracts `// cup-lint: allow(<rule>, "<reason>")`
//! pragmas (which live *in* comments, so they are read from the original
//! text, not the mask) and can additionally blank `#[cfg(test)]` items
//! for rules that only police production code paths.

/// An inline suppression comment: `// cup-lint: allow(rule, "reason")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on. A trailing pragma covers
    /// findings of its rule on its own line; a pragma on a line of its
    /// own covers the line directly below it.
    pub line: usize,
    /// True when the pragma is the whole line (nothing but the comment),
    /// i.e. it annotates the *next* line rather than its own.
    pub own_line: bool,
    /// Rule name the pragma targets.
    pub rule: String,
    /// Stated justification. `None` when the pragma omits it — the engine
    /// turns that into a finding of its own, so every suppression in the
    /// tree carries a reason.
    pub reason: Option<String>,
}

/// Replaces every comment, string/raw-string/byte-string literal, and
/// char literal with spaces (newlines are kept), returning a same-length
/// string in which only code survives.
pub fn mask(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, i, 2);
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, i, 2);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_string(b, &mut out, i),
            b'r' | b'b' if !ident_before(b, i) => {
                if let Some(r_at) = raw_string_at(b, i) {
                    i = mask_raw(b, &mut out, i, r_at);
                } else if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                    // Plain byte string `b"…"`: blank the prefix, then
                    // the literal like any other string.
                    blank(&mut out, i, 1);
                    i = mask_string(b, &mut out, i + 1);
                } else if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                    blank(&mut out, i, 1);
                    i = mask_char(b, &mut out, i + 1);
                } else {
                    i += 1;
                }
            }
            b'\'' => i = mask_char(b, &mut out, i),
            _ => i += 1,
        }
    }
    // Masked regions were blanked byte-wise, so multi-byte UTF-8 inside
    // them collapses to ASCII spaces; code regions are copied verbatim.
    String::from_utf8(out).expect("mask preserves code bytes and blanks the rest to ASCII")
}

fn blank(out: &mut [u8], at: usize, n: usize) {
    for slot in out.iter_mut().skip(at).take(n) {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// True when the byte before `i` continues an identifier, i.e. the `r` /
/// `b` at `i` is the tail of a name like `attr` rather than a literal
/// prefix.
fn ident_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If `i` starts a raw or raw-byte string (`r"`, `r#…#"`, `br"`,
/// `br#…#"`), returns the index of its `r`.
fn raw_string_at(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        let mut k = j + 1;
        while k < b.len() && b[k] == b'#' {
            k += 1;
        }
        if k < b.len() && b[k] == b'"' {
            return Some(j);
        }
    }
    None
}

/// Masks a `"..."` literal starting at the quote; returns the index after
/// the closing quote.
fn mask_string(b: &[u8], out: &mut [u8], start: usize) -> usize {
    blank(out, start, 1);
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                blank(out, i, 2.min(b.len() - i));
                i += 2;
            }
            b'"' => {
                blank(out, i, 1);
                return i + 1;
            }
            _ => {
                if b[i] != b'\n' {
                    out[i] = b' ';
                }
                i += 1;
            }
        }
    }
    i
}

/// Masks a raw (or raw byte) string. `start` is the first byte of the
/// whole literal (possibly a `b`); `r_at` the index of its `r`.
fn mask_raw(b: &[u8], out: &mut [u8], start: usize, r_at: usize) -> usize {
    let mut hashes = 0usize;
    let mut i = r_at + 1;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == b'"');
    blank(out, start, i - start + 1);
    i += 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            blank(out, i, hashes + 1);
            return i + hashes + 1;
        }
        if b[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

/// Distinguishes a char literal from a lifetime at a `'`. A char literal
/// is masked; a lifetime is code and left alone.
fn mask_char(b: &[u8], out: &mut [u8], start: usize) -> usize {
    let rest = &b[start + 1..];
    let lit_len = match rest.first() {
        Some(b'\\') => {
            // Escape: find the closing quote within a short window
            // (longest escape is `\u{10FFFF}` = 10 bytes).
            rest.iter()
                .take(12)
                .position(|&c| c == b'\'')
                .map(|p| p + 1)
        }
        Some(&c) if c != b'\'' => {
            // One char (possibly multi-byte UTF-8) then a quote.
            let n = utf8_len(c);
            (rest.len() > n && rest[n] == b'\'').then_some(n + 1)
        }
        _ => None,
    };
    match lit_len {
        Some(n) => {
            blank(out, start, n + 1);
            start + n + 1
        }
        // A lifetime (or stray quote): leave it in the code view.
        None => start + 1,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Extracts `// cup-lint: allow(rule, "reason")` pragmas from the
/// *original* text (pragmas live inside comments, which the mask erases).
pub fn pragmas(source: &str) -> Vec<Pragma> {
    const MARKER: &str = "cup-lint: allow(";
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(at) = line.find(MARKER) else {
            continue;
        };
        // Only honor the marker inside a line comment.
        if !line[..at].contains("//") {
            continue;
        }
        let body = &line[at + MARKER.len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let inner = &body[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => {
                let why = why.trim().trim_matches('"').trim();
                (r.trim(), (!why.is_empty()).then(|| why.to_string()))
            }
            None => (inner.trim(), None),
        };
        if !rule.is_empty() {
            let comment_at = line[..at].rfind("//").expect("checked above");
            out.push(Pragma {
                line: idx + 1,
                own_line: line[..comment_at].trim().is_empty(),
                rule: rule.to_string(),
                reason,
            });
        }
    }
    out
}

/// Blanks the bodies of `#[cfg(test)]` items in an already-masked view,
/// for rules that only police production code. Matches the attribute in
/// code (so a doc-comment mention never triggers it), then blanks from
/// the next `{` to its matching `}`.
pub fn mask_cfg_test(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find("#[cfg(test)]") {
        let attr = search + rel;
        let after = attr + "#[cfg(test)]".len();
        let Some(open_rel) = masked[after..].find('{') else {
            break;
        };
        let open = after + open_rel;
        let mut depth = 0usize;
        let mut end = masked.len();
        for (off, c) in masked[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + off + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        blank(&mut out, attr, end - attr);
        search = end;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8")
}
