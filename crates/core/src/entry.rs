//! Index entries: the `(key, value)` pairs of the global index.
//!
//! The value of an index entry points at one replica serving the content
//! associated with the key (§2.1). Every entry carries a lifetime and the
//! timestamp at which the lifetime was set; it is *fresh* until the
//! lifetime elapses and may not be used to answer queries afterwards.

use cup_des::{KeyId, ReplicaId, SimDuration, SimTime};

/// One index entry: "replica `replica` serves key `key`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// The key this entry indexes.
    pub key: KeyId,
    /// The replica serving the content (the paper's value/IP pointer).
    pub replica: ReplicaId,
    /// How long the entry is valid from `stamped_at`.
    pub lifetime: SimDuration,
    /// When the lifetime was set.
    pub stamped_at: SimTime,
}

impl IndexEntry {
    /// Creates an entry valid for `lifetime` starting at `now`.
    pub fn new(key: KeyId, replica: ReplicaId, lifetime: SimDuration, now: SimTime) -> Self {
        IndexEntry {
            key,
            replica,
            lifetime,
            stamped_at: now,
        }
    }

    /// The instant the entry expires.
    pub fn expires_at(&self) -> SimTime {
        self.stamped_at.saturating_add(self.lifetime)
    }

    /// Returns `true` while the entry may be used to answer queries.
    ///
    /// Following §2.1: the entry has expired when the difference between
    /// the current time and the timestamp exceeds the lifetime.
    pub fn is_fresh(&self, now: SimTime) -> bool {
        now < self.expires_at()
    }

    /// Extends the entry with a new lifetime starting at `now` (the effect
    /// of a refresh update).
    pub fn refresh(&mut self, lifetime: SimDuration, now: SimTime) {
        self.lifetime = lifetime;
        self.stamped_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_secs: u64, life_secs: u64) -> IndexEntry {
        IndexEntry::new(
            KeyId(1),
            ReplicaId(2),
            SimDuration::from_secs(life_secs),
            SimTime::from_secs(at_secs),
        )
    }

    #[test]
    fn fresh_until_expiry() {
        let e = entry(100, 300);
        assert!(e.is_fresh(SimTime::from_secs(100)));
        assert!(e.is_fresh(SimTime::from_secs(399)));
        assert!(!e.is_fresh(SimTime::from_secs(400)), "expiry is exclusive");
        assert!(!e.is_fresh(SimTime::from_secs(1000)));
        assert_eq!(e.expires_at(), SimTime::from_secs(400));
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut e = entry(100, 300);
        e.refresh(SimDuration::from_secs(300), SimTime::from_secs(400));
        assert!(e.is_fresh(SimTime::from_secs(500)));
        assert_eq!(e.expires_at(), SimTime::from_secs(700));
    }

    #[test]
    fn zero_lifetime_never_fresh() {
        let e = IndexEntry::new(
            KeyId(1),
            ReplicaId(1),
            SimDuration::ZERO,
            SimTime::from_secs(5),
        );
        assert!(!e.is_fresh(SimTime::from_secs(5)));
    }
}
