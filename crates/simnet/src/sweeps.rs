//! Parameter sweeps reproducing every table and figure of the paper —
//! run as a thread-parallel sweep subsystem.
//!
//! Each function takes a *base* scenario so callers choose the scale: the
//! `repro` binary uses the paper's parameters (2¹⁰ nodes, 3 000 s of
//! querying), the Criterion benches use scaled-down versions with the same
//! shape.
//!
//! Every grid point is an independent deterministic DES run, so each
//! sweep flattens its grid into a job list and farms it over
//! [`crate::par::parallel_map`] — results come back in input order, which
//! makes the parallel path byte-identical to the serial one (`workers =
//! 1`). The `*_with` variants expose the worker count; the plain
//! functions use the machine's available parallelism.

use cup_core::{AuditConfig, CutoffPolicy, NodeConfig, ResetMode};
use cup_des::SimDuration;
use cup_workload::{capacity::CapacityProfile, Scenario};

use crate::experiment::{run_experiment, ExperimentConfig};
use crate::metrics::ExperimentResult;
use crate::par::{default_workers, parallel_map};

/// Runs one grid point: `base` at `rate` under `node_config`.
fn run_point(base: &Scenario, node_config: NodeConfig, rate: f64) -> ExperimentResult {
    let scenario = Scenario {
        query_rate: rate,
        ..base.clone()
    };
    run_experiment(&ExperimentConfig {
        node_config,
        ..ExperimentConfig::cup(scenario)
    })
}

/// One point of the Figure 3/4 push-level sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PushLevelPoint {
    /// Network-wide query rate (q/s).
    pub rate: f64,
    /// Push level p (0 = standard caching).
    pub level: u32,
    /// Total cost in hops.
    pub total_cost: u64,
    /// Miss cost in hops.
    pub miss_cost: u64,
}

/// Figures 3 and 4: total and miss cost versus push level.
///
/// "A push level of p means that updates are propagated to all nodes that
/// have queried for the key and that are at most p hops from the
/// authority node. A push level of 0 corresponds to standard caching."
pub fn push_level_sweep(base: &Scenario, rates: &[f64], levels: &[u32]) -> Vec<PushLevelPoint> {
    push_level_sweep_with(base, rates, levels, default_workers())
}

/// [`push_level_sweep`] with an explicit sweep worker count.
pub fn push_level_sweep_with(
    base: &Scenario,
    rates: &[f64],
    levels: &[u32],
    workers: usize,
) -> Vec<PushLevelPoint> {
    let grid: Vec<(f64, u32)> = rates
        .iter()
        .flat_map(|&rate| levels.iter().map(move |&level| (rate, level)))
        .collect();
    parallel_map(&grid, workers, |&(rate, level)| {
        let r = run_point(
            base,
            NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level }),
            rate,
        );
        PushLevelPoint {
            rate,
            level,
            total_cost: r.total_cost(),
            miss_cost: r.miss_cost(),
        }
    })
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Human-readable policy name in the paper's wording.
    pub policy: String,
    /// Total cost per query rate, aligned with the requested rates.
    pub total_costs: Vec<u64>,
    /// Total cost normalized by standard caching at the same rate.
    pub normalized: Vec<f64>,
}

/// Table 1: total cost for varying cut-off policies.
///
/// Runs standard caching, linear and logarithmic thresholds for several
/// α values, second-chance, and the optimal push level (the minimum over
/// `optimal_levels`).
pub fn policy_table(base: &Scenario, rates: &[f64], optimal_levels: &[u32]) -> Vec<PolicyRow> {
    policy_table_with(base, rates, optimal_levels, default_workers())
}

/// [`policy_table`] with an explicit sweep worker count.
pub fn policy_table_with(
    base: &Scenario,
    rates: &[f64],
    optimal_levels: &[u32],
    workers: usize,
) -> Vec<PolicyRow> {
    let mut policies: Vec<(String, NodeConfig)> =
        vec![("Standard Caching".into(), NodeConfig::standard_caching())];
    for alpha in [0.25, 0.10, 0.01, 0.001] {
        policies.push((
            format!("Linear, a = {alpha}"),
            NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha }),
        ));
    }
    for alpha in [0.5, 0.25, 0.10, 0.01] {
        policies.push((
            format!("Logarithmic, a = {alpha}"),
            NodeConfig::cup_with_policy(CutoffPolicy::Logarithmic { alpha }),
        ));
    }
    policies.push((
        "Second-chance".into(),
        NodeConfig::cup_with_policy(CutoffPolicy::second_chance()),
    ));

    // Flatten the whole table — named policies plus the push levels the
    // optimal row minimizes over — into one job list, one experiment
    // each.
    let mut jobs: Vec<(NodeConfig, f64)> = Vec::new();
    for (_, config) in &policies {
        for &rate in rates {
            jobs.push((*config, rate));
        }
    }
    for &level in optimal_levels {
        let config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level });
        for &rate in rates {
            jobs.push((config, rate));
        }
    }
    let costs: Vec<u64> = parallel_map(&jobs, workers, |&(config, rate)| {
        run_point(base, config, rate).total_cost()
    });

    // Reassemble in job order: `policies` rows first, rates fastest.
    let mut rows = Vec::new();
    let standard_costs: Vec<u64> = costs[..rates.len()].to_vec();
    for (i, (name, _)) in policies.iter().enumerate() {
        let row_costs = costs[i * rates.len()..(i + 1) * rates.len()].to_vec();
        let normalized = normalize(&row_costs, &standard_costs);
        rows.push(PolicyRow {
            policy: name.clone(),
            total_costs: row_costs,
            normalized,
        });
    }
    // Optimal push level: best total cost over the sweep, per rate.
    let mut optimal = vec![u64::MAX; rates.len()];
    let tail = &costs[policies.len() * rates.len()..];
    for (l, _) in optimal_levels.iter().enumerate() {
        for (i, _) in rates.iter().enumerate() {
            optimal[i] = optimal[i].min(tail[l * rates.len() + i]);
        }
    }
    let normalized = normalize(&optimal, &standard_costs);
    rows.push(PolicyRow {
        policy: "Optimal push level".into(),
        total_costs: optimal,
        normalized,
    });
    rows
}

fn normalize(costs: &[u64], baseline: &[u64]) -> Vec<f64> {
    costs
        .iter()
        .zip(baseline)
        .map(|(&c, &b)| if b == 0 { 0.0 } else { c as f64 / b as f64 })
        .collect()
}

/// One point of the `bench_policy` policy × query-rate grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyGridPoint {
    /// Stable policy name ([`CutoffPolicy::name`]).
    pub policy: String,
    /// Network-wide query rate (q/s).
    pub rate: f64,
    /// Total cost in hops.
    pub total_cost: u64,
    /// Miss cost in hops.
    pub miss_cost: u64,
    /// §3.1 justified maintenance updates.
    pub justified: u64,
    /// Maintenance updates tracked (justification denominator).
    pub tracked: u64,
    /// Client cache-hit rate.
    pub hit_rate: f64,
    /// Median client-query latency (µs of virtual time).
    pub query_p50_us: u64,
    /// p99 client-query latency (µs of virtual time) — deeper push
    /// levels trade maintenance cost for a shorter miss tail.
    pub query_p99_us: u64,
}

impl PolicyGridPoint {
    /// Fraction of tracked updates that were justified.
    pub fn justified_ratio(&self) -> f64 {
        ratio(self.justified, self.tracked)
    }
}

/// The policy × query-rate grid behind `BENCH_policy.json`: every
/// combination runs one justification-tracked experiment; rows come back
/// in `policies`-major, `rates`-minor order.
pub fn policy_rate_grid(
    base: &Scenario,
    policies: &[CutoffPolicy],
    rates: &[f64],
    workers: usize,
) -> Vec<PolicyGridPoint> {
    let grid: Vec<(CutoffPolicy, f64)> = policies
        .iter()
        .flat_map(|&p| rates.iter().map(move |&r| (p, r)))
        .collect();
    parallel_map(&grid, workers, |&(policy, rate)| {
        let scenario = Scenario {
            query_rate: rate,
            ..base.clone()
        };
        let config = ExperimentConfig {
            node_config: NodeConfig::cup_with_policy(policy),
            track_justification: true,
            ..ExperimentConfig::cup(scenario)
        };
        let r = run_experiment(&config);
        let hit_rate = ratio(r.nodes.client_hits, r.nodes.client_queries);
        PolicyGridPoint {
            policy: policy.name(),
            rate,
            total_cost: r.total_cost(),
            miss_cost: r.miss_cost(),
            justified: r.justified_updates,
            tracked: r.tracked_updates,
            hit_rate,
            query_p50_us: r.query_latency_us(500),
            query_p99_us: r.query_latency_us(990),
        }
    })
}

/// One column of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeColumn {
    /// Number of nodes.
    pub nodes: usize,
    /// CUP miss cost / standard-caching miss cost.
    pub miss_cost_ratio: f64,
    /// CUP average hops per miss.
    pub cup_miss_latency: f64,
    /// Standard-caching average hops per miss.
    pub std_miss_latency: f64,
    /// Saved miss hops per CUP overhead hop.
    pub saved_per_overhead: f64,
}

/// Table 2: CUP versus standard caching across network sizes (second-
/// chance policy).
pub fn size_sweep(base: &Scenario, sizes: &[usize]) -> Vec<SizeColumn> {
    size_sweep_with(base, sizes, default_workers())
}

/// [`size_sweep`] with an explicit sweep worker count.
pub fn size_sweep_with(base: &Scenario, sizes: &[usize], workers: usize) -> Vec<SizeColumn> {
    // Two jobs per size: the baseline and the CUP run.
    let jobs: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&nodes| [(nodes, false), (nodes, true)])
        .collect();
    let results = parallel_map(&jobs, workers, |&(nodes, cup)| {
        let scenario = Scenario {
            nodes,
            ..base.clone()
        };
        if cup {
            run_experiment(&ExperimentConfig::cup(scenario))
        } else {
            run_experiment(&ExperimentConfig::standard_caching(scenario))
        }
    });
    sizes
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&nodes, pair)| {
            let (std, cup) = (&pair[0], &pair[1]);
            SizeColumn {
                nodes,
                miss_cost_ratio: ratio(cup.miss_cost(), std.miss_cost()),
                cup_miss_latency: cup.miss_latency(),
                std_miss_latency: std.miss_latency(),
                saved_per_overhead: cup.saved_miss_overhead_ratio(std.miss_cost()),
            }
        })
        .collect()
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRow {
    /// Replicas per key.
    pub replicas: u32,
    /// Naive cut-off: miss cost.
    pub naive_miss_cost: u64,
    /// Naive cut-off: absolute misses.
    pub naive_misses: u64,
    /// Replica-independent cut-off: miss cost.
    pub fixed_miss_cost: u64,
    /// Replica-independent cut-off: absolute misses.
    pub fixed_misses: u64,
    /// Replica-independent cut-off: total cost.
    pub fixed_total_cost: u64,
}

/// Table 3: the effect of multiple replicas per key under the naive and
/// the replica-independent cut-off (second-chance policy, λ = 1 q/s in
/// the paper).
pub fn replica_sweep(base: &Scenario, replica_counts: &[u32]) -> Vec<ReplicaRow> {
    replica_sweep_with(base, replica_counts, default_workers())
}

/// [`replica_sweep`] with an explicit sweep worker count.
pub fn replica_sweep_with(
    base: &Scenario,
    replica_counts: &[u32],
    workers: usize,
) -> Vec<ReplicaRow> {
    // Two jobs per count: naive reset and replica-independent reset.
    let jobs: Vec<(u32, bool)> = replica_counts
        .iter()
        .flat_map(|&replicas| [(replicas, true), (replicas, false)])
        .collect();
    let results = parallel_map(&jobs, workers, |&(replicas, naive)| {
        let scenario = Scenario {
            replicas_per_key: replicas,
            ..base.clone()
        };
        let mut config = ExperimentConfig::cup(scenario);
        if naive {
            config.node_config.reset_mode = ResetMode::Naive;
        }
        run_experiment(&config)
    });
    replica_counts
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&replicas, pair)| {
            let (naive, fixed) = (&pair[0], &pair[1]);
            ReplicaRow {
                replicas,
                naive_miss_cost: naive.miss_cost(),
                naive_misses: naive.misses(),
                fixed_miss_cost: fixed.miss_cost(),
                fixed_misses: fixed.misses(),
                fixed_total_cost: fixed.total_cost(),
            }
        })
        .collect()
}

/// One point of the Figure 5/6 capacity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Reduced capacity c.
    pub capacity: f64,
    /// Total cost with the Up-And-Down profile.
    pub up_and_down: u64,
    /// Total cost with Once-Down-Always-Down.
    pub once_down: u64,
    /// Standard caching reference at the same rate.
    pub standard: u64,
}

/// Figures 5 and 6: total cost versus reduced capacity for the two §3.7
/// degradation profiles, plus the standard-caching horizontal reference.
pub fn capacity_sweep(base: &Scenario, capacities: &[f64]) -> Vec<CapacityPoint> {
    capacity_sweep_with(base, capacities, default_workers())
}

/// [`capacity_sweep`] with an explicit sweep worker count.
pub fn capacity_sweep_with(
    base: &Scenario,
    capacities: &[f64],
    workers: usize,
) -> Vec<CapacityPoint> {
    // Job 0 is the shared standard-caching reference; then two profile
    // runs per capacity.
    let mut jobs: Vec<Option<(f64, bool)>> = vec![None];
    for &c in capacities {
        jobs.push(Some((c, true)));
        jobs.push(Some((c, false)));
    }
    let results = parallel_map(&jobs, workers, |job| match job {
        None => run_experiment(&ExperimentConfig::standard_caching(base.clone())).total_cost(),
        Some((c, up_and_down)) => {
            let mut config = ExperimentConfig::cup(base.clone());
            config.capacity_profile = if *up_and_down {
                CapacityProfile::UpAndDown {
                    fraction: 0.2,
                    reduced: *c,
                }
            } else {
                CapacityProfile::OnceDownAlwaysDown {
                    fraction: 0.2,
                    reduced: *c,
                }
            };
            run_experiment(&config).total_cost()
        }
    });
    let standard = results[0];
    capacities
        .iter()
        .zip(results[1..].chunks_exact(2))
        .map(|(&capacity, pair)| CapacityPoint {
            capacity,
            up_and_down: pair[0],
            once_down: pair[1],
            standard,
        })
        .collect()
}

/// One point of the fault-plane grid behind `BENCH_faults.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultGridPoint {
    /// Stable policy name (`CutoffPolicy::name`): `second-chance` is
    /// CUP, `always` is the all-out-push reference.
    pub policy: String,
    /// Per-message link-loss probability.
    pub loss: f64,
    /// Nodes crashed (and later restarted) during the query window.
    pub crashes: u32,
    /// Total cost in hops.
    pub total_cost: u64,
    /// Miss cost in hops.
    pub miss_cost: u64,
    /// Client cache-hit rate.
    pub hit_rate: f64,
    /// Fraction of client answers serving a globally dead replica.
    pub stale_rate: f64,
    /// §3.1 justified maintenance updates.
    pub justified: u64,
    /// Maintenance updates tracked (justification denominator).
    pub tracked: u64,
    /// Messages the fault plane dropped.
    pub dropped: u64,
    /// Mean staleness age of stale answers (seconds) — how long lost
    /// deletions lingered.
    pub recovery_latency_secs: f64,
    /// Median staleness age (seconds), read off the staleness histogram.
    pub stale_age_p50_secs: f64,
    /// p99 staleness age (seconds) — the recovery *tail* behind the
    /// `recovery_latency_secs` mean.
    pub stale_age_p99_secs: f64,
    /// Client-query latency percentiles (µs of virtual time): p50, p90,
    /// p99, p999.
    pub query_p50_us: u64,
    /// p90 client-query latency (µs).
    pub query_p90_us: u64,
    /// p99 client-query latency (µs).
    pub query_p99_us: u64,
    /// p99.9 client-query latency (µs).
    pub query_p999_us: u64,
}

impl FaultGridPoint {
    /// Fraction of tracked updates that were justified.
    pub fn justified_ratio(&self) -> f64 {
        ratio(self.justified, self.tracked)
    }

    /// Cache hits bought per hop of total cost — the figure of merit the
    /// fault suite pins CUP strictly above all-out push on.
    pub fn hits_per_kilocost(&self) -> f64 {
        if self.total_cost == 0 {
            0.0
        } else {
            self.hit_rate * 1_000.0 / self.total_cost as f64
        }
    }
}

/// Synthesizes the fault spec strings for one grid point: whole-run loss
/// at `loss`, plus `crashes` *distinct* nodes crashing a third of the
/// way into the query window and restarting cold at two thirds
/// (`crashes` is capped at the population).
pub fn fault_point_specs(base: &Scenario, loss: f64, crashes: u32) -> Vec<String> {
    let mut specs = Vec::new();
    if loss > 0.0 {
        specs.push(format!("drop:{loss}"));
    }
    let start = base.query_start.as_micros() / 1_000_000;
    let window = base.query_window().as_micros() / 1_000_000;
    let down = start + window / 3;
    // A sub-3-second window would collapse to an empty crash interval;
    // keep restart strictly after crash.
    let up = (start + 2 * window / 3).max(down + 1);
    // Deterministic victims, evenly spread and guaranteed distinct: an
    // even stride never wraps within the first `crashes` picks.
    let crashes = (crashes as usize).min(base.nodes);
    let stride = (base.nodes / crashes.max(1)).max(1);
    for i in 0..crashes {
        let node = i * stride;
        specs.push(format!("crash:{node}@t={down}..{up}"));
    }
    specs
}

/// The loss × crash-count fault grid: every point runs CUP
/// (second-chance) and the all-out-push reference (`always`) under the
/// same fault plan, with justification tracked. Rows come back in
/// loss-major, crash-minor order with the two policies adjacent
/// (CUP first).
pub fn fault_grid(base: &Scenario, losses: &[f64], crash_counts: &[u32]) -> Vec<FaultGridPoint> {
    fault_grid_with(base, losses, crash_counts, default_workers())
}

/// [`fault_grid`] with an explicit sweep worker count.
pub fn fault_grid_with(
    base: &Scenario,
    losses: &[f64],
    crash_counts: &[u32],
    workers: usize,
) -> Vec<FaultGridPoint> {
    let policies = [CutoffPolicy::second_chance(), CutoffPolicy::Always];
    let mut grid: Vec<(f64, u32, CutoffPolicy)> = Vec::new();
    for &loss in losses {
        for &crashes in crash_counts {
            for &p in &policies {
                grid.push((loss, crashes, p));
            }
        }
    }
    parallel_map(&grid, workers, |&(loss, crashes, policy)| {
        let scenario = Scenario {
            fault_plan: fault_point_specs(base, loss, crashes),
            ..base.clone()
        };
        let config = ExperimentConfig {
            node_config: NodeConfig::cup_with_policy(policy),
            track_justification: true,
            ..ExperimentConfig::cup(scenario)
        };
        let r = run_experiment(&config);
        FaultGridPoint {
            policy: policy.name(),
            loss,
            crashes,
            total_cost: r.total_cost(),
            miss_cost: r.miss_cost(),
            hit_rate: r.hit_rate(),
            stale_rate: r.stale_rate(),
            justified: r.justified_updates,
            tracked: r.tracked_updates,
            dropped: r.net.faults.dropped(),
            recovery_latency_secs: r.recovery_latency_secs(),
            stale_age_p50_secs: r.stale_age_us(500) as f64 / 1e6,
            stale_age_p99_secs: r.stale_age_us(990) as f64 / 1e6,
            query_p50_us: r.query_latency_us(500),
            query_p90_us: r.query_latency_us(900),
            query_p99_us: r.query_latency_us(990),
            query_p999_us: r.query_latency_us(999),
        }
    })
}

/// One point of the Byzantine-attack × audit grid behind
/// `BENCH_audit.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditGridPoint {
    /// Nodes running the stale-serve behavior fault.
    pub attackers: u32,
    /// Whether the sampled cache audit was enabled.
    pub audited: bool,
    /// Paper total cost in hops (§3.3 — excludes audit traffic).
    pub total_cost: u64,
    /// Hops spent on audit probes and replies (the defense's bill).
    pub audit_hops: u64,
    /// Client answers that served a globally dead replica.
    pub poisoned: u64,
    /// Poisoned answers per client response.
    pub poisoned_rate: f64,
    /// Audit rounds opened across all nodes.
    pub audits: u64,
    /// Evict-and-refetch repairs applied.
    pub repairs: u64,
    /// Client cache-hit rate.
    pub hit_rate: f64,
    /// Mean age of poisoned answers (seconds since the deletion): how
    /// long poison lingered before eviction, repair, or expiry stopped
    /// it being served. This is an *exposure* measure, not a detection
    /// clock — it was previously published as `detection_latency_secs`,
    /// silently reading the recovery-latency accessor.
    pub poisoned_exposure_secs: f64,
    /// p99 poisoned-answer age (seconds) — the exposure tail the mean
    /// hides, read off the staleness histogram.
    pub poisoned_age_p99_secs: f64,
}

/// Salt folded into the scenario seed for the audit sampling stream, so
/// audit target choices decorrelate from every other seeded subsystem.
const AUDIT_SEED_SALT: u64 = 0xA0D1_7CA5_E5A1_7ED0;

/// The audit configuration an experiment over `base` uses: population =
/// the scenario's node count, seed derived from the scenario seed.
pub fn audit_config_for(base: &Scenario, interval_secs: u64) -> AuditConfig {
    AuditConfig::sampled(
        SimDuration::from_secs(interval_secs),
        base.nodes as u32,
        base.seed ^ AUDIT_SEED_SALT,
    )
}

/// Synthesizes the behavior-fault spec strings for one audit grid point:
/// `attackers` *distinct* nodes serve stale for the whole run (the
/// stride-spread victim choice [`fault_point_specs`] uses).
pub fn audit_point_specs(base: &Scenario, attackers: u32) -> Vec<String> {
    let attackers = (attackers as usize).min(base.nodes);
    let stride = (base.nodes / attackers.max(1)).max(1);
    (0..attackers)
        .map(|i| format!("stale-serve:{}", i * stride))
        .collect()
}

/// The attacker-count × audit-on/off grid: every point runs CUP
/// (second-chance) under the same stale-serve attack, with and without
/// the sampled audit. Rows come back attacker-major with the two audit
/// arms adjacent (audit off first).
pub fn audit_grid(
    base: &Scenario,
    attacker_counts: &[u32],
    interval_secs: u64,
) -> Vec<AuditGridPoint> {
    audit_grid_with(base, attacker_counts, interval_secs, default_workers())
}

/// [`audit_grid`] with an explicit sweep worker count.
pub fn audit_grid_with(
    base: &Scenario,
    attacker_counts: &[u32],
    interval_secs: u64,
    workers: usize,
) -> Vec<AuditGridPoint> {
    let mut grid: Vec<(u32, bool)> = Vec::new();
    for &attackers in attacker_counts {
        grid.push((attackers, false));
        grid.push((attackers, true));
    }
    parallel_map(&grid, workers, |&(attackers, audited)| {
        let scenario = Scenario {
            fault_plan: audit_point_specs(base, attackers),
            ..base.clone()
        };
        let mut node_config = NodeConfig::cup_default();
        if audited {
            node_config = node_config.with_audit(audit_config_for(base, interval_secs));
        }
        let config = ExperimentConfig {
            node_config,
            ..ExperimentConfig::cup(scenario)
        };
        let r = run_experiment(&config);
        AuditGridPoint {
            attackers,
            audited,
            total_cost: r.total_cost(),
            audit_hops: r.audit_overhead(),
            poisoned: r.net.stale_answers,
            poisoned_rate: r.poisoned_rate(),
            audits: r.nodes.audits_started,
            repairs: r.audit_repairs(),
            hit_rate: r.hit_rate(),
            poisoned_exposure_secs: r.recovery_latency_secs(),
            poisoned_age_p99_secs: r.stale_age_us(990) as f64 / 1e6,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimTime;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 32,
            keys: 3,
            query_rate: 5.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(1_300),
            sim_end: SimTime::from_secs(2_000),
            seed: 7,
            ..Scenario::default()
        }
    }

    #[test]
    fn push_level_sweep_monotone_miss_cost() {
        let points = push_level_sweep(&tiny(), &[5.0], &[0, 2, 8]);
        assert_eq!(points.len(), 3);
        // Level 0 is standard caching: highest miss cost; deeper push
        // levels cannot increase it.
        assert!(points[0].miss_cost >= points[1].miss_cost);
        assert!(points[1].miss_cost >= points[2].miss_cost);
        // Level 0 has no overhead.
        assert_eq!(points[0].total_cost, points[0].miss_cost);
    }

    #[test]
    fn policy_table_contains_all_rows() {
        let rows = policy_table(&tiny(), &[5.0], &[2, 6]);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].policy, "Standard Caching");
        assert_eq!(rows[0].normalized[0], 1.0);
        let second_chance = rows.iter().find(|r| r.policy == "Second-chance").unwrap();
        assert!(
            second_chance.normalized[0] < 1.0,
            "second-chance must beat standard caching"
        );
    }

    #[test]
    fn size_sweep_reports_requested_sizes() {
        let cols = size_sweep(&tiny(), &[16, 32]);
        assert_eq!(cols.len(), 2);
        for c in cols {
            assert!(c.miss_cost_ratio < 1.0, "CUP should reduce miss cost");
            assert!(c.cup_miss_latency > 0.0 && c.std_miss_latency > 0.0);
        }
    }

    #[test]
    fn replica_sweep_fix_beats_naive() {
        let rows = replica_sweep(&tiny(), &[1, 4]);
        assert_eq!(rows.len(), 2);
        let many = &rows[1];
        assert!(
            many.fixed_misses <= many.naive_misses,
            "replica-independent cut-off must not increase misses (naive {} vs fixed {})",
            many.naive_misses,
            many.fixed_misses
        );
    }

    #[test]
    fn capacity_sweep_degrades_gracefully() {
        let points = capacity_sweep(&tiny(), &[0.0, 1.0]);
        assert_eq!(points.len(), 2);
        // Full capacity is at least as good as zero capacity.
        assert!(points[1].up_and_down <= points[0].up_and_down);
        // Even at zero capacity CUP should not exceed standard caching by
        // much (fallback behaviour); allow slack for clear-bit overhead.
        assert!(points[0].up_and_down as f64 <= points[0].standard as f64 * 1.3);
    }

    #[test]
    fn parallel_sweeps_match_serial_byte_for_byte() {
        let base = tiny();
        assert_eq!(
            policy_table_with(&base, &[5.0], &[2, 6], 1),
            policy_table_with(&base, &[5.0], &[2, 6], 4),
            "policy table"
        );
        assert_eq!(
            push_level_sweep_with(&base, &[5.0], &[0, 4], 1),
            push_level_sweep_with(&base, &[5.0], &[0, 4], 4),
            "push-level sweep"
        );
        assert_eq!(
            size_sweep_with(&base, &[16, 32], 1),
            size_sweep_with(&base, &[16, 32], 4),
            "size sweep"
        );
        assert_eq!(
            replica_sweep_with(&base, &[1, 4], 1),
            replica_sweep_with(&base, &[1, 4], 4),
            "replica sweep"
        );
        assert_eq!(
            capacity_sweep_with(&base, &[0.0, 1.0], 1),
            capacity_sweep_with(&base, &[0.0, 1.0], 4),
            "capacity sweep"
        );
    }

    #[test]
    fn fault_grid_covers_the_cross_product_and_is_worker_invariant() {
        let losses = [0.0, 0.1];
        let crashes = [0, 2];
        let grid = fault_grid_with(&tiny(), &losses, &crashes, 2);
        assert_eq!(grid.len(), losses.len() * crashes.len() * 2);
        for pair in grid.chunks_exact(2) {
            assert_eq!(pair[0].policy, "second-chance");
            assert_eq!(pair[1].policy, "always");
            assert_eq!(
                (pair[0].loss, pair[0].crashes),
                (pair[1].loss, pair[1].crashes)
            );
        }
        // The loss-free, crash-free corner drops nothing; lossy points do.
        let clean = &grid[0];
        assert_eq!((clean.loss, clean.crashes), (0.0, 0));
        assert_eq!(clean.dropped, 0);
        let lossy = grid.iter().find(|p| p.loss > 0.0).unwrap();
        assert!(lossy.dropped > 0, "5%+ loss must drop messages");
        // Byte-identical across sweep worker counts.
        assert_eq!(grid, fault_grid_with(&tiny(), &losses, &crashes, 1));
    }

    #[test]
    fn fault_point_specs_build_parseable_plans() {
        let specs = fault_point_specs(&tiny(), 0.05, 3);
        assert_eq!(specs.len(), 4);
        cup_faults::FaultPlan::parse_specs(&specs).unwrap();
        assert!(fault_point_specs(&tiny(), 0.0, 0).is_empty());
    }

    #[test]
    fn audit_grid_covers_the_cross_product_and_is_worker_invariant() {
        let attackers = [0, 4];
        let grid = audit_grid_with(&tiny(), &attackers, 60, 2);
        assert_eq!(grid.len(), attackers.len() * 2);
        for pair in grid.chunks_exact(2) {
            assert_eq!(pair[0].attackers, pair[1].attackers);
            assert!(!pair[0].audited && pair[1].audited);
            // The audit only spends hops when switched on.
            assert_eq!(pair[0].audit_hops, 0);
            assert_eq!(pair[0].audits, 0);
            assert!(pair[1].audit_hops > 0, "audit-on arm must probe");
            assert!(pair[1].audits > 0);
        }
        // Without an attacker nothing is poisoned and nothing repaired.
        assert_eq!(grid[0].poisoned, 0);
        assert_eq!(grid[1].repairs, 0);
        // Byte-identical across sweep worker counts.
        assert_eq!(grid, audit_grid_with(&tiny(), &attackers, 60, 1));
    }

    #[test]
    fn audit_point_specs_build_parseable_plans() {
        let specs = audit_point_specs(&tiny(), 4);
        assert_eq!(specs.len(), 4);
        cup_faults::FaultPlan::parse_specs(&specs).unwrap();
        assert!(audit_point_specs(&tiny(), 0).is_empty());
        // Victims stay distinct even when oversubscribed.
        let crowded = audit_point_specs(&tiny(), 64);
        assert_eq!(crowded.len(), 32);
    }

    #[test]
    fn policy_rate_grid_covers_the_cross_product() {
        let policies = [
            CutoffPolicy::second_chance(),
            CutoffPolicy::Always,
            CutoffPolicy::adaptive(),
        ];
        let rates = [2.0, 5.0];
        let grid = policy_rate_grid(&tiny(), &policies, &rates, 2);
        assert_eq!(grid.len(), policies.len() * rates.len());
        for (i, point) in grid.iter().enumerate() {
            assert_eq!(point.policy, policies[i / rates.len()].name());
            assert_eq!(point.rate, rates[i % rates.len()]);
            assert!(
                point.tracked > 0,
                "{}: justification must be tracked",
                point.policy
            );
            assert!(point.justified_ratio() <= 1.0);
            assert!((0.0..=1.0).contains(&point.hit_rate));
        }
        // Deterministic across worker counts.
        assert_eq!(grid, policy_rate_grid(&tiny(), &policies, &rates, 1));
    }
}
