//! Emits `BENCH_policy.json`: the cut-off-policy × query-rate economics
//! sweep, timed serial vs parallel.
//!
//! Usage:
//!
//! ```text
//! bench_policy [--scale bench|small|paper] [--rates 1,5,20]
//!              [--policies always,second-chance,adaptive,...]
//!              [--workers N] [--seed 42] [--out BENCH_policy.json]
//!              [--budget-secs N] [--min-speedup X]
//! ```
//!
//! With `--budget-secs`, the process exits non-zero if either sweep pass
//! exceeds the wall-clock budget. With `--min-speedup`, it exits
//! non-zero if the parallel path's speedup over serial falls below `X`
//! (use on runners with known core counts; a 1-core box caps at ~1.0).

use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::policy_bench::{default_policies, render_json, run_policy_bench};
use cup_bench::Scale;
use cup_core::CutoffPolicy;
use cup_simnet::par::default_workers;
use cup_workload::Scenario;

fn main() {
    let mut scale = Scale::Small;
    let mut rates: Option<Vec<f64>> = None;
    let mut policies = default_policies();
    let mut workers = default_workers();
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_policy.json");
    let mut budget_secs: Option<u64> = None;
    let mut min_speedup: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = value_of(&mut it, "--scale");
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (use bench|small|paper)");
                    std::process::exit(2);
                });
            }
            "--rates" => {
                rates = Some(
                    value_of(&mut it, "--rates")
                        .split(',')
                        .map(|s| parse_or_exit(s, "--rates"))
                        .collect(),
                );
            }
            "--policies" => {
                policies = value_of(&mut it, "--policies")
                    .split(',')
                    .map(|name| {
                        CutoffPolicy::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!(
                                "unknown policy '{name}' (try: always, never, linear:A, \
                                 log:A, second-chance, log-based:N, push:L, adaptive)"
                            );
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--workers" => workers = parse_or_exit(&value_of(&mut it, "--workers"), "--workers"),
            "--seed" => seed = parse_or_exit(&value_of(&mut it, "--seed"), "--seed"),
            "--out" => out_path = value_of(&mut it, "--out"),
            "--budget-secs" => {
                budget_secs = Some(parse_or_exit(
                    &value_of(&mut it, "--budget-secs"),
                    "--budget-secs",
                ));
            }
            "--min-speedup" => {
                min_speedup = Some(parse_or_exit(
                    &value_of(&mut it, "--min-speedup"),
                    "--min-speedup",
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_policy [--scale bench|small|paper] [--rates R,R,..] \
                     [--policies P,P,..] [--workers N] [--seed N] [--out PATH] \
                     [--budget-secs N] [--min-speedup X]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let base = Scenario {
        seed,
        ..scale.base_scenario()
    };
    let rates = rates.unwrap_or_else(|| scale.rates());
    let report = run_policy_bench(&base, &policies, &rates, workers);

    for p in &report.points {
        println!(
            "{:>16}  rate {:>7}  total cost {:>8}  justified {:>6}/{:<6} ({:.2})  hit rate {:.2}",
            p.policy,
            p.rate,
            p.total_cost,
            p.justified,
            p.tracked,
            p.justified_ratio(),
            p.hit_rate,
        );
    }
    println!(
        "{} points  serial {:.2} s ({:.2} points/s)  parallel {:.2} s ({:.2} points/s)  \
         speedup {:.2}x on {} workers",
        report.points.len(),
        report.wall_serial.as_secs_f64(),
        report.serial_points_per_sec(),
        report.wall_parallel.as_secs_f64(),
        report.parallel_points_per_sec(),
        report.speedup(),
        report.workers,
    );

    let json = render_json(&report, &base, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    let mut failed = false;
    if let Some(budget) = budget_secs {
        for (name, wall) in [
            ("serial", report.wall_serial),
            ("parallel", report.wall_parallel),
        ] {
            if wall.as_secs() >= budget {
                eprintln!(
                    "BUDGET EXCEEDED: {name} sweep took {:.2} s (budget {budget} s)",
                    wall.as_secs_f64()
                );
                failed = true;
            }
        }
    }
    if let Some(min) = min_speedup {
        if report.speedup() < min {
            eprintln!(
                "SPEEDUP BELOW FLOOR: {:.2}x < {min}x on {} workers",
                report.speedup(),
                report.workers
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
