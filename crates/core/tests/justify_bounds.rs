//! Memory bounds on [`cup_core::JustificationTracker`].
//!
//! The tracker is always-on in both runtimes, so its window store must
//! stay bounded however long the update/query stream runs: settled
//! windows (justified, or closed unjustified) are pruned opportunistically
//! by the event hooks, and [`JustificationTracker::prune_settled`]
//! reclaims slots the stream abandoned. These properties pin that the
//! live window count is a function of the *open* state, not of the stream
//! length.

use proptest::prelude::*;

use cup_core::JustificationTracker;
use cup_des::{KeyId, NodeId, SimTime};

/// Nodes and keys the generated streams touch.
const NODES: u64 = 8;
const KEYS: u64 = 4;
/// Longest justification window a generated update can carry (seconds).
const MAX_WINDOW: u64 = 30;

/// One generated stream event.
#[derive(Debug, Clone, Copy)]
struct Ev {
    /// Seconds since the previous event (at least 1: time advances).
    dt: u64,
    node: u64,
    key: u64,
    /// `Some(window_secs)` = update delivery, `None` = query posted at
    /// `node` walking a short virtual path.
    window: Option<u64>,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    (1u64..5, 0..NODES, 0..KEYS, 0u64..MAX_WINDOW + 1).prop_map(|(dt, node, key, w)| Ev {
        dt,
        node,
        key,
        // w = 0 doubles as "this event is a query".
        window: (w > 0).then_some(w),
    })
}

proptest! {
    /// However long the mixed stream runs, the tracker holds at most the
    /// windows that can still change state: per (node, key) slot, only
    /// windows opened within the last MAX_WINDOW seconds survive, and
    /// time advances ≥ 1 s per event — so the live set is bounded by
    /// slots × MAX_WINDOW no matter how many events streamed through.
    #[test]
    fn window_store_is_bounded_by_open_state(events in proptest::collection::vec(arb_event(), 1..1_200)) {
        let mut t = JustificationTracker::new();
        let mut now = SimTime::ZERO;
        let bound = (NODES * KEYS * MAX_WINDOW) as usize;
        let mut total = 0u64;
        for ev in &events {
            now += cup_des::SimDuration::from_secs(ev.dt);
            match ev.window {
                Some(w) => {
                    t.on_update_delivered(
                        NodeId(ev.node as u32),
                        KeyId(ev.key as u32),
                        now,
                        now + cup_des::SimDuration::from_secs(w),
                    );
                    total += 1;
                }
                None => {
                    // A short virtual path through neighboring ids.
                    let path = [
                        NodeId(ev.node as u32),
                        NodeId(((ev.node + 1) % NODES) as u32),
                        NodeId(((ev.node + 2) % NODES) as u32),
                    ];
                    t.on_query(KeyId(ev.key as u32), now, &path);
                }
            }
            prop_assert!(
                t.open_windows() <= bound,
                "open windows {} exceeded the open-state bound {bound} (stream position is unbounded)",
                t.open_windows()
            );
        }
        prop_assert_eq!(t.total(), total);
        prop_assert!(t.justified() <= t.total());

        // Counters are history: pruning the settled remainder rewrites
        // nothing and empties the store once every window has closed.
        let (justified, tracked) = (t.justified(), t.total());
        t.prune_settled(now + cup_des::SimDuration::from_secs(MAX_WINDOW + 1));
        prop_assert_eq!(t.open_windows(), 0);
        prop_assert_eq!((t.justified(), t.total()), (justified, tracked));
    }

    /// Justified windows never linger: the query that justifies a window
    /// also settles it, so a hot (node, key) slot saturated with queries
    /// holds at most the windows delivered since the last query.
    #[test]
    fn justified_windows_do_not_accumulate(rounds in 1usize..200) {
        let mut t = JustificationTracker::new();
        for r in 0..rounds {
            let now = SimTime::from_secs(10 * r as u64);
            t.on_update_delivered(NodeId(1), KeyId(0), now, now + cup_des::SimDuration::from_secs(1_000_000));
            t.on_query(KeyId(0), now + cup_des::SimDuration::from_secs(1), &[NodeId(1)]);
            prop_assert_eq!(t.open_windows(), 0, "round {}", r);
        }
        prop_assert_eq!(t.justified(), rounds as u64);
        prop_assert_eq!(t.total(), rounds as u64);
    }
}
