//! The threaded node runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cup_core::{
    Action, ClientId, CupNode, IndexEntry, Message, NodeConfig, ReplicaEvent, Requester,
};
use cup_des::{DetRng, KeyId, NodeId, ReplicaId, SimDuration, SimTime};
use cup_overlay::{AnyOverlay, Overlay, OverlayError, OverlayKind};

/// Errors surfaced by the live runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// The overlay could not be built.
    Overlay(OverlayError),
    /// A query timed out waiting for its response.
    QueryTimeout,
    /// The target node is not part of the network.
    UnknownNode(NodeId),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Overlay(e) => write!(f, "overlay error: {e}"),
            RuntimeError::QueryTimeout => write!(f, "query timed out"),
            RuntimeError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// What a node thread can receive.
enum Envelope {
    /// A protocol message from a peer.
    Peer { from: NodeId, msg: Message },
    /// A local client query; the response goes to the registered client.
    Client { key: KeyId, client: ClientId },
    /// A replica lifecycle message (the node is the key's authority).
    Replica(ReplicaEvent),
    /// Stop the thread.
    Shutdown,
}

/// Shared state between the runtime handle and node threads.
struct Shared {
    inboxes: Vec<Sender<Envelope>>,
    overlay: AnyOverlay,
    clients: Mutex<HashMap<ClientId, Sender<Vec<IndexEntry>>>>,
    start: Instant,
    /// Total peer messages delivered (the live equivalent of hop counts).
    hops: AtomicU64,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

/// A running CUP network of threads.
pub struct LiveNetwork {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<CupNode>>,
    node_ids: Vec<NodeId>,
    next_client: AtomicU64,
    /// How long [`LiveNetwork::query`] waits for a response.
    pub query_timeout: Duration,
}

impl LiveNetwork {
    /// Builds a CAN overlay of `n` nodes and starts one thread per node.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overlay`] if the overlay cannot be built.
    pub fn start(n: usize, config: NodeConfig, rng: &mut DetRng) -> Result<Self, RuntimeError> {
        let overlay = AnyOverlay::build(OverlayKind::Can, n, rng).map_err(RuntimeError::Overlay)?;
        let node_ids = overlay.nodes();
        let mut inboxes = Vec::with_capacity(node_ids.len());
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(node_ids.len());
        for _ in &node_ids {
            let (tx, rx) = channel();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            inboxes,
            overlay,
            clients: Mutex::new(HashMap::new()),
            start: Instant::now(),
            hops: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(node_ids.len());
        for (&id, rx) in node_ids.iter().zip(receivers) {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                node_main(id, config, rx, shared)
            }));
        }
        Ok(LiveNetwork {
            shared,
            handles,
            node_ids,
            next_client: AtomicU64::new(0),
            query_timeout: Duration::from_secs(5),
        })
    }

    /// The live node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Peer messages delivered so far (hop count).
    pub fn hops(&self) -> u64 {
        self.shared.hops.load(Ordering::Relaxed)
    }

    /// Announces a replica serving `key` to the key's authority node.
    pub fn replica_birth(&self, key: KeyId, replica: ReplicaId, lifetime: SimDuration) {
        self.send_replica(ReplicaEvent::Birth {
            key,
            replica,
            lifetime,
        });
    }

    /// Renews a replica's index entry.
    pub fn replica_refresh(&self, key: KeyId, replica: ReplicaId, lifetime: SimDuration) {
        self.send_replica(ReplicaEvent::Refresh {
            key,
            replica,
            lifetime,
        });
    }

    /// Withdraws a replica.
    pub fn replica_deletion(&self, key: KeyId, replica: ReplicaId) {
        self.send_replica(ReplicaEvent::Deletion { key, replica });
    }

    fn send_replica(&self, event: ReplicaEvent) {
        let authority = self.shared.overlay.authority(event.key());
        // A closed inbox means shutdown is racing us; losing a replica
        // message then is acceptable.
        let _ = self.shared.inboxes[authority.index()].send(Envelope::Replica(event));
    }

    /// Posts a client query at `node` and blocks for the fresh index
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an invalid node and
    /// [`RuntimeError::QueryTimeout`] if no response arrives within
    /// [`LiveNetwork::query_timeout`].
    pub fn query(&self, node: NodeId, key: KeyId) -> Result<Vec<IndexEntry>, RuntimeError> {
        if !self.node_ids.contains(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        let client = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = channel();
        self.shared.clients.lock().unwrap().insert(client, tx);
        let _ = self.shared.inboxes[node.index()].send(Envelope::Client { key, client });
        let result = rx
            .recv_timeout(self.query_timeout)
            .map_err(|_| RuntimeError::QueryTimeout);
        self.shared.clients.lock().unwrap().remove(&client);
        result
    }

    /// Stops all node threads and returns their final protocol states
    /// (useful for inspecting per-node statistics).
    pub fn shutdown(self) -> Vec<CupNode> {
        for tx in &self.shared.inboxes {
            let _ = tx.send(Envelope::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread must not panic"))
            .collect()
    }
}

/// The per-node thread body.
fn node_main(
    id: NodeId,
    config: NodeConfig,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
) -> CupNode {
    let mut node = CupNode::new(id, config);
    while let Ok(envelope) = rx.recv() {
        let now = shared.now();
        let actions = match envelope {
            Envelope::Shutdown => break,
            Envelope::Peer { from, msg } => match msg {
                Message::Query { key } => {
                    let upstream = upstream_of(&shared.overlay, id, key);
                    node.handle_query(now, key, Requester::Neighbor(from), upstream)
                }
                Message::Update(update) => node.handle_update(now, from, update),
                Message::ClearBit { key } => {
                    let upstream = upstream_of(&shared.overlay, id, key);
                    node.handle_clear_bit(now, key, from, upstream)
                }
            },
            Envelope::Client { key, client } => {
                let upstream = upstream_of(&shared.overlay, id, key);
                node.handle_query(now, key, Requester::Client(client), upstream)
            }
            Envelope::Replica(event) => node.handle_replica_event(now, event),
        };
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    shared.hops.fetch_add(1, Ordering::Relaxed);
                    let _ = shared.inboxes[to.index()].send(Envelope::Peer { from: id, msg });
                }
                Action::RespondClient {
                    client, entries, ..
                } => {
                    if let Some(tx) = shared.clients.lock().unwrap().get(&client) {
                        let _ = tx.send(entries);
                    }
                }
            }
        }
    }
    node
}

/// Next hop toward `key`'s authority, or `None` at the authority.
fn upstream_of(overlay: &AnyOverlay, from: NodeId, key: KeyId) -> Option<NodeId> {
    if overlay.authority(key) == from {
        None
    } else {
        overlay
            .next_hop(from, key)
            .expect("static live overlay routes must succeed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: SimDuration = SimDuration::from_secs(60);

    fn network(n: usize) -> LiveNetwork {
        let mut rng = DetRng::seed_from(11);
        LiveNetwork::start(n, NodeConfig::cup_default(), &mut rng).unwrap()
    }

    #[test]
    fn query_finds_replica_across_threads() {
        let net = network(16);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        // Give the authority a moment to process the birth.
        std::thread::sleep(Duration::from_millis(50));
        for &node in &net.nodes()[..4] {
            let entries = net.query(node, KeyId(1)).unwrap();
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].replica, ReplicaId(0));
        }
        net.shutdown();
    }

    #[test]
    fn repeat_queries_are_served_from_cache() {
        let net = network(16);
        net.replica_birth(KeyId(2), ReplicaId(3), LIFE);
        std::thread::sleep(Duration::from_millis(50));
        let node = net.nodes()[7];
        net.query(node, KeyId(2)).unwrap();
        let hops_after_first = net.hops();
        net.query(node, KeyId(2)).unwrap();
        let hops_after_second = net.hops();
        assert!(
            hops_after_second <= hops_after_first + 1,
            "second query must be a (near-)local cache hit: {hops_after_first} -> {hops_after_second}"
        );
        net.shutdown();
    }

    #[test]
    fn deletion_propagates_to_caches() {
        let net = network(16);
        net.replica_birth(KeyId(3), ReplicaId(5), LIFE);
        std::thread::sleep(Duration::from_millis(50));
        let node = net.nodes()[9];
        assert_eq!(net.query(node, KeyId(3)).unwrap().len(), 1);
        net.replica_deletion(KeyId(3), ReplicaId(5));
        std::thread::sleep(Duration::from_millis(100));
        // After the delete propagates, the fresh answer is empty.
        let entries = net.query(node, KeyId(3)).unwrap();
        assert!(
            entries.is_empty(),
            "delete update should have removed the entry everywhere"
        );
        net.shutdown();
    }

    #[test]
    fn unknown_key_yields_empty_answer() {
        let net = network(8);
        let entries = net.query(net.nodes()[0], KeyId(99)).unwrap();
        assert!(entries.is_empty());
        net.shutdown();
    }

    #[test]
    fn unknown_node_is_rejected() {
        let net = network(8);
        assert!(matches!(
            net.query(NodeId(999), KeyId(1)),
            Err(RuntimeError::UnknownNode(_))
        ));
        net.shutdown();
    }

    #[test]
    fn shutdown_returns_node_states() {
        let net = network(8);
        net.replica_birth(KeyId(1), ReplicaId(0), LIFE);
        std::thread::sleep(Duration::from_millis(50));
        net.query(net.nodes()[3], KeyId(1)).unwrap();
        let nodes = net.shutdown();
        assert_eq!(nodes.len(), 8);
        let total_queries: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
        assert_eq!(total_queries, 1);
    }
}
