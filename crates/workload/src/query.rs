//! The query workload: when, where, and for what.
//!
//! §3.2: "Query arrivals were generated according to a Poisson process.
//! Nodes were randomly selected to post the queries." The network-wide
//! rate λ is split implicitly by choosing the posting node uniformly per
//! arrival.

use cup_des::{DetRng, KeyId, SimTime};

use crate::keysel::KeySelector;
use crate::poisson::PoissonProcess;

/// One query to post: at `at`, at the node with dense index `node_index`,
/// for `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryArrival {
    /// When the query is posted.
    pub at: SimTime,
    /// Dense index of the posting node among live nodes.
    pub node_index: usize,
    /// The key queried.
    pub key: KeyId,
}

/// Burstiness of the query stream.
///
/// The paper motivates CUP with "bursts of queries for the same item" and
/// flash crowds ("queries for keys that become suddenly hot ... enjoy a
/// significant reduction in latency"). With bursts enabled, each Poisson
/// arrival becomes a *flash crowd*: `size` queries for one suddenly-hot
/// key posted from random nodes within `spread`. The Poisson rate is
/// divided by `size` so the long-run query rate stays the configured λ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// Queries per burst (1 disables bursting).
    pub size: u32,
    /// Window over which one burst's queries are spread.
    pub spread: cup_des::SimDuration,
}

/// Lazy generator of the full query workload.
#[derive(Debug, Clone)]
pub struct QueryGen {
    process: PoissonProcess,
    keys: KeySelector,
    node_count: usize,
    end: SimTime,
    rng: DetRng,
    burst: Option<BurstConfig>,
    buffer: std::collections::VecDeque<QueryArrival>,
}

impl QueryGen {
    /// Creates a workload of network-wide rate `rate_per_sec` over
    /// `node_count` nodes, posting queries from `start` until `end`.
    ///
    /// # Panics
    ///
    /// Panics if there are no nodes or the rate is not positive.
    pub fn new(
        rate_per_sec: f64,
        keys: KeySelector,
        node_count: usize,
        start: SimTime,
        end: SimTime,
        rng: DetRng,
    ) -> Self {
        assert!(node_count > 0, "need at least one node");
        QueryGen {
            process: PoissonProcess::new(rate_per_sec, start),
            keys,
            node_count,
            end,
            rng,
            burst: None,
            buffer: std::collections::VecDeque::new(),
        }
    }

    /// Like [`QueryGen::new`], but each arrival is a flash crowd of
    /// `burst.size` queries for one key. The underlying Poisson rate is
    /// `rate_per_sec / size`, keeping the long-run query rate at
    /// `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the burst size is zero (use 1 for no bursting).
    pub fn bursty(
        rate_per_sec: f64,
        keys: KeySelector,
        node_count: usize,
        start: SimTime,
        end: SimTime,
        rng: DetRng,
        burst: BurstConfig,
    ) -> Self {
        assert!(burst.size > 0, "burst size must be at least 1");
        let mut gen = QueryGen::new(
            rate_per_sec / burst.size as f64,
            keys,
            node_count,
            start,
            end,
            rng,
        );
        if burst.size > 1 {
            gen.burst = Some(burst);
        }
        gen
    }

    /// End of the query window.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Returns the next query, or `None` once the window is exhausted.
    pub fn next_query(&mut self) -> Option<QueryArrival> {
        if let Some(q) = self.buffer.pop_front() {
            return Some(q);
        }
        let at = self.process.next_arrival(&mut self.rng);
        if at >= self.end {
            return None;
        }
        match self.burst {
            None => {
                let node_index = self.rng.choose_index(self.node_count);
                let key = self.keys.sample(&mut self.rng);
                Some(QueryArrival {
                    at,
                    node_index,
                    key,
                })
            }
            Some(burst) => {
                // One flash crowd: a suddenly-hot key queried from many
                // nodes nearly at once.
                let key = self.keys.sample(&mut self.rng);
                let mut offsets: Vec<u64> = (0..burst.size)
                    .map(|_| self.rng.next_below(burst.spread.as_micros().max(1)))
                    .collect();
                offsets.sort_unstable();
                for off in offsets {
                    let node_index = self.rng.choose_index(self.node_count);
                    self.buffer.push_back(QueryArrival {
                        at: at + cup_des::SimDuration::from_micros(off),
                        node_index,
                        key,
                    });
                }
                self.buffer.pop_front()
            }
        }
    }
}

impl Iterator for QueryGen {
    type Item = QueryArrival;

    fn next(&mut self) -> Option<QueryArrival> {
        self.next_query()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(rate: f64, secs: u64) -> QueryGen {
        QueryGen::new(
            rate,
            KeySelector::uniform(10),
            64,
            SimTime::ZERO,
            SimTime::from_secs(secs),
            DetRng::seed_from(7),
        )
    }

    #[test]
    fn produces_roughly_rate_times_window_queries() {
        let count = gen(10.0, 1_000).count();
        assert!(
            (9_000..11_000).contains(&count),
            "expected ~10000 queries, got {count}"
        );
    }

    #[test]
    fn queries_ordered_and_in_window() {
        let mut prev = SimTime::ZERO;
        for q in gen(5.0, 100) {
            assert!(q.at >= prev);
            assert!(q.at < SimTime::from_secs(100));
            assert!(q.node_index < 64);
            assert!(q.key.0 < 10);
            prev = q.at;
        }
    }

    #[test]
    fn nodes_are_spread() {
        let mut seen = std::collections::HashSet::new();
        for q in gen(100.0, 100) {
            seen.insert(q.node_index);
        }
        assert!(seen.len() > 50, "most of 64 nodes should post queries");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<QueryArrival> = gen(5.0, 50).collect();
        let b: Vec<QueryArrival> = gen(5.0, 50).collect();
        assert_eq!(a, b);
    }
}
