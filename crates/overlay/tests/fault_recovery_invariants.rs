//! Property tests for routing invariants under fault-shaped churn.
//!
//! The fault plane (`cup-faults`) models crashes, restarts, and
//! partitions *above* the overlay: a crashed node keeps its zone and
//! messages to it are dropped, so routing invariants are untouched. The
//! overlays must additionally survive the topology-level mirror of those
//! faults — the hard churn the recovery story leans on when a crashed
//! node is eventually *replaced* rather than restarted: abrupt
//! (ungraceful) departures, rejoining nodes, and a partition-sized batch
//! of simultaneous departures followed by a heal-sized batch of joins.
//!
//! After every step, two invariants must hold on the surviving topology:
//!
//! * **owner uniqueness** — every key has exactly one live node that
//!   considers itself the authority (`next_hop == None`);
//! * **reachability** — routing from every sampled live node terminates
//!   at that owner along real neighbor edges.
//!
//! And after the final heal (population restored), the invariants must
//! hold for a fresh sample — nothing about the crash/restart history may
//! leak into steady-state routing.

use proptest::prelude::*;

use cup_des::{DetRng, KeyId};
use cup_overlay::{AnyOverlay, Overlay, OverlayKind};

/// One fault-shaped topology op.
#[derive(Debug, Clone, Copy)]
enum FaultOp {
    /// One node crashes and is replaced (ungraceful leave).
    Crash,
    /// A crashed-and-replaced node's capacity comes back (join).
    Restart,
    /// `k` nodes drop out at once (one side of a partition dies).
    Partition(u8),
    /// `k` nodes come back at once.
    Heal(u8),
}

/// Decodes one generated `(selector, batch)` pair into an op.
fn decode_op((selector, batch): (u8, u8)) -> FaultOp {
    match selector {
        0 => FaultOp::Crash,
        1 => FaultOp::Restart,
        2 => FaultOp::Partition(batch),
        _ => FaultOp::Heal(batch),
    }
}

/// Asserts owner uniqueness for `key`: exactly one live node routes
/// nowhere, and it is the reported authority.
fn check_owner_unique(overlay: &AnyOverlay, key: KeyId) -> Result<(), TestCaseError> {
    let authority = overlay.authority(key);
    prop_assert!(overlay.is_alive(authority));
    let mut owners = Vec::new();
    for node in overlay.nodes() {
        if overlay.next_hop(node, key).unwrap().is_none() {
            owners.push(node);
        }
    }
    prop_assert_eq!(
        owners.clone(),
        vec![authority],
        "key {} must have exactly one owner, found {:?}",
        key,
        owners
    );
    Ok(())
}

/// Asserts reachability: routing from sampled live nodes ends at the
/// owner over genuine neighbor edges.
fn check_reachability(
    overlay: &AnyOverlay,
    rng: &mut DetRng,
    lookups: usize,
) -> Result<(), TestCaseError> {
    let live = overlay.nodes();
    for _ in 0..lookups {
        let start = live[rng.choose_index(live.len())];
        let key = KeyId(rng.next_below(1 << 16) as u32);
        let path = overlay
            .route(start, key)
            .map_err(|e| TestCaseError::fail(format!("route({start}, {key}): {e}")))?;
        prop_assert_eq!(*path.last().unwrap(), overlay.authority(key));
        for w in path.windows(2) {
            prop_assert!(
                overlay.neighbors(w[0]).contains(&w[1]),
                "edge {} -> {} is not a neighbor link",
                w[0],
                w[1]
            );
        }
    }
    Ok(())
}

fn leave_one(overlay: &mut AnyOverlay, rng: &mut DetRng) {
    if overlay.len() > 2 {
        let live = overlay.nodes();
        let victim = live[rng.choose_index(live.len())];
        overlay.leave(victim).unwrap();
    }
}

proptest! {
    /// Owner uniqueness and reachability survive arbitrary interleaved
    /// crash/restart/partition/heal sequences on both substrates, and
    /// still hold after the population is healed back to full strength.
    #[test]
    fn invariants_hold_under_interleaved_crash_restart_partition(
        seed in any::<u64>(),
        n in 8usize..48,
        ops in proptest::collection::vec((0u8..4, 2u8..6), 1..16),
    ) {
        for kind in OverlayKind::ALL {
            let mut rng = DetRng::seed_from(seed);
            let mut overlay = AnyOverlay::build(kind, n, &mut rng).unwrap();
            for &encoded in &ops {
                match decode_op(encoded) {
                    FaultOp::Crash => leave_one(&mut overlay, &mut rng),
                    FaultOp::Restart => {
                        overlay.join(&mut rng).unwrap();
                    }
                    FaultOp::Partition(k) => {
                        for _ in 0..k {
                            leave_one(&mut overlay, &mut rng);
                        }
                    }
                    FaultOp::Heal(k) => {
                        for _ in 0..k {
                            overlay.join(&mut rng).unwrap();
                        }
                    }
                }
                // Invariants after *every* step, not just at the end.
                for probe in 0..4u32 {
                    check_owner_unique(&overlay, KeyId(rng.next_below(1 << 20) as u32 + probe))?;
                }
                check_reachability(&overlay, &mut rng, 6)?;
            }
            // Heal back to (at least) the starting population and demand
            // full-strength invariants on a fresh sample.
            while overlay.len() < n {
                overlay.join(&mut rng).unwrap();
            }
            for probe in 0..8u32 {
                check_owner_unique(&overlay, KeyId(rng.next_below(1 << 20) as u32 + probe))?;
            }
            check_reachability(&overlay, &mut rng, 12)?;
        }
    }

    /// A total-minus-two wipeout (everything crashes except a sliver)
    /// followed by a full heal leaves both substrates routable: the
    /// extreme end of the partition/heal spectrum.
    #[test]
    fn deep_partition_then_full_heal_recovers(seed in any::<u64>(), n in 8usize..32) {
        for kind in OverlayKind::ALL {
            let mut rng = DetRng::seed_from(seed);
            let mut overlay = AnyOverlay::build(kind, n, &mut rng).unwrap();
            while overlay.len() > 2 {
                leave_one(&mut overlay, &mut rng);
            }
            check_reachability(&overlay, &mut rng, 4)?;
            while overlay.len() < n {
                overlay.join(&mut rng).unwrap();
            }
            for probe in 0..6u32 {
                check_owner_unique(&overlay, KeyId(rng.next_below(1 << 20) as u32 + probe))?;
            }
            check_reachability(&overlay, &mut rng, 12)?;
        }
    }
}
