//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate that replaces the Stanford *Narses* simulator
//! used by the CUP paper (Roussopoulos & Baker, 2002). It provides:
//!
//! * a microsecond-resolution simulated clock ([`SimTime`], [`SimDuration`]),
//! * a deterministic event queue with stable FIFO ordering for simultaneous
//!   events ([`EventQueue`]) — a calendar queue with O(1) amortized
//!   schedule/pop, pinned against the retired heap scheduler
//!   ([`ReferenceHeapQueue`]) by a differential test suite,
//! * a generic simulation driver ([`Engine`]) that dispatches events to a
//!   user-supplied handler,
//! * a deterministic, seedable random number generator ([`rng::DetRng`])
//!   that is stable across platforms and crate versions,
//! * light-weight statistics collectors ([`stats`]), and
//! * per-hop network latency models ([`latency`]).
//!
//! The engine is intentionally protocol-agnostic: the CUP protocol crates
//! define their own event payloads and state and drive them through
//! [`Engine::run`].
//!
//! # Examples
//!
//! ```
//! use cup_des::{Engine, EventQueue, SimDuration, SimTime};
//!
//! // Count ticks of a self-rescheduling timer.
//! struct State {
//!     ticks: u32,
//! }
//!
//! let mut engine = Engine::new(State { ticks: 0 });
//! engine.schedule(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(10), |state, queue, now, ()| {
//!     state.ticks += 1;
//!     queue.schedule(now + SimDuration::from_secs(1), ());
//! });
//! assert_eq!(engine.state().ticks, 10);
//! ```

pub mod engine;
pub mod event;
pub mod id;
pub mod latency;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::Engine;
pub use event::{EventQueue, ReferenceHeapQueue};
pub use id::{KeyId, NodeId, ReplicaId};
pub use latency::LatencyModel;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
