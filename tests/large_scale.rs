//! The large-population suite: 10k–100k node experiments.
//!
//! This is the regime the calendar-queue scheduler, the node arena, and
//! the overlay spatial indices exist for. The suite locks down the two
//! properties every scaling PR must preserve:
//!
//! * **determinism** — byte-identical [`ExperimentResult`]s per seed,
//!   even at 100k nodes (`assert_deterministic` runs everything twice);
//! * **tractability** — the flagship 100k-node, 10k-query scenario has a
//!   hard wall-clock budget, so a scheduler regression fails loudly
//!   instead of silently rotting the benches.

// Wall-clock budgets are this suite's point (see module docs): exempt
// from clippy.toml's disallowed-methods wall, like cup-bench.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use cup::prelude::*;
use cup_testkit::{assert_deterministic, large_scale, large_scale_churn_config};

/// CUP must still beat standard caching in the heavy-tailed large-scale
/// regime (the paper's claim extrapolated past its 2¹² ceiling).
#[test]
fn cup_beats_standard_caching_at_10k_nodes() {
    let scenario = large_scale(10_000, 10_000, 71);
    let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
    let cup = run_experiment(&ExperimentConfig::cup(scenario));
    assert!(
        cup.total_cost() < std.total_cost(),
        "CUP {} must beat standard caching {} at 10k nodes",
        cup.total_cost(),
        std.total_cost()
    );
    assert!(cup.nodes.client_queries > 9_000, "query budget delivered");
}

/// Determinism at 10k nodes with the Zipf workload.
#[test]
fn large_scale_10k_is_deterministic() {
    let result = assert_deterministic(&ExperimentConfig::cup(large_scale(10_000, 10_000, 72)));
    assert!(result.events > 100_000, "a real event volume was simulated");
    assert_eq!(result.node_count, 10_000);
}

/// The flagship scale: 100k nodes, 10k queries, deterministic, and —
/// run twice by `assert_deterministic` — each run inside the wall-clock
/// budget. The release budget is 60 s; the tier-1 (opt-level 2, debug
/// assertions) budget is proportionally wider.
#[test]
fn large_scale_100k_is_deterministic_within_budget() {
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(180)
    } else {
        Duration::from_secs(60)
    };
    let config = ExperimentConfig::cup(large_scale(100_000, 10_000, 73));
    let start = Instant::now();
    let result = assert_deterministic(&config);
    let per_run = start.elapsed() / 2;
    assert!(
        per_run < budget,
        "100k-node run took {per_run:?}, budget {budget:?}"
    );
    assert_eq!(result.node_count, 100_000);
    assert!(result.nodes.client_queries > 9_000);
    assert!(result.total_cost() > 0);
}

/// The live counterpart of the scale tests: a 10k-node network on the
/// sharded worker pool (≤ available parallelism threads — **not** 10k
/// threads) runs a mixed query/update workload to completion, bounded
/// by the same kind of wall-clock budget as the DES flagship.
#[test]
fn live_10k_mixed_workload_completes() {
    const NODES: usize = 10_000;
    const KEYS: u32 = 32;
    const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(180)
    } else {
        Duration::from_secs(60)
    };
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());

    let start = Instant::now();
    let mut rng = DetRng::seed_from(81);
    let net = LiveNetwork::start(OverlayKind::Can, NODES, NodeConfig::cup_default(), &mut rng)
        .expect("10k-node live network must start");
    assert!(
        net.workers() <= parallelism,
        "the pool must not exceed available parallelism ({} > {parallelism})",
        net.workers()
    );
    for k in 0..KEYS {
        net.replica_birth(KeyId(k), ReplicaId(k), LIFETIME);
    }
    net.quiesce();

    // Mixed workload: rounds of client queries interleaved with replica
    // refreshes, plus a wave of deletions halfway through.
    let mut script = DetRng::seed_from(82);
    let mut queries = 0u64;
    for round in 0..4 {
        for _ in 0..50 {
            let node = net.nodes()[script.choose_index(NODES)];
            let key = KeyId(script.next_below(u64::from(KEYS)) as u32);
            net.query(node, key).expect("live query must be answered");
            queries += 1;
        }
        for k in 0..KEYS {
            net.replica_refresh(KeyId(k), ReplicaId(k), LIFETIME);
        }
        net.quiesce();
        if round == 1 {
            for k in 0..KEYS / 2 {
                net.replica_deletion(KeyId(k), ReplicaId(k));
            }
            net.quiesce();
        }
    }

    assert_eq!(net.routing_failures(), 0, "static routing must not fail");
    let nodes = net.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget,
        "10k-node live workload took {elapsed:?}, budget {budget:?}"
    );
    assert_eq!(nodes.len(), NODES);
    let total_queries: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
    assert_eq!(total_queries, queries, "every posted query was handled");
    let updates: u64 = nodes.iter().map(|n| n.stats.updates_received).sum();
    assert!(updates > 0, "the update stream reached the caches");
}

/// The flagship *live* scale: a 100k-node worker pool on the virtual
/// clock, overlay-aware sharding, mixed query/update/deletion traffic.
/// This population is the batched transfer plane's reason to exist —
/// per-envelope mailbox sends paid one SeqCst barrier bump and one
/// queue lock per message, which at 100k-node traffic volumes could not
/// drain inside any reasonable budget; batch flushes amortize both, so
/// the run must now complete within the same kind of wall-clock gate as
/// the DES flagship.
#[test]
fn live_100k_overlay_aware_completes_within_budget() {
    const NODES: usize = 100_000;
    const KEYS: u32 = 32;
    const LIFETIME: SimDuration = SimDuration::from_secs(1_000_000);
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(90)
    };

    let start = Instant::now();
    let mut rng = DetRng::seed_from(83);
    let net = LiveNetwork::start_virtual_with_map(
        OverlayKind::Can,
        NODES,
        NodeConfig::cup_default(),
        4,
        ShardMapMode::OverlayAware,
        &mut rng,
    )
    .expect("100k-node live network must start");
    assert_eq!(net.shard_map_mode(), ShardMapMode::OverlayAware);
    for k in 0..KEYS {
        net.replica_birth(KeyId(k), ReplicaId(k), LIFETIME);
    }
    net.quiesce();

    // Two rounds of scattered client queries interleaved with refresh
    // storms, then a deletion wave walking the built interest trees.
    let mut script = DetRng::seed_from(84);
    let mut queries = 0u64;
    for _ in 0..2 {
        for _ in 0..50 {
            let node = net.nodes()[script.choose_index(NODES)];
            let key = KeyId(script.next_below(u64::from(KEYS)) as u32);
            net.query(node, key).expect("live query must be answered");
            queries += 1;
        }
        for k in 0..KEYS {
            net.replica_refresh(KeyId(k), ReplicaId(k), LIFETIME);
        }
        net.quiesce();
    }
    for k in 0..KEYS / 2 {
        net.replica_deletion(KeyId(k), ReplicaId(k));
    }
    net.quiesce();

    assert_eq!(net.routing_failures(), 0, "static routing must not fail");
    assert_eq!(
        net.batched_envelopes(),
        net.cross_shard_messages(),
        "every cross-shard envelope travels in exactly one batch flush"
    );
    let cross = net.cross_shard_messages();
    let flushes = net.batch_flushes();
    let nodes = net.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget,
        "100k-node live workload took {elapsed:?}, budget {budget:?}"
    );
    assert_eq!(nodes.len(), NODES);
    let total_queries: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
    assert_eq!(total_queries, queries, "every posted query was handled");
    assert!(
        flushes <= cross,
        "batching must amortize: {flushes} flushes carried {cross} envelopes"
    );
}

/// Churn at scale: joins and leaves through the query window must keep
/// the experiment deterministic and the network serving queries.
#[test]
fn large_scale_churn_is_deterministic() {
    let config = large_scale_churn_config(10_000, 5_000, 50, 74);
    assert!(!config.churn.is_empty(), "schedule must carry churn events");
    let result = assert_deterministic(&config);
    assert!(result.nodes.client_queries > 4_000);
    assert!(result.total_cost() > 0);
}
