//! CUP: Controlled Update Propagation — the protocol core.
//!
//! This crate implements the contribution of Roussopoulos & Baker's paper
//! *"CUP: Controlled Update Propagation in Peer-to-Peer Networks"* as a
//! runtime-agnostic state machine. Every node of a structured peer-to-peer
//! network runs a [`node::CupNode`]; the node consumes protocol inputs
//! (queries, updates, clear-bit messages, replica events) stamped with a
//! simulated or wall-clock time, and emits [`action::Action`]s that the
//! embedding runtime delivers. The same state machine is driven by the
//! discrete-event harness in `cup-simnet` and by the threaded live runtime
//! in `cup-runtime`.
//!
//! The protocol, following the paper section by section:
//!
//! * **§2.3 node bookkeeping** — per-key cached index entries, a
//!   *Pending-First-Update* flag coalescing query bursts, an interest
//!   record per neighbor ([`interest::InterestSet`]), and a popularity
//!   measure ([`popularity::Popularity`]).
//! * **§2.4 update types** — first-time updates, deletes, refreshes, and
//!   appends ([`message::UpdateKind`]).
//! * **§2.5–2.7 handlers** — query, update, and clear-bit handling with
//!   the exact case analysis of the paper ([`node::CupNode`]).
//! * **§2.8 adaptive push control** — bounded outgoing update queues with
//!   proportional capacity allocation, priority re-ordering, and expiry
//!   ([`capacity::OutgoingQueues`]).
//! * **§2.9 churn support** — interest patching on neighbor changes and
//!   index hand-over hooks.
//! * **§3.4 cut-off policies** — linear and logarithmic
//!   probability-based thresholds, the log-based second-chance policy, the
//!   fixed push-level policy used to find the optimal level, and an
//!   adaptive policy tuned from the locally observed justified ratio —
//!   assigned per key class through [`policy::PropagationPolicy`]
//!   ([`policy::CutoffPolicy`]).
//! * **§3.1 justified-update accounting** — shared by the simulation and
//!   live runtimes ([`justify::JustificationTracker`]).
//! * **§3.6 replica-independent cut-off** — both the naive and the fixed
//!   popularity-reset rules ([`popularity::ResetMode`]).
//!
//! A standard caching baseline (expiration-based pull caching, the
//! comparison system in every experiment of the paper) is available as
//! [`config::Mode::StandardCaching`] on the same node implementation.

pub mod action;
pub mod audit;
pub mod capacity;
pub mod clock;
pub mod config;
pub mod directory;
pub mod entry;
pub mod interest;
pub mod justify;
pub mod keystate;
pub mod message;
pub mod node;
pub mod obs;
pub mod policy;
pub mod popularity;
pub mod stats;
pub mod surface;

pub use action::Action;
pub use audit::{sample_targets, AuditTally};
pub use clock::Clock;
pub use config::{AuditConfig, Mode, NodeConfig};
pub use entry::IndexEntry;
pub use justify::JustificationTracker;
pub use message::{ClientId, Message, ReplicaEvent, Requester, Update, UpdateKind};
pub use node::CupNode;
pub use obs::{trace_diff, Hist, TraceBuf, TraceDivergence, TraceEvent, TraceKind};
pub use policy::{CutoffPolicy, PolicyState, PropagationPolicy};
pub use popularity::ResetMode;
