//! Justified-update accounting (§3.1) — shared by both runtimes.
//!
//! An update pushed down to node N with critical window T is *justified*
//! if at least one query for the key is posted within T anywhere in the
//! virtual subtree V(N, K) — the set of nodes whose (virtual) query path
//! to the authority passes through N. Because overlay routing is
//! deterministic, V(N, K) membership is decidable per query: when a query
//! for K is posted at X, every node on the virtual path X → authority has
//! X in its subtree. The tracker therefore records open windows per
//! `(node, key)` and marks them justified as queries walk their virtual
//! paths.
//!
//! The tracker lives in `cup-core` so the DES harness (`cup-simnet`) and
//! the sharded live runtime (`cup-runtime`) report the same
//! investment-return metric from the same code — the accounting is part
//! of the protocol's decision plane, not a simulation-only analysis.

use std::collections::BTreeMap;

use cup_des::{KeyId, NodeId, SimTime};

/// One pending justification window.
#[derive(Debug, Clone, Copy)]
struct Window {
    opened: SimTime,
    closes: SimTime,
    justified: bool,
}

impl Window {
    /// A window is settled once it can never change state again: it was
    /// justified, or it closed unjustified.
    fn settled(&self, now: SimTime) -> bool {
        self.justified || self.closes <= now
    }
}

/// Tracks justification windows for maintenance updates.
///
/// Windows live in a `BTreeMap` so `prune_settled` and any future
/// whole-tracker walk visit slots in `(node, key)` order — both
/// runtimes share this tracker, and its traversal order must never be
/// a per-instance hash accident.
#[derive(Debug, Default)]
pub struct JustificationTracker {
    windows: BTreeMap<(NodeId, KeyId), Vec<Window>>,
    justified: u64,
    total: u64,
}

impl JustificationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        JustificationTracker::default()
    }

    /// Records a maintenance update delivered to `node` at `now` whose
    /// justification window closes at `closes`.
    pub fn on_update_delivered(&mut self, node: NodeId, key: KeyId, now: SimTime, closes: SimTime) {
        self.total += 1;
        if closes <= now {
            // Window already shut (an update that expired in transit was
            // dropped earlier; a zero-length window can never be
            // justified).
            return;
        }
        let slot = self.windows.entry((node, key)).or_default();
        // Prune settled windows opportunistically to bound memory.
        slot.retain(|w| !w.settled(now));
        slot.push(Window {
            opened: now,
            closes,
            justified: false,
        });
    }

    /// Records a query for `key` posted at time `now` whose virtual path
    /// (posting node → authority, inclusive) is `path`. Every open window
    /// on the path containing `now` becomes justified (and is then
    /// settled, so the walk doubles as pruning for slots the update
    /// stream no longer touches).
    pub fn on_query(&mut self, key: KeyId, now: SimTime, path: &[NodeId]) {
        for &node in path {
            if let Some(slot) = self.windows.get_mut(&(node, key)) {
                for w in slot.iter_mut() {
                    if !w.justified && w.opened <= now && now < w.closes {
                        w.justified = true;
                        self.justified += 1;
                    }
                }
                slot.retain(|w| !w.settled(now));
                if slot.is_empty() {
                    self.windows.remove(&(node, key));
                }
            }
        }
    }

    /// Drops every settled window (and empty slot) as of `now`. The
    /// per-event hooks already prune the slots they touch; long-lived
    /// deployments call this periodically to reclaim slots whose traffic
    /// stopped entirely.
    pub fn prune_settled(&mut self, now: SimTime) {
        self.windows.retain(|_, slot| {
            slot.retain(|w| !w.settled(now));
            !slot.is_empty()
        });
    }

    /// Number of justified updates so far.
    pub fn justified(&self) -> u64 {
        self.justified
    }

    /// Number of updates tracked so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of tracked updates justified so far.
    pub fn justified_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.justified as f64 / self.total as f64
        }
    }

    /// Windows currently held open in memory (the memory-bound metric:
    /// settled windows must not accumulate here).
    pub fn open_windows(&self) -> usize {
        self.windows.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: KeyId = KeyId(1);

    #[test]
    fn query_in_window_justifies() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(5),
            KEY,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        t.on_query(
            KEY,
            SimTime::from_secs(15),
            &[NodeId(7), NodeId(5), NodeId(0)],
        );
        assert_eq!(t.justified(), 1);
        assert_eq!(t.total(), 1);
        assert_eq!(t.justified_ratio(), 1.0);
    }

    #[test]
    fn query_after_window_does_not_justify() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(5),
            KEY,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        t.on_query(KEY, SimTime::from_secs(25), &[NodeId(5)]);
        assert_eq!(t.justified(), 0);
    }

    #[test]
    fn query_off_path_does_not_justify() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(5),
            KEY,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        t.on_query(KEY, SimTime::from_secs(15), &[NodeId(7), NodeId(8)]);
        assert_eq!(t.justified(), 0);
    }

    #[test]
    fn other_key_does_not_justify() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(5),
            KEY,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        t.on_query(KeyId(2), SimTime::from_secs(15), &[NodeId(5)]);
        assert_eq!(t.justified(), 0);
    }

    #[test]
    fn one_query_can_justify_updates_along_whole_path() {
        let mut t = JustificationTracker::new();
        for n in [1u32, 2, 3] {
            t.on_update_delivered(
                NodeId(n),
                KEY,
                SimTime::from_secs(10),
                SimTime::from_secs(100),
            );
        }
        t.on_query(
            KEY,
            SimTime::from_secs(50),
            &[NodeId(3), NodeId(2), NodeId(1)],
        );
        assert_eq!(t.justified(), 3);
    }

    #[test]
    fn each_window_justified_at_most_once() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(1),
            KEY,
            SimTime::from_secs(0),
            SimTime::from_secs(100),
        );
        t.on_query(KEY, SimTime::from_secs(10), &[NodeId(1)]);
        t.on_query(KEY, SimTime::from_secs(20), &[NodeId(1)]);
        assert_eq!(t.justified(), 1);
    }

    #[test]
    fn already_closed_window_counts_in_total_only() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(1),
            KEY,
            SimTime::from_secs(10),
            SimTime::from_secs(10),
        );
        assert_eq!(t.total(), 1);
        t.on_query(KEY, SimTime::from_secs(10), &[NodeId(1)]);
        assert_eq!(t.justified(), 0);
    }

    #[test]
    fn justified_windows_are_pruned_on_the_query_walk() {
        let mut t = JustificationTracker::new();
        t.on_update_delivered(
            NodeId(1),
            KEY,
            SimTime::from_secs(0),
            SimTime::from_secs(100),
        );
        assert_eq!(t.open_windows(), 1);
        t.on_query(KEY, SimTime::from_secs(10), &[NodeId(1)]);
        assert_eq!(t.open_windows(), 0, "a justified window is settled");
        assert_eq!(t.justified(), 1, "pruning keeps the counters");
    }

    #[test]
    fn prune_settled_reclaims_abandoned_slots() {
        let mut t = JustificationTracker::new();
        for n in 0..4u32 {
            t.on_update_delivered(
                NodeId(n),
                KEY,
                SimTime::from_secs(0),
                SimTime::from_secs(50),
            );
        }
        assert_eq!(t.open_windows(), 4);
        // Still open at t = 49, all expired by t = 50.
        t.prune_settled(SimTime::from_secs(49));
        assert_eq!(t.open_windows(), 4);
        t.prune_settled(SimTime::from_secs(50));
        assert_eq!(t.open_windows(), 0);
        assert_eq!(t.total(), 4, "pruning never rewrites history");
    }
}
