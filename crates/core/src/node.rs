//! The CUP node state machine.
//!
//! A [`CupNode`] implements the complete per-node protocol of the paper:
//! query handling (§2.5), update handling (§2.6), clear-bit handling
//! (§2.7), authority-side replica bookkeeping (§2.1, §2.4), adaptive
//! capacity-controlled push (§2.8), and churn patching hooks (§2.9). It is
//! runtime-agnostic: handlers take the current time and return
//! [`Action`]s; the embedding runtime routes queries (supplying the
//! `upstream` next hop toward each key's authority) and delivers messages.

use std::collections::HashMap;

use cup_des::{KeyId, NodeId, ReplicaId, SimTime};

use crate::action::Action;
use crate::audit::{sample_targets, AuditTally};
use crate::capacity::OutgoingQueues;
use crate::config::{Mode, NodeConfig};
use crate::directory::{DirectoryChange, LocalDirectory};
use crate::entry::IndexEntry;
use crate::keystate::KeyState;
use crate::message::{Message, ReplicaEvent, Requester, Update, UpdateKind};
use crate::policy::CutoffContext;
use crate::stats::NodeStats;

/// A replica id used on first-time updates that carry no entries (negative
/// responses); it never collides with real replicas.
const NO_REPLICA: cup_des::ReplicaId = cup_des::ReplicaId(u32::MAX);

/// One peer-to-peer node running CUP (or the standard-caching baseline).
#[derive(Debug)]
pub struct CupNode {
    id: NodeId,
    config: NodeConfig,
    keys: HashMap<KeyId, KeyState>,
    directory: LocalDirectory,
    outgoing: OutgoingQueues,
    /// §3.6 refresh suppression: per-key count of refreshes seen since
    /// the last one propagated.
    refresh_skips: HashMap<KeyId, u32>,
    /// §3.6 refresh aggregation: per-key batch of refreshed entries
    /// awaiting the batching window.
    refresh_batches: HashMap<KeyId, RefreshBatch>,
    /// Local protocol counters (no network cost).
    pub stats: NodeStats,
}

/// A pending batch of aggregated replica refreshes.
#[derive(Debug, Clone)]
struct RefreshBatch {
    opened: SimTime,
    entries: Vec<IndexEntry>,
}

impl CupNode {
    /// Creates a node with the given configuration.
    pub fn new(id: NodeId, config: NodeConfig) -> Self {
        CupNode {
            id,
            config,
            keys: HashMap::new(),
            directory: LocalDirectory::new(),
            outgoing: OutgoingQueues::new(),
            refresh_skips: HashMap::new(),
            refresh_batches: HashMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Switches the §2.8 capacity limiter on or off at runtime (a node's
    /// "ability or willingness to propagate updates may vary with its
    /// workload"). While limited, forwarded updates wait in the outgoing
    /// queues until [`CupNode::service_outgoing`] releases them.
    pub fn set_capacity_limited(&mut self, limited: bool) {
        self.config.capacity_limited = limited;
    }

    /// Read access to the per-key state (tests and diagnostics).
    pub fn key_state(&self, key: KeyId) -> Option<&KeyState> {
        self.keys.get(&key)
    }

    /// Read access to the local index directory.
    pub fn directory(&self) -> &LocalDirectory {
        &self.directory
    }

    /// Number of updates currently waiting in the outgoing queues.
    pub fn queued_updates(&self) -> usize {
        self.outgoing.total_len()
    }

    /// Handles a search query for `key` posted by `from` (§2.5).
    ///
    /// `upstream` is the next hop toward the key's authority, or `None`
    /// if this node *is* the authority. In every case the node updates its
    /// popularity measure and registers neighbor interest; then:
    ///
    /// * **authority** — answer from the local directory immediately;
    /// * **case 1** (fresh entries cached) — answer from cache with a
    ///   first-time update;
    /// * **case 2** (key not in cache) — mark Pending-First-Update and
    ///   push one query upstream;
    /// * **case 3** (all entries expired) — as case 2, but the query is
    ///   coalesced if the flag is already set.
    pub fn handle_query(
        &mut self,
        now: SimTime,
        key: KeyId,
        from: Requester,
        upstream: Option<NodeId>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_query_into(now, key, from, upstream, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::handle_query`]: actions are
    /// pushed into `out`, so a driver can reuse one buffer across events
    /// (the simulation harness's hot path).
    pub fn handle_query_into(
        &mut self,
        now: SimTime,
        key: KeyId,
        from: Requester,
        upstream: Option<NodeId>,
        out: &mut Vec<Action>,
    ) {
        match from {
            Requester::Neighbor(_) => self.stats.neighbor_queries += 1,
            Requester::Client(_) => self.stats.client_queries += 1,
        }

        let Some(upstream) = upstream else {
            self.answer_as_authority(now, key, from, out);
            return;
        };

        let st = self.keys.entry(key).or_default();
        st.popularity.record_query();
        if let Requester::Neighbor(n) = from {
            st.interest.set(n);
        }

        if st.has_fresh(now) {
            if matches!(from, Requester::Client(_)) {
                self.stats.client_hits += 1;
            }
            let entries = st.fresh_entries(now);
            let depth = st.last_depth;
            self.respond(from, key, entries, depth.saturating_add(1), now, out);
            // Served from cache: the moment worth double-checking the
            // cache's honesty (traffic-driven, rate-limited).
            self.maybe_audit(now, key, out);
            return;
        }

        // A miss: classify for the posting node's statistics.
        if matches!(from, Requester::Client(_)) {
            if st.never_cached() {
                self.stats.first_time_misses += 1;
            } else {
                self.stats.freshness_misses += 1;
            }
        }

        match self.config.mode {
            Mode::Cup => {
                match from {
                    Requester::Client(c) => st.waiting_clients.push(c),
                    Requester::Neighbor(_) => {
                        // Remember the waiting neighbor so the first-time
                        // update (the response) reaches it. Coalescing:
                        // one response per neighbor however many queries
                        // it coalesces on its own side.
                        if !st.pending_requesters.contains(&from) {
                            st.pending_requesters.push(from);
                        }
                    }
                }
                let flag_stale = st.pending_first_update
                    && now.saturating_since(st.pfu_since) > self.config.pfu_timeout;
                if st.pending_first_update && !flag_stale {
                    // Coalesced into the in-flight query.
                    self.stats.coalesced_queries += 1;
                } else {
                    if flag_stale {
                        self.stats.pfu_retries += 1;
                        self.stats
                            .pfu_retry_age
                            .record(now.saturating_since(st.pfu_since).as_micros());
                    }
                    st.pending_first_update = true;
                    st.pfu_since = now;
                    out.push(Action::send(upstream, Message::Query { key }));
                }
            }
            Mode::StandardCaching => {
                // No coalescing: every missing query is forwarded and the
                // requester recorded for per-query response routing.
                st.pending_requesters.push(from);
                out.push(Action::send(upstream, Message::Query { key }));
            }
        }
    }

    /// Answers a query at the authority node from the local directory.
    fn answer_as_authority(
        &mut self,
        now: SimTime,
        key: KeyId,
        from: Requester,
        out: &mut Vec<Action>,
    ) {
        if matches!(from, Requester::Client(_)) {
            // The authority always answers immediately (no miss).
            self.stats.client_hits += 1;
        }
        if self.config.mode == Mode::Cup {
            if let Requester::Neighbor(n) = from {
                // Register the neighbor so future replica updates flow to
                // it.
                self.keys.entry(key).or_default().interest.set(n);
            }
        }
        let entries = self.directory.fresh_entries(key, now);
        self.respond(from, key, entries, 1, now, out);
    }

    /// Builds the response to one requester: a client gets its held-open
    /// connection answered; a neighbor gets a first-time update.
    fn respond(
        &mut self,
        to: Requester,
        key: KeyId,
        entries: Vec<IndexEntry>,
        depth: u32,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        match to {
            Requester::Client(client) => out.push(Action::RespondClient {
                client,
                key,
                entries,
            }),
            Requester::Neighbor(n) => {
                let replica = entries.first().map_or(NO_REPLICA, |e| e.replica);
                let update = Update {
                    key,
                    kind: UpdateKind::FirstTime,
                    entries,
                    replica,
                    depth,
                    origin: now,
                    window_end: SimTime::MAX,
                };
                self.stats.updates_forwarded += 1;
                // Responses are not throttled: a capacity-limited node
                // stops *maintaining* downstream caches (its dependents
                // fall back to standard caching, §2.8), but it still
                // answers queries.
                out.push(Action::send(n, Message::Update(update)));
            }
        }
    }

    /// Handles an update arriving from upstream neighbor `from` (§2.6).
    ///
    /// * **case 3** — the update expired in transit: drop it;
    /// * **case 1** — Pending-First-Update set and this is the first-time
    ///   update: cache it, clear the flag, answer held-open clients, and
    ///   forward to interested neighbors;
    /// * **case 2** — flag clear: if no neighbor is interested, run the
    ///   cut-off policy and either push a Clear-Bit upstream or apply the
    ///   update; otherwise apply and forward to interested neighbors.
    pub fn handle_update(&mut self, now: SimTime, from: NodeId, update: Update) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_update_into(now, from, update, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::handle_update`]: actions are
    /// pushed into `out`.
    pub fn handle_update_into(
        &mut self,
        now: SimTime,
        from: NodeId,
        mut update: Update,
        out: &mut Vec<Action>,
    ) {
        self.stats.updates_received += 1;
        // Case 3: the network path was slow and the update expired.
        if update.is_expired(now) {
            self.stats.updates_expired_on_arrival += 1;
            return;
        }
        // Audit hygiene: with the sampled audit on, a replica this node
        // has seen retired (delete tombstone) cannot be resurrected by
        // any later update — otherwise a lying upstream re-poisons a
        // repaired cache on the next miss. A maintenance update scrubbed
        // empty dies here; a scrubbed first-time update still proceeds
        // (it is a response — a negative one).
        if self.config.audit.is_some() && !update.entries.is_empty() {
            if let Some(st) = self.keys.get(&update.key) {
                if !st.retired.is_empty() {
                    update.entries.retain(|e| !st.retired.contains(&e.replica));
                    if update.entries.is_empty() && update.kind != UpdateKind::FirstTime {
                        return;
                    }
                }
            }
        }
        let st = self.keys.entry(update.key).or_default();

        if st.pending_first_update && update.kind == UpdateKind::FirstTime {
            // Case 1.
            st.apply(&update);
            st.pending_first_update = false;
            st.popularity
                .on_update(update.replica, self.config.reset_mode);
            let fresh = st.fresh_entries(now);
            let clients: Vec<_> = st.waiting_clients.drain(..).collect();
            let pending: Vec<_> = st.pending_requesters.drain(..).collect();
            for client in clients {
                out.push(Action::RespondClient {
                    client,
                    key: update.key,
                    entries: fresh.clone(),
                });
            }
            // The first-time update is a *response*: it travels down the
            // reverse query path to every waiting requester. Neighbors
            // that are merely subscribed (interest bit set, nothing
            // pending) are served by the maintenance update stream, not
            // by other nodes' responses — this is what makes push level 0
            // degenerate exactly to standard caching (§3.3).
            for requester in pending {
                self.answer_requester(requester, &update, &fresh, out);
            }
            return;
        }

        if self.config.mode == Mode::StandardCaching {
            // Baseline: a response arrived; cache it and answer every
            // recorded requester (one message each — no coalescing).
            st.apply(&update);
            let fresh = st.fresh_entries(now);
            let pending: Vec<_> = st.pending_requesters.drain(..).collect();
            let clients: Vec<_> = st.waiting_clients.drain(..).collect();
            for client in clients {
                out.push(Action::RespondClient {
                    client,
                    key: update.key,
                    entries: fresh.clone(),
                });
            }
            for requester in pending {
                self.answer_requester(requester, &update, &fresh, out);
            }
            return;
        }

        // Case 2 (and stray non-first-time updates while the flag is set,
        // which are applied without clearing the flag).
        if st.interest.is_empty() && !st.pending_first_update {
            let queries_in_window = st.popularity.queries_since_reset();
            let triggered = st
                .popularity
                .on_update(update.replica, self.config.reset_mode);
            if triggered {
                let ctx = CutoffContext {
                    queries_since_reset: queries_in_window,
                    consecutive_empty: st.popularity.consecutive_empty(),
                    depth: update.depth,
                };
                if !self
                    .config
                    .policies
                    .decide(update.key, &mut st.policy_state, &ctx)
                {
                    // Not popular enough: cut off our incoming supply.
                    self.stats.cutoffs += 1;
                    self.stats.clear_bits_sent += 1;
                    out.push(Action::send(from, Message::ClearBit { key: update.key }));
                    return;
                }
            }
            st.apply(&update);
            return;
        }

        st.popularity
            .on_update(update.replica, self.config.reset_mode);
        st.apply(&update);
        self.forward_to_interested(update, Some(from), out);
    }

    /// Answers one recorded requester (standard-caching response routing).
    fn answer_requester(
        &mut self,
        requester: Requester,
        update: &Update,
        fresh: &[IndexEntry],
        out: &mut Vec<Action>,
    ) {
        match requester {
            Requester::Client(client) => out.push(Action::RespondClient {
                client,
                key: update.key,
                entries: fresh.to_vec(),
            }),
            Requester::Neighbor(n) => {
                self.stats.updates_forwarded += 1;
                // Like `respond`: responses bypass the capacity queues so
                // the network stays functional at zero capacity.
                out.push(Action::send(n, Message::Update(update.forwarded())));
            }
        }
    }

    /// Pushes an update to every interested neighbor except `exclude`
    /// (the neighbor it came from), honoring the sender-side push-level
    /// cap and the capacity limiter.
    fn forward_to_interested(
        &mut self,
        update: Update,
        exclude: Option<NodeId>,
        actions: &mut Vec<Action>,
    ) {
        let child_depth = update.depth.saturating_add(1);
        if update.kind != UpdateKind::FirstTime {
            if let Some(level) = self.config.policies.sender_side_level(update.key) {
                if child_depth > level {
                    return;
                }
            }
        }
        let st = self
            .keys
            .get(&update.key)
            .expect("forwarding requires key state");
        let targets: Vec<NodeId> = st.interest.iter().filter(|&n| Some(n) != exclude).collect();
        for to in targets {
            let fwd = update.forwarded();
            self.stats.updates_forwarded += 1;
            if self.config.capacity_limited {
                self.outgoing.enqueue(to, fwd);
            } else {
                actions.push(Action::send(to, Message::Update(fwd)));
            }
        }
    }

    /// Handles a Clear-Bit control message from downstream neighbor
    /// `from` (§2.7): clear that neighbor's interest, and if the key is
    /// unpopular here and no other neighbor is interested, propagate the
    /// Clear-Bit toward the authority.
    pub fn handle_clear_bit(
        &mut self,
        now: SimTime,
        key: KeyId,
        from: NodeId,
        upstream: Option<NodeId>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_clear_bit_into(now, key, from, upstream, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::handle_clear_bit`]: actions
    /// are pushed into `out`.
    pub fn handle_clear_bit_into(
        &mut self,
        _now: SimTime,
        key: KeyId,
        from: NodeId,
        upstream: Option<NodeId>,
        out: &mut Vec<Action>,
    ) {
        self.stats.clear_bits_received += 1;
        let Some(st) = self.keys.get_mut(&key) else {
            return;
        };
        st.interest.clear(from);
        // Stop wasting queue space on the disinterested neighbor.
        let dropped = self.outgoing.drop_matching(from, key);
        self.stats.updates_forwarded = self.stats.updates_forwarded.saturating_sub(dropped as u64);
        let st = self.keys.get_mut(&key).expect("state exists");
        if !st.interest.is_empty() {
            return;
        }
        let Some(upstream) = upstream else {
            // The authority has no upstream to notify.
            return;
        };
        let ctx = CutoffContext {
            queries_since_reset: st.popularity.queries_since_reset(),
            consecutive_empty: st.popularity.consecutive_empty(),
            depth: st.last_depth,
        };
        // Read-only evaluation: losing a downstream subscriber is not an
        // update decision point, so no interval is consumed here.
        if !self.config.policies.would_keep(key, &st.policy_state, &ctx) {
            self.stats.clear_bits_sent += 1;
            out.push(Action::send(upstream, Message::ClearBit { key }));
        }
    }

    /// Opens a rate-limited sampled audit round for `key` if one is due
    /// (the LOCKSS defense; see [`crate::config::AuditConfig`]). Called
    /// after a cache hit is served, so audits are traffic-driven — a node
    /// only audits keys it actually answers from — and the per-key
    /// `interval` bounds the overhead regardless of query rate.
    fn maybe_audit(&mut self, now: SimTime, key: KeyId, out: &mut Vec<Action>) {
        let Some(cfg) = self.config.audit else {
            return;
        };
        let st = self.keys.get_mut(&key).expect("audited key has state");
        if now.saturating_since(st.last_audit) < cfg.interval {
            return;
        }
        st.last_audit = now;
        st.audit_round += 1;
        let round = st.audit_round;
        let targets = sample_targets(&cfg, self.id, key, round);
        if targets.is_empty() {
            st.audit = None;
            return;
        }
        st.audit = Some(AuditTally::new(round, targets.len() as u32));
        self.stats.audits_started += 1;
        for to in targets {
            out.push(Action::send(to, Message::AuditProbe { key, round }));
        }
    }

    /// Answers an audit probe from `from`: everything this node knows
    /// about `key` — directory knowledge (authoritative), fresh cached
    /// entries, and delete tombstones (the firsthand negative knowledge
    /// a poisoned auditor is missing).
    pub fn handle_audit_probe(
        &mut self,
        now: SimTime,
        key: KeyId,
        round: u64,
        from: NodeId,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_audit_probe_into(now, key, round, from, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::handle_audit_probe`].
    pub fn handle_audit_probe_into(
        &mut self,
        now: SimTime,
        key: KeyId,
        round: u64,
        from: NodeId,
        out: &mut Vec<Action>,
    ) {
        self.stats.audit_probes_served += 1;
        let mut entries = self.directory.fresh_entries(key, now);
        let mut retired = Vec::new();
        if let Some(st) = self.keys.get(&key) {
            for e in st.fresh_entries(now) {
                if !entries.iter().any(|d| d.replica == e.replica) {
                    entries.push(e);
                }
            }
            retired = st.retired.clone();
        }
        out.push(Action::send(
            from,
            Message::AuditReply {
                key,
                round,
                entries,
                retired,
            },
        ));
    }

    /// Tallies one audit reply for this node's open round. A reply
    /// *dissents* against every replica this node still serves fresh but
    /// the pollee has seen retired; when any replica's dissent reaches
    /// `AuditConfig::quorum`, the node repairs its cache — evicts the
    /// condemned replicas (tombstoning them) and adopts the dissenters'
    /// fresh entries (the refetch). Replies that merely *lack* an entry
    /// abstain, so polling nodes that never cached the key cannot evict
    /// a healthy cache.
    pub fn handle_audit_reply(
        &mut self,
        now: SimTime,
        key: KeyId,
        round: u64,
        entries: &[IndexEntry],
        retired: &[ReplicaId],
    ) {
        self.stats.audit_replies += 1;
        let Some(cfg) = self.config.audit else {
            return;
        };
        let Some(st) = self.keys.get_mut(&key) else {
            return;
        };
        let my_fresh: Vec<ReplicaId> = st.fresh_entries(now).iter().map(|e| e.replica).collect();
        // `last_audit` is the instant the currently open round was
        // started, so for a reply that matches the open round it is the
        // probe's send time — the round-trip base.
        let opened = st.last_audit;
        // Recorded for every reply reaching an auditing key, *before*
        // the round checks below: whether a reply lands before or after
        // its round closes depends on arrival interleaving, which the
        // sharded live runtime does not reproduce — the counters gated
        // behind it would diverge from the DES. A reply from a
        // superseded round measures against the newer round's start
        // (saturating to zero), which keeps the sample set deterministic.
        self.stats
            .audit_rtt
            .record(now.saturating_since(opened).as_micros());
        let Some(tally) = st.audit.as_mut() else {
            return;
        };
        if tally.round != round {
            // A late reply from a superseded round.
            return;
        }
        tally.received += 1;
        let mut dissented = false;
        for &replica in &my_fresh {
            if retired.contains(&replica) {
                tally.note_dissent(replica);
                dissented = true;
            }
        }
        if dissented {
            let offered: Vec<IndexEntry> = entries
                .iter()
                .filter(|e| e.is_fresh(now))
                .copied()
                .collect();
            tally.offer(&offered);
        }
        let condemned = tally.condemned(cfg.quorum);
        if !condemned.is_empty() {
            let adopt: Vec<IndexEntry> = tally.payload().to_vec();
            st.audit = None;
            st.audit_repair(&condemned, &adopt);
            self.stats.audit_repairs += 1;
            return;
        }
        if tally.received >= tally.expected {
            // Round closed clean: the sample agrees with us (or abstains).
            st.audit = None;
        }
    }

    /// Handles a replica birth/refresh/deletion arriving at this node as
    /// the key's authority, updating the local directory and propagating
    /// the corresponding append/refresh/delete update to interested
    /// neighbors.
    pub fn handle_replica_event(&mut self, now: SimTime, event: ReplicaEvent) -> Vec<Action> {
        let mut out = Vec::new();
        self.handle_replica_event_into(now, event, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::handle_replica_event`]:
    /// actions are pushed into `out`.
    pub fn handle_replica_event_into(
        &mut self,
        now: SimTime,
        event: ReplicaEvent,
        out: &mut Vec<Action>,
    ) {
        let key = event.key();
        let change = self.directory.apply(event, now);
        self.propagate_change(now, key, change, out);
    }

    /// Expires directory entries whose replicas stopped refreshing and
    /// propagates the resulting deletes (§2.4: missing keep-alives).
    pub fn expire_directory(&mut self, now: SimTime) -> Vec<Action> {
        let dead = self.directory.expire(now);
        let mut actions = Vec::new();
        for entry in dead {
            self.propagate_change(
                now,
                entry.key,
                DirectoryChange::Removed(entry),
                &mut actions,
            );
        }
        actions
    }

    /// Turns a directory change into a propagated update.
    fn propagate_change(
        &mut self,
        now: SimTime,
        key: KeyId,
        change: DirectoryChange,
        out: &mut Vec<Action>,
    ) {
        if self.config.mode == Mode::StandardCaching {
            // The baseline never pushes maintenance updates.
            return;
        }
        let (kind, entry) = match change {
            DirectoryChange::Added(e) => (UpdateKind::Append, e),
            DirectoryChange::Refreshed(e) => (UpdateKind::Refresh, e),
            DirectoryChange::Removed(e) => (UpdateKind::Delete, e),
            DirectoryChange::Nothing => return,
        };
        if self.keys.get(&key).is_none_or(|st| st.interest.is_empty()) {
            return;
        }
        let entries = match kind {
            UpdateKind::Refresh => {
                // §3.6 overhead reductions for keys with many replicas.
                if !self.refresh_due(key) {
                    return;
                }
                match self.batch_refresh(key, entry, now) {
                    Some(batch) => batch,
                    None => return,
                }
            }
            _ => vec![entry],
        };
        let window_end = entries
            .iter()
            .map(IndexEntry::expires_at)
            .max()
            .unwrap_or_else(|| entry.expires_at());
        let update = Update {
            key,
            kind,
            replica: entries.first().map_or(entry.replica, |e| e.replica),
            window_end,
            entries,
            // The authority *sends* at depth 0; its children receive
            // depth 1 (`forward_to_interested` increments).
            depth: 0,
            origin: now,
        };
        self.forward_to_interested(update, None, out);
    }

    /// §3.6 subset suppression: returns `true` when this refresh is the
    /// k-th since the last propagated one for the key.
    fn refresh_due(&mut self, key: KeyId) -> bool {
        let k = self.config.refresh_keep_one_in.max(1);
        if k == 1 {
            return true;
        }
        let seen = self.refresh_skips.entry(key).or_insert(0);
        *seen += 1;
        if *seen >= k {
            *seen = 0;
            true
        } else {
            false
        }
    }

    /// §3.6 aggregation: accumulates refreshed entries per key and
    /// releases them as one batch once the window has elapsed since the
    /// batch opened. Returns `None` while the batch is still filling.
    fn batch_refresh(
        &mut self,
        key: KeyId,
        entry: IndexEntry,
        now: SimTime,
    ) -> Option<Vec<IndexEntry>> {
        let Some(window) = self.config.refresh_batch_window else {
            return Some(vec![entry]);
        };
        let batch = self.refresh_batches.entry(key).or_insert(RefreshBatch {
            opened: now,
            entries: Vec::new(),
        });
        match batch
            .entries
            .iter_mut()
            .find(|e| e.replica == entry.replica)
        {
            Some(slot) => *slot = entry,
            None => batch.entries.push(entry),
        }
        if now.saturating_since(batch.opened) >= window {
            let done = self.refresh_batches.remove(&key).expect("batch exists");
            Some(done.entries)
        } else {
            None
        }
    }

    /// Releases capacity-limited outgoing updates: pushes out roughly
    /// `capacity_fraction` of what was enqueued since the last service
    /// (§2.8). Returns the transmissions to perform now.
    pub fn service_outgoing(&mut self, now: SimTime, capacity_fraction: f64) -> Vec<Action> {
        let mut out = Vec::new();
        self.service_outgoing_into(now, capacity_fraction, &mut out);
        out
    }

    /// Allocation-free variant of [`CupNode::service_outgoing`]: actions
    /// are pushed into `out`.
    pub fn service_outgoing_into(
        &mut self,
        now: SimTime,
        capacity_fraction: f64,
        out: &mut Vec<Action>,
    ) {
        out.extend(
            self.outgoing
                .service(now, capacity_fraction)
                .into_iter()
                .map(|(to, u)| Action::send(to, Message::Update(u))),
        );
    }

    /// §2.9: a neighbor departed. Interest pointing at it is remapped to
    /// `successor` (the node that took over its zone) or dropped, and any
    /// queued updates for it are discarded.
    pub fn on_neighbor_departed(&mut self, departed: NodeId, successor: Option<NodeId>) {
        // cup-lint: allow(unordered-iteration, "independent per-key remap; no output or message is emitted, so visit order cannot leak")
        for st in self.keys.values_mut() {
            st.interest.remap(departed, successor);
        }
        self.outgoing.drop_neighbor(departed);
    }

    /// §2.9 hand-over: drains local-directory entries for keys selected
    /// by `predicate` (those whose ownership moved to another node).
    pub fn export_directory(&mut self, predicate: impl FnMut(KeyId) -> bool) -> Vec<IndexEntry> {
        self.directory.drain_keys(predicate)
    }

    /// §2.9 hand-over: merges entries received from a departing node or a
    /// split neighbor into the local directory, eliminating duplicates.
    pub fn import_directory(&mut self, entries: Vec<IndexEntry>) {
        self.directory.merge(entries);
    }

    /// Housekeeping: evicts expired cached entries to bound memory.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let mut evicted = 0;
        // cup-lint: allow(unordered-iteration, "per-key eviction summed into one count; addition is commutative, so order cannot leak")
        for st in self.keys.values_mut() {
            evicted += st.evict_expired(now);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use crate::policy::CutoffPolicy;
    use crate::popularity::ResetMode;
    use cup_des::{ReplicaId, SimDuration};

    const LIFE: SimDuration = SimDuration::from_secs(300);

    fn cup_node(id: u32) -> CupNode {
        CupNode::new(NodeId(id), NodeConfig::cup_default())
    }

    fn entry(key: u32, replica: u32, at: u64) -> IndexEntry {
        IndexEntry::new(KeyId(key), ReplicaId(replica), LIFE, SimTime::from_secs(at))
    }

    fn first_time(key: u32, entries: Vec<IndexEntry>, depth: u32) -> Update {
        let replica = entries.first().map_or(NO_REPLICA, |e| e.replica);
        Update {
            key: KeyId(key),
            kind: UpdateKind::FirstTime,
            entries,
            replica,
            depth,
            origin: SimTime::ZERO,
            window_end: SimTime::MAX,
        }
    }

    fn refresh(key: u32, replica: u32, at: u64, depth: u32) -> Update {
        let e = entry(key, replica, at);
        Update {
            key: KeyId(key),
            kind: UpdateKind::Refresh,
            entries: vec![e],
            replica: ReplicaId(replica),
            depth,
            origin: SimTime::from_secs(at),
            window_end: e.expires_at(),
        }
    }

    #[test]
    fn authority_answers_client_from_directory() {
        let mut node = cup_node(0);
        node.handle_replica_event(
            SimTime::ZERO,
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        let actions = node.handle_query(
            SimTime::from_secs(1),
            KeyId(1),
            Requester::Client(ClientId(7)),
            None,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::RespondClient {
                client, entries, ..
            } => {
                assert_eq!(*client, ClientId(7));
                assert_eq!(entries.len(), 1);
            }
            other => panic!("expected client response, got {other:?}"),
        }
        assert_eq!(node.stats.client_hits, 1);
    }

    #[test]
    fn authority_answers_neighbor_with_first_time_update() {
        let mut node = cup_node(0);
        node.handle_replica_event(
            SimTime::ZERO,
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        let actions = node.handle_query(
            SimTime::from_secs(1),
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        match &actions[0] {
            Action::Send {
                to,
                msg: Message::Update(u),
            } => {
                assert_eq!(*to, NodeId(5));
                assert_eq!(u.kind, UpdateKind::FirstTime);
                assert_eq!(u.depth, 1);
                assert_eq!(u.window_end, SimTime::MAX);
            }
            other => panic!("expected update, got {other:?}"),
        }
        // The neighbor is now registered for future replica updates.
        assert!(node
            .key_state(KeyId(1))
            .unwrap()
            .interest
            .contains(NodeId(5)));
    }

    #[test]
    fn query_miss_sets_pfu_and_pushes_upstream() {
        let mut node = cup_node(1);
        let actions = node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        assert_eq!(
            actions,
            vec![Action::send(NodeId(9), Message::Query { key: KeyId(1) })]
        );
        assert!(node.key_state(KeyId(1)).unwrap().pending_first_update);
        assert_eq!(node.stats.first_time_misses, 1);
    }

    #[test]
    fn burst_of_queries_coalesces_into_one() {
        let mut node = cup_node(1);
        let a1 = node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        let a2 = node.handle_query(
            SimTime::from_secs(1),
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        let a3 = node.handle_query(
            SimTime::from_secs(2),
            KeyId(1),
            Requester::Client(ClientId(2)),
            Some(NodeId(9)),
        );
        assert_eq!(a1.len(), 1, "first query goes upstream");
        assert!(a2.is_empty(), "second query coalesced");
        assert!(a3.is_empty(), "third query coalesced");
        assert_eq!(node.stats.coalesced_queries, 2);
    }

    #[test]
    fn first_time_update_answers_clients_and_interested_neighbors() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        let update = first_time(1, vec![entry(1, 0, 0)], 3);
        let actions = node.handle_update(SimTime::from_secs(1), NodeId(9), update);
        let mut client_responses = 0;
        let mut forwards = 0;
        for a in &actions {
            match a {
                Action::RespondClient { .. } => client_responses += 1,
                Action::Send {
                    to,
                    msg: Message::Update(u),
                } => {
                    assert_eq!(*to, NodeId(4));
                    assert_eq!(u.depth, 4, "depth increments downstream");
                    forwards += 1;
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(client_responses, 1);
        assert_eq!(forwards, 1);
        assert!(!node.key_state(KeyId(1)).unwrap().pending_first_update);
    }

    #[test]
    fn fresh_cache_answers_without_upstream_traffic() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        let actions = node.handle_query(
            SimTime::from_secs(2),
            KeyId(1),
            Requester::Client(ClientId(2)),
            Some(NodeId(9)),
        );
        assert!(matches!(actions[0], Action::RespondClient { .. }));
        assert_eq!(node.stats.client_hits, 1);
    }

    #[test]
    fn expired_update_dropped_on_arrival() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        // An update whose entry expired long ago.
        let stale = refresh(1, 0, 0, 2);
        let actions = node.handle_update(SimTime::from_secs(1_000), NodeId(9), stale);
        assert!(actions.is_empty());
        assert_eq!(node.stats.updates_expired_on_arrival, 1);
        assert!(
            node.key_state(KeyId(1)).unwrap().pending_first_update,
            "a stale refresh is not the awaited first-time update"
        );
    }

    #[test]
    fn second_chance_cuts_off_after_two_empty_intervals() {
        let mut node = cup_node(1);
        // Acquire the key (one query, answered).
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        // First refresh with no queries since: second chance, applied.
        let a1 = node.handle_update(SimTime::from_secs(300), NodeId(9), refresh(1, 0, 300, 2));
        assert!(a1.is_empty(), "kept receiving, nothing to forward");
        assert!(node
            .key_state(KeyId(1))
            .unwrap()
            .has_fresh(SimTime::from_secs(400)));
        // Second refresh with still no queries: cut off.
        let a2 = node.handle_update(SimTime::from_secs(600), NodeId(9), refresh(1, 0, 600, 2));
        assert_eq!(
            a2,
            vec![Action::send(NodeId(9), Message::ClearBit { key: KeyId(1) })]
        );
        assert_eq!(node.stats.cutoffs, 1);
        // The cut-off update was not applied.
        assert!(!node
            .key_state(KeyId(1))
            .unwrap()
            .has_fresh(SimTime::from_secs(700)));
    }

    #[test]
    fn queries_keep_the_subscription_alive() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        for round in 1..6 {
            let t = SimTime::from_secs(round * 300);
            // A query lands in every interval, so no cut-off ever fires.
            node.handle_query(
                t,
                KeyId(1),
                Requester::Client(ClientId(round)),
                Some(NodeId(9)),
            );
            let actions = node.handle_update(
                t + SimDuration::from_secs(1),
                NodeId(9),
                refresh(1, 0, round * 300, 2),
            );
            assert!(actions.is_empty(), "round {round}: no clear-bit expected");
        }
        assert_eq!(node.stats.cutoffs, 0);
    }

    #[test]
    fn updates_forward_only_to_interested_neighbors() {
        let mut node = cup_node(1);
        // Neighbor 4 registers interest; neighbor 5 does not.
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        let actions = node.handle_update(SimTime::from_secs(10), NodeId(9), refresh(1, 0, 10, 2));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Send {
                to,
                msg: Message::Update(u),
            } => {
                assert_eq!(*to, NodeId(4));
                assert_eq!(u.kind, UpdateKind::Refresh);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clear_bit_cascades_when_unpopular() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        // Make the key unpopular here: two empty decision windows.
        node.handle_update(SimTime::from_secs(300), NodeId(9), refresh(1, 0, 300, 2));
        node.handle_update(SimTime::from_secs(600), NodeId(9), refresh(1, 0, 600, 2));
        // Now the downstream neighbor loses interest.
        let actions = node.handle_clear_bit(
            SimTime::from_secs(700),
            KeyId(1),
            NodeId(4),
            Some(NodeId(9)),
        );
        assert_eq!(
            actions,
            vec![Action::send(NodeId(9), Message::ClearBit { key: KeyId(1) })]
        );
        assert!(node.key_state(KeyId(1)).unwrap().interest.is_empty());
    }

    #[test]
    fn clear_bit_stops_at_popular_node() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        // Local queries keep the key popular.
        node.handle_query(
            SimTime::from_secs(2),
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        let actions =
            node.handle_clear_bit(SimTime::from_secs(3), KeyId(1), NodeId(4), Some(NodeId(9)));
        assert!(actions.is_empty(), "popular key keeps its subscription");
    }

    #[test]
    fn push_level_zero_squelches_at_authority() {
        let config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 0 });
        let mut node = CupNode::new(NodeId(0), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        let actions = node.handle_replica_event(
            SimTime::from_secs(1),
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        assert!(actions.is_empty(), "push level 0 = standard caching");
    }

    #[test]
    fn push_level_caps_forwarding_depth() {
        let config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 3 });
        let mut node = CupNode::new(NodeId(1), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 3),
        );
        // We sit at depth 3; children would be at depth 4 > level.
        let actions = node.handle_update(SimTime::from_secs(10), NodeId(9), refresh(1, 0, 10, 3));
        assert!(actions.is_empty(), "no forwarding past the push level");
    }

    #[test]
    fn authority_propagates_replica_lifecycle() {
        let mut node = cup_node(0);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        let birth = node.handle_replica_event(
            SimTime::from_secs(1),
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        assert_eq!(birth.len(), 1);
        match &birth[0] {
            Action::Send {
                to,
                msg: Message::Update(u),
            } => {
                assert_eq!(*to, NodeId(5));
                assert_eq!(u.kind, UpdateKind::Append);
                assert_eq!(u.depth, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let refresh_actions = node.handle_replica_event(
            SimTime::from_secs(250),
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        assert!(matches!(
            &refresh_actions[0],
            Action::Send { msg: Message::Update(u), .. } if u.kind == UpdateKind::Refresh
        ));
        let delete_actions = node.handle_replica_event(
            SimTime::from_secs(260),
            ReplicaEvent::Deletion {
                key: KeyId(1),
                replica: ReplicaId(0),
            },
        );
        assert!(matches!(
            &delete_actions[0],
            Action::Send { msg: Message::Update(u), .. } if u.kind == UpdateKind::Delete
        ));
        assert!(node.directory().is_empty());
    }

    #[test]
    fn expire_directory_emits_deletes() {
        let mut node = cup_node(0);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        node.handle_replica_event(
            SimTime::ZERO,
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        let actions = node.expire_directory(SimTime::from_secs(301));
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            Action::Send { msg: Message::Update(u), .. } if u.kind == UpdateKind::Delete
        ));
    }

    #[test]
    fn standard_mode_forwards_every_query() {
        let mut node = CupNode::new(NodeId(1), NodeConfig::standard_caching());
        let a1 = node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        let a2 = node.handle_query(
            SimTime::from_secs(1),
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        assert_eq!(a1.len(), 1, "first query forwarded");
        assert_eq!(a2.len(), 1, "second query also forwarded (no coalescing)");
        // The response answers both requesters individually.
        let actions = node.handle_update(
            SimTime::from_secs(2),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn standard_mode_authority_never_propagates() {
        let mut node = CupNode::new(NodeId(0), NodeConfig::standard_caching());
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        let actions = node.handle_replica_event(
            SimTime::from_secs(1),
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn capacity_limited_maintenance_updates_wait_for_service() {
        let mut config = NodeConfig::cup_default();
        config.capacity_limited = true;
        let mut node = CupNode::new(NodeId(1), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        // The response itself is never throttled.
        let response = node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        assert_eq!(response.len(), 1, "first-time response sent immediately");
        assert_eq!(node.queued_updates(), 0);
        // A subsequent refresh for the interested neighbor is queued.
        let actions = node.handle_update(SimTime::from_secs(10), NodeId(9), refresh(1, 0, 10, 2));
        assert!(actions.is_empty(), "refresh must be queued, not sent");
        assert_eq!(node.queued_updates(), 1);
        let sent = node.service_outgoing(SimTime::from_secs(11), 1.0);
        assert_eq!(sent.len(), 1);
        assert_eq!(node.queued_updates(), 0);
    }

    #[test]
    fn zero_capacity_node_falls_back_to_standard_caching() {
        let mut config = NodeConfig::cup_default();
        config.capacity_limited = true;
        let mut node = CupNode::new(NodeId(1), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        node.handle_update(SimTime::from_secs(10), NodeId(9), refresh(1, 0, 10, 2));
        assert_eq!(node.queued_updates(), 1);
        // Zero capacity: nothing is ever sent; queue drains by expiry, so
        // the downstream neighbor silently falls back to expiration-based
        // caching (§2.8).
        assert!(node
            .service_outgoing(SimTime::from_secs(11), 0.0)
            .is_empty());
        assert!(node
            .service_outgoing(SimTime::from_secs(10_000), 0.0)
            .is_empty());
        assert_eq!(node.queued_updates(), 0, "expired entries left the queue");
    }

    #[test]
    fn pfu_timeout_retries_the_query() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        // Long after the timeout, a new query retries upstream instead of
        // coalescing forever against a lost response.
        let actions = node.handle_query(
            SimTime::from_secs(120),
            KeyId(1),
            Requester::Client(ClientId(2)),
            Some(NodeId(9)),
        );
        assert_eq!(actions.len(), 1);
        assert_eq!(node.stats.pfu_retries, 1);
    }

    #[test]
    fn cold_start_miss_at_late_time_is_not_a_pfu_retry() {
        // Epoch-0 guard: `pfu_since` defaults to t = 0, so a node that
        // never issued a PFU would look "stale since forever" if the
        // timeout check ran unconditionally. The `pending_first_update`
        // gate must keep a first-ever miss — at any clock reading — a
        // plain upstream push, never a spurious retry.
        let mut node = cup_node(1);
        let actions = node.handle_query(
            SimTime::from_secs(1_000_000),
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        assert_eq!(actions.len(), 1, "the miss pushes one query upstream");
        assert_eq!(node.stats.pfu_retries, 0, "no retry without a prior PFU");
        assert_eq!(node.stats.coalesced_queries, 0);
    }

    #[test]
    fn queries_at_time_zero_coalesce_instead_of_timing_out() {
        // The other cold-start edge: both queries land at t = 0, so
        // elapsed-since-PFU saturates to zero — which must read as
        // "in flight", not "timed out at t = 0".
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        let actions = node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(2)),
            Some(NodeId(9)),
        );
        assert!(actions.is_empty(), "the second query coalesces");
        assert_eq!(node.stats.coalesced_queries, 1);
        assert_eq!(node.stats.pfu_retries, 0);
    }

    #[test]
    fn pfu_exactly_at_the_timeout_boundary_still_coalesces() {
        // The comparison is strictly greater-than: elapsed == timeout is
        // "still in flight" in both runtimes (the conformance scripts
        // step logical time in exact multiples, so the boundary case is
        // reachable, not theoretical).
        let timeout = NodeConfig::cup_default().pfu_timeout;
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        let at_boundary = node.handle_query(
            SimTime::ZERO + timeout,
            KeyId(1),
            Requester::Client(ClientId(2)),
            Some(NodeId(9)),
        );
        assert!(at_boundary.is_empty(), "elapsed == timeout coalesces");
        assert_eq!(node.stats.pfu_retries, 0);
        let past_boundary = node.handle_query(
            SimTime::ZERO + timeout + SimDuration::from_micros(1),
            KeyId(1),
            Requester::Client(ClientId(3)),
            Some(NodeId(9)),
        );
        assert_eq!(past_boundary.len(), 1, "one microsecond past retries");
        assert_eq!(node.stats.pfu_retries, 1);
    }

    #[test]
    fn neighbor_departure_remaps_interest() {
        let mut node = cup_node(1);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(4)),
            Some(NodeId(9)),
        );
        node.on_neighbor_departed(NodeId(4), Some(NodeId(6)));
        let st = node.key_state(KeyId(1)).unwrap();
        assert!(!st.interest.contains(NodeId(4)));
        assert!(st.interest.contains(NodeId(6)));
    }

    #[test]
    fn directory_handover_round_trip() {
        let mut m = cup_node(0);
        for k in 0..4 {
            m.handle_replica_event(
                SimTime::ZERO,
                ReplicaEvent::Birth {
                    key: KeyId(k),
                    replica: ReplicaId(0),
                    lifetime: LIFE,
                },
            );
        }
        let moved = m.export_directory(|k| k.0 % 2 == 0);
        assert_eq!(moved.len(), 2);
        assert_eq!(m.directory().len(), 2);
        let mut n = cup_node(9);
        n.import_directory(moved);
        assert_eq!(n.directory().len(), 2);
    }

    #[test]
    fn refresh_subset_suppression_propagates_every_kth() {
        let mut config = NodeConfig::cup_default();
        config.refresh_keep_one_in = 3;
        let mut node = CupNode::new(NodeId(0), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        node.handle_replica_event(
            SimTime::ZERO,
            ReplicaEvent::Birth {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        let mut propagated = 0;
        for round in 1..=9u64 {
            let actions = node.handle_replica_event(
                SimTime::from_secs(round * 300),
                ReplicaEvent::Refresh {
                    key: KeyId(1),
                    replica: ReplicaId(0),
                    lifetime: LIFE,
                },
            );
            propagated += actions.len();
        }
        assert_eq!(propagated, 3, "every third refresh propagates");
    }

    #[test]
    fn refresh_batching_aggregates_replicas_into_one_update() {
        let mut config = NodeConfig::cup_default();
        config.refresh_batch_window = Some(SimDuration::from_secs(10));
        let mut node = CupNode::new(NodeId(0), config);
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Neighbor(NodeId(5)),
            None,
        );
        for r in 0..3 {
            node.handle_replica_event(
                SimTime::ZERO,
                ReplicaEvent::Birth {
                    key: KeyId(1),
                    replica: ReplicaId(r),
                    lifetime: LIFE,
                },
            );
        }
        // Three refreshes within the window: the first two are held.
        let a1 = node.handle_replica_event(
            SimTime::from_secs(300),
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
        );
        let a2 = node.handle_replica_event(
            SimTime::from_secs(303),
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(1),
                lifetime: LIFE,
            },
        );
        assert!(a1.is_empty() && a2.is_empty(), "batch still filling");
        // A refresh after the window flushes the whole batch as one
        // update carrying all three entries.
        let a3 = node.handle_replica_event(
            SimTime::from_secs(312),
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(2),
                lifetime: LIFE,
            },
        );
        assert_eq!(a3.len(), 1);
        match &a3[0] {
            Action::Send {
                msg: Message::Update(u),
                ..
            } => {
                assert_eq!(u.kind, UpdateKind::Refresh);
                assert_eq!(u.entries.len(), 3, "one update carries the batch");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn per_key_policy_classes_decide_independently() {
        use crate::policy::PropagationPolicy;
        // Key class 0 pushes forever (Always); class 1 cuts immediately
        // (Never). One node, two keys, opposite decisions.
        let config = NodeConfig::cup_with_policies(PropagationPolicy::per_class(&[
            CutoffPolicy::Always,
            CutoffPolicy::Never,
        ]));
        let mut node = CupNode::new(NodeId(1), config);
        for key in [0u32, 1] {
            node.handle_query(
                SimTime::ZERO,
                KeyId(key),
                Requester::Client(ClientId(u64::from(key))),
                Some(NodeId(9)),
            );
            node.handle_update(
                SimTime::from_secs(1),
                NodeId(9),
                first_time(key, vec![entry(key, 0, 0)], 2),
            );
        }
        let keep = node.handle_update(SimTime::from_secs(300), NodeId(9), refresh(0, 0, 300, 2));
        assert!(keep.is_empty(), "class 0 (Always) keeps receiving");
        let cut = node.handle_update(SimTime::from_secs(300), NodeId(9), refresh(1, 0, 300, 2));
        assert_eq!(
            cut,
            vec![Action::send(NodeId(9), Message::ClearBit { key: KeyId(1) })],
            "class 1 (Never) cuts off"
        );
        assert_eq!(node.stats.cutoffs, 1);
    }

    #[test]
    fn adaptive_policy_state_lives_per_key() {
        let mut node = CupNode::new(
            NodeId(1),
            NodeConfig::cup_with_policy(CutoffPolicy::adaptive()),
        );
        node.handle_query(
            SimTime::ZERO,
            KeyId(1),
            Requester::Client(ClientId(1)),
            Some(NodeId(9)),
        );
        node.handle_update(
            SimTime::from_secs(1),
            NodeId(9),
            first_time(1, vec![entry(1, 0, 0)], 2),
        );
        // A query in every interval (posted while the cache is still
        // fresh, so no Pending-First-Update round-trips): each refresh is
        // a justified decision interval recorded against this key's
        // state.
        for round in 1..6 {
            node.handle_query(
                SimTime::from_secs(round * 300 - 10),
                KeyId(1),
                Requester::Client(ClientId(round)),
                Some(NodeId(9)),
            );
            node.handle_update(
                SimTime::from_secs(round * 300),
                NodeId(9),
                refresh(1, 0, round * 300, 2),
            );
        }
        let st = node.key_state(KeyId(1)).unwrap();
        assert_eq!(st.policy_state.intervals(), 5);
        assert_eq!(st.policy_state.justified_ratio(), 1.0);
        assert!(
            st.policy_state.tolerance() > 3,
            "sustained queries must loosen the adaptive tolerance"
        );
        assert_eq!(node.stats.cutoffs, 0);
    }

    #[test]
    fn naive_reset_cuts_off_faster_with_many_replicas() {
        // The §3.6 pathology: under naive resets, updates from many
        // replicas shrink the decision window so the cut-off fires even
        // though queries keep arriving at a steady rate.
        let mut naive_cfg = NodeConfig::cup_default();
        naive_cfg.reset_mode = ResetMode::Naive;
        let mut naive = CupNode::new(NodeId(1), naive_cfg);
        let mut fixed = CupNode::new(NodeId(2), NodeConfig::cup_default());

        for node in [&mut naive, &mut fixed] {
            node.handle_query(
                SimTime::ZERO,
                KeyId(1),
                Requester::Client(ClientId(1)),
                Some(NodeId(9)),
            );
            node.handle_update(
                SimTime::from_secs(1),
                NodeId(9),
                first_time(1, vec![entry(1, 0, 0)], 2),
            );
        }
        // Updates from three different replicas arrive back-to-back with
        // no interleaved queries.
        for (i, replica) in [1u32, 2, 3].into_iter().enumerate() {
            let t = 10 + i as u64;
            naive.handle_update(SimTime::from_secs(t), NodeId(9), refresh(1, replica, t, 2));
            fixed.handle_update(SimTime::from_secs(t), NodeId(9), refresh(1, replica, t, 2));
        }
        assert!(naive.stats.cutoffs >= 1, "naive reset cut off");
        assert_eq!(fixed.stats.cutoffs, 0, "replica-independent survived");
    }
}
