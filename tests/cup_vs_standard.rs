//! The paper's headline comparisons: CUP versus standard caching.

use cup::prelude::*;

fn scenario(nodes: usize, keys: u32, rate: f64) -> Scenario {
    Scenario {
        nodes,
        keys,
        query_rate: rate,
        query_start: SimTime::from_secs(300),
        query_end: SimTime::from_secs(1_800),
        sim_end: SimTime::from_secs(3_000),
        seed: 77,
        ..Scenario::default()
    }
}

#[test]
fn cup_wins_at_moderate_and_high_rates() {
    for rate in [10.0, 50.0] {
        let s = scenario(256, 4, rate);
        let std = run_experiment(&ExperimentConfig::standard_caching(s.clone()));
        let cup = run_experiment(&ExperimentConfig::cup(s));
        assert!(
            cup.total_cost() < std.total_cost(),
            "rate {rate}: CUP {} vs standard {}",
            cup.total_cost(),
            std.total_cost()
        );
    }
}

#[test]
fn the_gap_widens_with_query_rate() {
    let ratio = |rate: f64| {
        let s = scenario(256, 4, rate);
        let std = run_experiment(&ExperimentConfig::standard_caching(s.clone()));
        let cup = run_experiment(&ExperimentConfig::cup(s));
        cup.total_cost() as f64 / std.total_cost() as f64
    };
    let low = ratio(2.0);
    let high = ratio(50.0);
    assert!(
        high < low,
        "normalized total cost must improve with rate: {low:.2} -> {high:.2}"
    );
}

#[test]
fn miss_cost_reduction_matches_paper_range() {
    // The paper reports CUP/standard miss-cost ratios of 0.09–0.47 across
    // its configurations; check we land in a comparable band.
    let s = scenario(512, 4, 20.0);
    let std = run_experiment(&ExperimentConfig::standard_caching(s.clone()));
    let cup = run_experiment(&ExperimentConfig::cup(s));
    let ratio = cup.miss_cost() as f64 / std.miss_cost() as f64;
    assert!(
        (0.05..0.6).contains(&ratio),
        "miss-cost ratio {ratio:.2} outside the paper-like band"
    );
}

#[test]
fn second_chance_beats_badly_tuned_linear() {
    // Table 1: at low rates a badly chosen α makes the linear policy
    // worse than second-chance.
    let s = scenario(256, 4, 5.0);
    let second = run_experiment(&ExperimentConfig::cup(s.clone()));
    let mut linear = ExperimentConfig::cup(s);
    linear.node_config = NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha: 0.25 });
    let linear = run_experiment(&linear);
    assert!(
        second.total_cost() <= linear.total_cost(),
        "second-chance {} must not lose to linear α=0.25 {}",
        second.total_cost(),
        linear.total_cost()
    );
}

#[test]
fn push_level_zero_matches_standard_caching_shape() {
    let s = scenario(128, 4, 10.0);
    let mut level0 = ExperimentConfig::cup(s.clone());
    level0.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 0 });
    let level0 = run_experiment(&level0);
    assert_eq!(level0.overhead(), 0, "level 0 pushes nothing");
    let std = run_experiment(&ExperimentConfig::standard_caching(s));
    // Level-0 CUP still coalesces; it must not cost more than the
    // baseline.
    assert!(level0.total_cost() <= std.total_cost());
}

#[test]
fn deeper_push_levels_cut_misses() {
    let s = scenario(256, 4, 10.0);
    let run_level = |level: u32| {
        let mut c = ExperimentConfig::cup(s.clone());
        c.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level });
        run_experiment(&c)
    };
    let shallow = run_level(0);
    let mid = run_level(4);
    let deep = run_level(16);
    assert!(mid.miss_cost() < shallow.miss_cost());
    assert!(deep.miss_cost() <= mid.miss_cost());
    assert!(deep.overhead() >= mid.overhead());
}

#[test]
fn scaling_the_network_grows_cup_advantage() {
    // Table 2's headline: "CUP reduces latency respectively by 5.5, 7.5,
    // and 11.8 hops per miss for the 1024, 2048, and 4096 node networks"
    // — the absolute hops-per-miss saving grows with network size.
    let saved = |nodes: usize| {
        let s = scenario(nodes, 4, 2.0);
        let std = run_experiment(&ExperimentConfig::standard_caching(s.clone()));
        let cup = run_experiment(&ExperimentConfig::cup(s));
        std.miss_latency() - cup.miss_latency()
    };
    let small = saved(128);
    let large = saved(512);
    assert!(
        large > small && large > 1.0,
        "latency saving should grow with size: {small:.2} -> {large:.2}"
    );
}
