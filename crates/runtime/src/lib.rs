//! A live, sharded CUP deployment.
//!
//! The protocol core is a pure state machine; this crate demonstrates
//! that it runs unchanged outside the simulator — and at scale. The node
//! population is cut into contiguous shards, one per worker thread
//! (default: the machine's available parallelism), so a 10k-node network
//! costs a handful of OS threads instead of 10k. Each worker owns its
//! shard's [`cup_core::CupNode`]s and a mailbox: intra-shard messages
//! are handled inline through a local FIFO, cross-shard messages go
//! through the target shard's mailbox, and the overlay substrate (CAN or
//! Chord) is a constructor parameter.
//!
//! **Two clock modes** ([`cup_core::clock::Clock`]): the default
//! constructors map the wall clock onto [`cup_des::SimTime`]
//! microseconds (real time for real deployments and throughput
//! benchmarks), while [`LiveNetwork::start_virtual`] runs on a
//! **virtual clock** — deterministic logical time that moves only when
//! the driver steps it via [`LiveNetwork::advance`] /
//! [`LiveNetwork::run_until`], always at a quiesce barrier, so all
//! workers observe byte-identical timestamps regardless of scheduling.
//! On the virtual clock every time-compared protocol behavior — the
//! `pfu_timeout` retry timer, freshness horizons, `@t=`-windowed fault
//! scripts replayed with [`LiveNetwork::run_plan_until`] — matches the
//! DES exactly; the conformance harness asserts it byte for byte.
//!
//! [`LiveNetwork::quiesce`] is the runtime's barrier: it blocks until
//! every mailbox is drained and no worker is mid-dispatch, the live
//! equivalent of running a simulation until its event queue empties.
//! Tests and benchmarks synchronize on it instead of sleeping.
//!
//! The runtime keeps the overlay static (no churn) — it exists to
//! exercise the protocol under real concurrency, not to be a full
//! deployment — and exposes the same knobs as the simulation: node
//! configuration (mode, cut-off policy), replica events, and client
//! queries.
//!
//! The `cup-faults` plane plugs in through the same decide-before-
//! enqueue rule the DES uses: [`LiveNetwork::enable_faults`] arms a
//! shared [`cup_faults::FaultState`], every worker consults it before a
//! message enters any mailbox (so `quiesce` stays exact under loss), and
//! [`LiveNetwork::inject_fault`] scripts loss phases, partitions, and
//! crash/restart cycles — a crash wipes the node's protocol state while
//! its counters are folded into a retained aggregate.
//!
//! # Examples
//!
//! ```
//! use cup_des::{DetRng, KeyId, ReplicaId, SimDuration};
//! use cup_core::NodeConfig;
//! use cup_overlay::OverlayKind;
//! use cup_runtime::LiveNetwork;
//!
//! let mut rng = DetRng::seed_from(7);
//! let net = LiveNetwork::start(OverlayKind::Can, 16, NodeConfig::cup_default(), &mut rng).unwrap();
//! net.replica_birth(KeyId(1), ReplicaId(0), SimDuration::from_secs(60));
//! net.quiesce();
//! let entries = net.query(net.nodes()[3], KeyId(1)).unwrap();
//! assert_eq!(entries.len(), 1);
//! net.shutdown();
//! ```

pub mod network;
mod shard;

pub use network::{LiveNetwork, PendingQuery, RuntimeError};
