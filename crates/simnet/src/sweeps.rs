//! Parameter sweeps reproducing every table and figure of the paper.
//!
//! Each function takes a *base* scenario so callers choose the scale: the
//! `repro` binary uses the paper's parameters (2¹⁰ nodes, 3 000 s of
//! querying), the Criterion benches use scaled-down versions with the same
//! shape.

use cup_core::{CutoffPolicy, NodeConfig, ResetMode};
use cup_workload::{capacity::CapacityProfile, Scenario};

use crate::experiment::{run_experiment, ExperimentConfig};

/// One point of the Figure 3/4 push-level sweep.
#[derive(Debug, Clone)]
pub struct PushLevelPoint {
    /// Network-wide query rate (q/s).
    pub rate: f64,
    /// Push level p (0 = standard caching).
    pub level: u32,
    /// Total cost in hops.
    pub total_cost: u64,
    /// Miss cost in hops.
    pub miss_cost: u64,
}

/// Figures 3 and 4: total and miss cost versus push level.
///
/// "A push level of p means that updates are propagated to all nodes that
/// have queried for the key and that are at most p hops from the
/// authority node. A push level of 0 corresponds to standard caching."
pub fn push_level_sweep(base: &Scenario, rates: &[f64], levels: &[u32]) -> Vec<PushLevelPoint> {
    let mut out = Vec::new();
    for &rate in rates {
        for &level in levels {
            let scenario = Scenario {
                query_rate: rate,
                ..base.clone()
            };
            let config = ExperimentConfig {
                node_config: NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level }),
                ..ExperimentConfig::cup(scenario)
            };
            let r = run_experiment(&config);
            out.push(PushLevelPoint {
                rate,
                level,
                total_cost: r.total_cost(),
                miss_cost: r.miss_cost(),
            });
        }
    }
    out
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Human-readable policy name in the paper's wording.
    pub policy: String,
    /// Total cost per query rate, aligned with the requested rates.
    pub total_costs: Vec<u64>,
    /// Total cost normalized by standard caching at the same rate.
    pub normalized: Vec<f64>,
}

/// Table 1: total cost for varying cut-off policies.
///
/// Runs standard caching, linear and logarithmic thresholds for several
/// α values, second-chance, and the optimal push level (the minimum over
/// `optimal_levels`).
pub fn policy_table(base: &Scenario, rates: &[f64], optimal_levels: &[u32]) -> Vec<PolicyRow> {
    let run = |node_config: NodeConfig, rate: f64| {
        let scenario = Scenario {
            query_rate: rate,
            ..base.clone()
        };
        run_experiment(&ExperimentConfig {
            node_config,
            ..ExperimentConfig::cup(scenario)
        })
        .total_cost()
    };

    let mut policies: Vec<(String, NodeConfig)> =
        vec![("Standard Caching".into(), NodeConfig::standard_caching())];
    for alpha in [0.25, 0.10, 0.01, 0.001] {
        policies.push((
            format!("Linear, a = {alpha}"),
            NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha }),
        ));
    }
    for alpha in [0.5, 0.25, 0.10, 0.01] {
        policies.push((
            format!("Logarithmic, a = {alpha}"),
            NodeConfig::cup_with_policy(CutoffPolicy::Logarithmic { alpha }),
        ));
    }
    policies.push((
        "Second-chance".into(),
        NodeConfig::cup_with_policy(CutoffPolicy::second_chance()),
    ));

    let mut rows = Vec::new();
    let mut standard_costs = Vec::new();
    for (name, node_config) in policies {
        let costs: Vec<u64> = rates.iter().map(|&r| run(node_config, r)).collect();
        if name == "Standard Caching" {
            standard_costs = costs.clone();
        }
        let normalized = normalize(&costs, &standard_costs);
        rows.push(PolicyRow {
            policy: name,
            total_costs: costs,
            normalized,
        });
    }

    // Optimal push level: best total cost over the sweep, per rate.
    let mut optimal = vec![u64::MAX; rates.len()];
    for &level in optimal_levels {
        let config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level });
        for (i, &rate) in rates.iter().enumerate() {
            optimal[i] = optimal[i].min(run(config, rate));
        }
    }
    let normalized = normalize(&optimal, &standard_costs);
    rows.push(PolicyRow {
        policy: "Optimal push level".into(),
        total_costs: optimal,
        normalized,
    });
    rows
}

fn normalize(costs: &[u64], baseline: &[u64]) -> Vec<f64> {
    costs
        .iter()
        .zip(baseline)
        .map(|(&c, &b)| if b == 0 { 0.0 } else { c as f64 / b as f64 })
        .collect()
}

/// One column of Table 2.
#[derive(Debug, Clone)]
pub struct SizeColumn {
    /// Number of nodes.
    pub nodes: usize,
    /// CUP miss cost / standard-caching miss cost.
    pub miss_cost_ratio: f64,
    /// CUP average hops per miss.
    pub cup_miss_latency: f64,
    /// Standard-caching average hops per miss.
    pub std_miss_latency: f64,
    /// Saved miss hops per CUP overhead hop.
    pub saved_per_overhead: f64,
}

/// Table 2: CUP versus standard caching across network sizes (second-
/// chance policy).
pub fn size_sweep(base: &Scenario, sizes: &[usize]) -> Vec<SizeColumn> {
    sizes
        .iter()
        .map(|&nodes| {
            let scenario = Scenario {
                nodes,
                ..base.clone()
            };
            let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
            let cup = run_experiment(&ExperimentConfig::cup(scenario));
            SizeColumn {
                nodes,
                miss_cost_ratio: ratio(cup.miss_cost(), std.miss_cost()),
                cup_miss_latency: cup.miss_latency(),
                std_miss_latency: std.miss_latency(),
                saved_per_overhead: cup.saved_miss_overhead_ratio(std.miss_cost()),
            }
        })
        .collect()
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct ReplicaRow {
    /// Replicas per key.
    pub replicas: u32,
    /// Naive cut-off: miss cost.
    pub naive_miss_cost: u64,
    /// Naive cut-off: absolute misses.
    pub naive_misses: u64,
    /// Replica-independent cut-off: miss cost.
    pub fixed_miss_cost: u64,
    /// Replica-independent cut-off: absolute misses.
    pub fixed_misses: u64,
    /// Replica-independent cut-off: total cost.
    pub fixed_total_cost: u64,
}

/// Table 3: the effect of multiple replicas per key under the naive and
/// the replica-independent cut-off (second-chance policy, λ = 1 q/s in
/// the paper).
pub fn replica_sweep(base: &Scenario, replica_counts: &[u32]) -> Vec<ReplicaRow> {
    replica_counts
        .iter()
        .map(|&replicas| {
            let scenario = Scenario {
                replicas_per_key: replicas,
                ..base.clone()
            };
            let mut naive_config = ExperimentConfig::cup(scenario.clone());
            naive_config.node_config.reset_mode = ResetMode::Naive;
            let naive = run_experiment(&naive_config);
            let fixed = run_experiment(&ExperimentConfig::cup(scenario));
            ReplicaRow {
                replicas,
                naive_miss_cost: naive.miss_cost(),
                naive_misses: naive.misses(),
                fixed_miss_cost: fixed.miss_cost(),
                fixed_misses: fixed.misses(),
                fixed_total_cost: fixed.total_cost(),
            }
        })
        .collect()
}

/// One point of the Figure 5/6 capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// Reduced capacity c.
    pub capacity: f64,
    /// Total cost with the Up-And-Down profile.
    pub up_and_down: u64,
    /// Total cost with Once-Down-Always-Down.
    pub once_down: u64,
    /// Standard caching reference at the same rate.
    pub standard: u64,
}

/// Figures 5 and 6: total cost versus reduced capacity for the two §3.7
/// degradation profiles, plus the standard-caching horizontal reference.
pub fn capacity_sweep(base: &Scenario, capacities: &[f64]) -> Vec<CapacityPoint> {
    let standard = run_experiment(&ExperimentConfig::standard_caching(base.clone())).total_cost();
    capacities
        .iter()
        .map(|&c| {
            let mut up = ExperimentConfig::cup(base.clone());
            up.capacity_profile = CapacityProfile::UpAndDown {
                fraction: 0.2,
                reduced: c,
            };
            let mut once = ExperimentConfig::cup(base.clone());
            once.capacity_profile = CapacityProfile::OnceDownAlwaysDown {
                fraction: 0.2,
                reduced: c,
            };
            CapacityPoint {
                capacity: c,
                up_and_down: run_experiment(&up).total_cost(),
                once_down: run_experiment(&once).total_cost(),
                standard,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimTime;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 32,
            keys: 3,
            query_rate: 5.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(1_300),
            sim_end: SimTime::from_secs(2_000),
            seed: 7,
            ..Scenario::default()
        }
    }

    #[test]
    fn push_level_sweep_monotone_miss_cost() {
        let points = push_level_sweep(&tiny(), &[5.0], &[0, 2, 8]);
        assert_eq!(points.len(), 3);
        // Level 0 is standard caching: highest miss cost; deeper push
        // levels cannot increase it.
        assert!(points[0].miss_cost >= points[1].miss_cost);
        assert!(points[1].miss_cost >= points[2].miss_cost);
        // Level 0 has no overhead.
        assert_eq!(points[0].total_cost, points[0].miss_cost);
    }

    #[test]
    fn policy_table_contains_all_rows() {
        let rows = policy_table(&tiny(), &[5.0], &[2, 6]);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].policy, "Standard Caching");
        assert_eq!(rows[0].normalized[0], 1.0);
        let second_chance = rows.iter().find(|r| r.policy == "Second-chance").unwrap();
        assert!(
            second_chance.normalized[0] < 1.0,
            "second-chance must beat standard caching"
        );
    }

    #[test]
    fn size_sweep_reports_requested_sizes() {
        let cols = size_sweep(&tiny(), &[16, 32]);
        assert_eq!(cols.len(), 2);
        for c in cols {
            assert!(c.miss_cost_ratio < 1.0, "CUP should reduce miss cost");
            assert!(c.cup_miss_latency > 0.0 && c.std_miss_latency > 0.0);
        }
    }

    #[test]
    fn replica_sweep_fix_beats_naive() {
        let rows = replica_sweep(&tiny(), &[1, 4]);
        assert_eq!(rows.len(), 2);
        let many = &rows[1];
        assert!(
            many.fixed_misses <= many.naive_misses,
            "replica-independent cut-off must not increase misses (naive {} vs fixed {})",
            many.naive_misses,
            many.fixed_misses
        );
    }

    #[test]
    fn capacity_sweep_degrades_gracefully() {
        let points = capacity_sweep(&tiny(), &[0.0, 1.0]);
        assert_eq!(points.len(), 2);
        // Full capacity is at least as good as zero capacity.
        assert!(points[1].up_and_down <= points[0].up_and_down);
        // Even at zero capacity CUP should not exceed standard caching by
        // much (fallback behaviour); allow slack for clear-bit overhead.
        assert!(points[0].up_and_down as f64 <= points[0].standard as f64 * 1.3);
    }
}
