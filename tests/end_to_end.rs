//! End-to-end integration: queries, responses, refreshes, and coalescing
//! across the full stack (overlay + protocol + DES harness).

use cup::prelude::*;
use cup_testkit::{assert_deterministic, scenario};

fn base_scenario() -> Scenario {
    scenario(128, 6, 5.0, 1_000, 1234)
}

#[test]
fn every_client_query_gets_an_answer() {
    let result = run_experiment(&ExperimentConfig::cup(base_scenario()));
    assert!(result.nodes.client_queries > 4_000);
    assert_eq!(
        result.net.client_responses, result.nodes.client_queries,
        "every posted query must eventually be answered"
    );
}

#[test]
fn standard_caching_also_answers_everything() {
    let result = run_experiment(&ExperimentConfig::standard_caching(base_scenario()));
    assert_eq!(result.net.client_responses, result.nodes.client_queries);
    assert_eq!(result.overhead(), 0);
}

#[test]
fn hits_plus_misses_equals_queries() {
    let result = run_experiment(&ExperimentConfig::cup(base_scenario()));
    assert_eq!(
        result.nodes.client_hits + result.misses(),
        result.nodes.client_queries
    );
}

#[test]
fn coalescing_absorbs_bursts() {
    let mut scenario = base_scenario();
    scenario.burst_size = 40;
    scenario.burst_spread = SimDuration::from_secs(1);
    scenario.query_rate = 40.0;
    let cup = run_experiment(&ExperimentConfig::cup(scenario.clone()));
    assert!(
        cup.nodes.coalesced_queries > 100,
        "bursts must coalesce on the query channels, got {}",
        cup.nodes.coalesced_queries
    );
    // The baseline cannot coalesce at all.
    let std = run_experiment(&ExperimentConfig::standard_caching(scenario));
    assert_eq!(std.nodes.coalesced_queries, 0);
    assert!(cup.net.query_hops < std.net.query_hops);
}

#[test]
fn refreshes_flow_only_under_cup() {
    let cup = run_experiment(&ExperimentConfig::cup(base_scenario()));
    let std = run_experiment(&ExperimentConfig::standard_caching(base_scenario()));
    assert!(cup.net.refresh_hops > 0, "CUP must propagate refreshes");
    assert_eq!(std.net.refresh_hops, 0);
    assert_eq!(std.net.clear_bit_hops, 0);
}

#[test]
fn justified_fraction_is_high_at_high_rates() {
    let mut scenario = base_scenario();
    scenario.query_rate = 50.0;
    let mut config = ExperimentConfig::cup(scenario);
    config.track_justification = true;
    let result = run_experiment(&config);
    assert!(result.tracked_updates > 0);
    assert!(
        result.justified_fraction() > 0.5,
        "at 50 q/s over 6 keys most pushes are justified, got {:.2}",
        result.justified_fraction()
    );
}

#[test]
fn all_out_push_minimizes_miss_cost() {
    // §3.1: "if network load is not the prime concern, an all-out push
    // strategy achieves minimum latency."
    let mut all_out = ExperimentConfig::cup(base_scenario());
    all_out.node_config = NodeConfig::cup_with_policy(CutoffPolicy::Always);
    let aggressive = run_experiment(&all_out);
    let second_chance = run_experiment(&ExperimentConfig::cup(base_scenario()));
    assert!(
        aggressive.miss_cost() <= second_chance.miss_cost(),
        "all-out push {} must not miss more than second-chance {}",
        aggressive.miss_cost(),
        second_chance.miss_cost()
    );
    // The all-out strategy never cuts off, so it sends no clear-bits at
    // all; second-chance pays clear-bit traffic for its control.
    assert_eq!(aggressive.net.clear_bit_hops, 0);
    assert!(second_chance.net.clear_bit_hops > 0);
    assert_eq!(aggressive.nodes.cutoffs, 0);
}

#[test]
fn results_are_reproducible_across_runs() {
    // Byte-identical across the full metrics struct, not just headline
    // numbers.
    assert_deterministic(&ExperimentConfig::cup(base_scenario()));
}

#[test]
fn different_seeds_differ() {
    let mut scenario = base_scenario();
    let a = run_experiment(&ExperimentConfig::cup(scenario.clone()));
    scenario.seed = 99;
    let b = run_experiment(&ExperimentConfig::cup(scenario));
    assert_ne!(
        (a.total_cost(), a.net.query_hops),
        (b.total_cost(), b.net.query_hops)
    );
}
