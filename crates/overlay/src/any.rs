//! A concrete overlay chooser.
//!
//! Experiment code wants to select the substrate at runtime (the paper
//! evaluates on CAN; Chord demonstrates overlay independence). CAN and
//! Chord have different churn signatures (CAN joins need randomness for
//! the join point), so a plain trait object cannot express joins;
//! [`AnyOverlay`] unifies them.

use cup_des::{DetRng, KeyId, NodeId};

use crate::can::CanOverlay;
use crate::chord::ChordOverlay;
use crate::churn::ChurnReport;
use crate::traits::{Overlay, OverlayError};

/// Which overlay to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayKind {
    /// Two-dimensional CAN (the paper's evaluation substrate).
    Can,
    /// Chord identifier ring.
    Chord,
}

cup_core::string_surface!(OverlayKind { Can => "can", Chord => "chord" });

/// Either overlay, with a uniform churn interface.
#[derive(Debug, Clone)]
pub enum AnyOverlay {
    /// A 2-D CAN.
    Can(CanOverlay),
    /// A Chord ring.
    Chord(ChordOverlay),
}

impl AnyOverlay {
    /// Builds an overlay of `n` nodes of the requested kind.
    ///
    /// # Errors
    ///
    /// Propagates the underlying builder's error (e.g. `n == 0`).
    pub fn build(kind: OverlayKind, n: usize, rng: &mut DetRng) -> Result<Self, OverlayError> {
        match kind {
            OverlayKind::Can => Ok(AnyOverlay::Can(CanOverlay::build(n, rng)?)),
            OverlayKind::Chord => Ok(AnyOverlay::Chord(ChordOverlay::build(n)?)),
        }
    }

    /// Adds one node.
    ///
    /// # Errors
    ///
    /// Propagates overlay-specific join failures.
    pub fn join(&mut self, rng: &mut DetRng) -> Result<ChurnReport, OverlayError> {
        match self {
            AnyOverlay::Can(c) => c.join(rng),
            AnyOverlay::Chord(c) => Ok(c.join()),
        }
    }

    /// Removes one node.
    ///
    /// # Errors
    ///
    /// Propagates overlay-specific leave failures.
    pub fn leave(&mut self, node: NodeId) -> Result<ChurnReport, OverlayError> {
        match self {
            AnyOverlay::Can(c) => c.leave(node),
            AnyOverlay::Chord(c) => c.leave(node),
        }
    }
}

impl Overlay for AnyOverlay {
    fn len(&self) -> usize {
        match self {
            AnyOverlay::Can(c) => c.len(),
            AnyOverlay::Chord(c) => c.len(),
        }
    }

    fn is_alive(&self, node: NodeId) -> bool {
        match self {
            AnyOverlay::Can(c) => c.is_alive(node),
            AnyOverlay::Chord(c) => c.is_alive(node),
        }
    }

    fn nodes(&self) -> Vec<NodeId> {
        match self {
            AnyOverlay::Can(c) => c.nodes(),
            AnyOverlay::Chord(c) => c.nodes(),
        }
    }

    fn authority(&self, key: KeyId) -> NodeId {
        match self {
            AnyOverlay::Can(c) => c.authority(key),
            AnyOverlay::Chord(c) => c.authority(key),
        }
    }

    fn next_hop(&self, from: NodeId, key: KeyId) -> Result<Option<NodeId>, OverlayError> {
        match self {
            AnyOverlay::Can(c) => c.next_hop(from, key),
            AnyOverlay::Chord(c) => c.next_hop(from, key),
        }
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        match self {
            AnyOverlay::Can(c) => c.neighbors(node),
            AnyOverlay::Chord(c) => c.neighbors(node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_build_and_route() {
        let mut rng = DetRng::seed_from(1);
        for kind in [OverlayKind::Can, OverlayKind::Chord] {
            let overlay = AnyOverlay::build(kind, 32, &mut rng).unwrap();
            assert_eq!(overlay.len(), 32);
            for k in 0..10 {
                let key = KeyId(k);
                let path = overlay.route(NodeId(0), key).unwrap();
                assert_eq!(*path.last().unwrap(), overlay.authority(key));
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in OverlayKind::ALL {
            assert_eq!(OverlayKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(OverlayKind::parse("pastry"), None);
    }

    #[test]
    fn churn_through_the_unified_interface() {
        let mut rng = DetRng::seed_from(2);
        for kind in [OverlayKind::Can, OverlayKind::Chord] {
            let mut overlay = AnyOverlay::build(kind, 16, &mut rng).unwrap();
            let report = overlay.join(&mut rng).unwrap();
            assert!(report.joined.is_some());
            assert_eq!(overlay.len(), 17);
            let victim = overlay.nodes()[3];
            overlay.leave(victim).unwrap();
            assert_eq!(overlay.len(), 16);
            assert!(!overlay.is_alive(victim));
        }
    }
}
