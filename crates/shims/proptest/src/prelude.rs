//! One-line import of everything the `proptest!` suites need.

pub use crate::strategy::{any, Arbitrary, Strategy};
pub use crate::test_runner::{TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
