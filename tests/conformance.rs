//! Sim-vs-live conformance: the same protocol, two runtimes, one truth.
//!
//! `cup_testkit::conformance` scripts one scenario — replica births, a
//! serialized query workload, a deletion, more queries — through the
//! deterministic DES *and* the sharded worker-pool live runtime over the
//! same topology, for **both** overlay substrates (CAN and Chord) and at
//! two scales (24 nodes and 2 048 nodes). This suite asserts the
//! protocol-level outcomes agree:
//!
//! * **cache-hit accounting** — aggregate client queries, hits, and
//!   first-time misses are identical;
//! * **update delivery** — updates received/forwarded agree, and the
//!   *set of nodes* caching each key is identical;
//! * **justified-update accounting** — the §3.1 justified/tracked
//!   maintenance-update counts (and total hop counts) agree exactly:
//!   both runtimes report the same investment return from the shared
//!   `cup_core::justify` tracker;
//! * **no stale entries at quiesce** — after the deletion propagates,
//!   no node in either runtime still caches or indexes the deleted
//!   replica, and every surviving cached entry is fresh.
//!
//! The live side synchronizes exclusively on `LiveNetwork::quiesce()` —
//! there is not a single `thread::sleep` in the comparison, so the suite
//! cannot race on slow CI.

use cup::prelude::*;
use cup_testkit::conformance::{run_live, run_sim, ConformanceSpec, DELETED_KEY};

/// The worker-count × shard-map grid the small scenarios sweep: the DES
/// is worker- and placement-blind, so every cell must reproduce its
/// outcome byte-for-byte.
const FULL_MATRIX: [(usize, ShardMapMode); 4] = [
    (1, ShardMapMode::Contiguous),
    (4, ShardMapMode::Contiguous),
    (1, ShardMapMode::OverlayAware),
    (4, ShardMapMode::OverlayAware),
];

fn assert_sim_live_agree(spec: ConformanceSpec) {
    assert_sim_live_agree_matrix(spec, &FULL_MATRIX);
}

fn assert_sim_live_agree_matrix(spec: ConformanceSpec, matrix: &[(usize, ShardMapMode)]) {
    let (sim, sim_responses) = run_sim(&spec);
    let (live, live_responses) = run_live(&spec);
    let label = format!("{} x {} nodes", spec.kind, spec.nodes);

    // Every scripted query was answered in both runtimes.
    let total = spec.total_queries();
    assert_eq!(sim_responses, total, "{label}: sim answered every query");
    assert_eq!(live_responses, total, "{label}: live answered every query");

    // Cache-hit accounting agrees exactly.
    assert_eq!(
        sim.stats.client_queries, live.stats.client_queries,
        "{label}: client query counts diverged"
    );
    assert_eq!(
        sim.stats.client_hits, live.stats.client_hits,
        "{label}: cache-hit counts diverged"
    );
    assert_eq!(
        sim.stats.first_time_misses, live.stats.first_time_misses,
        "{label}: first-time miss counts diverged"
    );
    assert_eq!(
        sim.stats.freshness_misses, 0,
        "{label}: nothing expires in-script"
    );
    assert_eq!(live.stats.freshness_misses, 0, "{label}");

    // Update delivery agrees: same message counts, and the same set of
    // nodes ended up caching each key.
    assert_eq!(
        sim.stats.updates_received, live.stats.updates_received,
        "{label}: update delivery counts diverged"
    );
    assert_eq!(
        sim.stats.updates_forwarded, live.stats.updates_forwarded,
        "{label}: update forward counts diverged"
    );
    assert_eq!(
        sim.stats.neighbor_queries, live.stats.neighbor_queries,
        "{label}: neighbor query counts diverged"
    );
    assert_eq!(
        sim.cached_by, live.cached_by,
        "{label}: the sets of caching nodes diverged"
    );

    // The decision plane agrees: cut-offs and clear-bit traffic match.
    assert_eq!(
        sim.stats.cutoffs, live.stats.cutoffs,
        "{label}: cut-off counts diverged"
    );
    assert_eq!(
        sim.stats.clear_bits_sent, live.stats.clear_bits_sent,
        "{label}: clear-bit counts diverged"
    );

    // The economics agree byte-for-byte: both runtimes report identical
    // justified/tracked maintenance-update counts and total hop counts.
    assert!(
        sim.tracked > 0,
        "{label}: the refresh rounds must generate tracked maintenance updates"
    );
    assert_eq!(
        (sim.justified, sim.tracked),
        (live.justified, live.tracked),
        "{label}: justified-update accounting diverged"
    );
    assert_eq!(sim.hops, live.hops, "{label}: total hop counts diverged");

    // The failure plane agrees: neither runtime hides drops or routing
    // failures from the comparison (both are zero without a fault
    // script; under one, the full breakdown must match).
    assert_eq!(
        sim.routing_failures, live.routing_failures,
        "{label}: routing-failure counts diverged"
    );
    assert_eq!(
        sim.dropped_messages, live.dropped_messages,
        "{label}: dropped-message counts diverged"
    );
    assert_eq!(sim.faults, live.faults, "{label}: fault counters diverged");

    // The observability plane agrees byte-for-byte: the latency and
    // staleness histograms are multiset summaries of per-event samples,
    // so identical protocol behavior must produce identical bucket
    // state. Under the conformance clock (zero per-hop latency) the
    // latency samples are all zero — degenerate, but the *counts* still
    // pin one sample per answered query / retried PFU / audit reply.
    assert_eq!(
        sim.query_latency, live.query_latency,
        "{label}: query-latency histograms diverged"
    );
    assert_eq!(
        sim.query_latency.count(),
        sim_responses,
        "{label}: one latency sample per answered query"
    );
    assert_eq!(
        sim.stale_age_hist, live.stale_age_hist,
        "{label}: staleness-age histograms diverged"
    );
    assert_eq!(
        sim.stats.pfu_retry_age, live.stats.pfu_retry_age,
        "{label}: PFU-retry-age histograms diverged"
    );
    assert_eq!(
        sim.stats.audit_rtt, live.stats.audit_rtt,
        "{label}: audit round-trip histograms diverged"
    );

    // No stale state at quiesce: the deleted key is gone everywhere.
    assert!(
        sim.cached_by[DELETED_KEY as usize].is_empty(),
        "{label}: sim nodes still cache the deleted key: {:?}",
        sim.cached_by[DELETED_KEY as usize]
    );
    assert!(
        live.cached_by[DELETED_KEY as usize].is_empty(),
        "{label}: live nodes still cache the deleted key: {:?}",
        live.cached_by[DELETED_KEY as usize]
    );
    // The surviving keys are cached somewhere (the workload touched
    // them), in the same places.
    for k in (0..spec.keys).filter(|&k| k != DELETED_KEY) {
        assert!(
            !sim.cached_by[k as usize].is_empty(),
            "{label}: k{k} must be cached somewhere"
        );
    }

    // Sharding is invisible: every worker count × placement mode in the
    // matrix reproduces the DES outcome byte-for-byte, whole-`Outcome`
    // equality included.
    for &(workers, shard_map) in matrix {
        let cell = ConformanceSpec {
            workers,
            shard_map,
            ..spec
        };
        let (cell_live, cell_responses) = run_live(&cell);
        let cell_label = format!("{label} @ {workers} workers / {shard_map}");
        assert_eq!(
            sim_responses, cell_responses,
            "{cell_label}: answered-query counts diverged"
        );
        assert_eq!(sim, cell_live, "{cell_label}: outcomes diverged");
    }
}

#[test]
fn sim_and_live_agree_on_can() {
    assert_sim_live_agree(ConformanceSpec::small(OverlayKind::Can));
}

#[test]
fn sim_and_live_agree_on_chord() {
    assert_sim_live_agree(ConformanceSpec::small(OverlayKind::Chord));
}

/// At the 2k tier the matrix is thinned to its two extreme cells (the
/// serial pool and the sharded overlay-aware one) to bound suite
/// runtime; the full grid runs on the small scenarios above.
const LARGE_MATRIX: [(usize, ShardMapMode); 2] = [
    (1, ShardMapMode::Contiguous),
    (4, ShardMapMode::OverlayAware),
];

#[test]
fn sim_and_live_agree_on_can_at_2k_nodes() {
    assert_sim_live_agree_matrix(ConformanceSpec::large(OverlayKind::Can), &LARGE_MATRIX);
}

#[test]
fn sim_and_live_agree_on_chord_at_2k_nodes() {
    assert_sim_live_agree_matrix(ConformanceSpec::large(OverlayKind::Chord), &LARGE_MATRIX);
}

/// Sim-vs-live agreement under the standard fault script: a 25%-loss
/// phase, a crash/restart cycle, and a 2-way partition, all driven by
/// the same `cup-faults` plane with the same seed. Agreement must cover
/// not just the protocol counters but the fault plane itself — identical
/// drop decisions on every link, identical crash bookkeeping — and the
/// script must actually bite (messages dropped in every category).
fn assert_sim_live_agree_under_faults(base: ConformanceSpec, label: &str) {
    let (sim, sim_responses) = run_sim(&base);
    // The DES is worker- and placement-blind; the live side must match
    // it from the serial pool, from a sharded one, and under either
    // shard-map mode.
    for &(workers, shard_map) in &FULL_MATRIX {
        let spec = ConformanceSpec {
            workers,
            shard_map,
            ..base
        };
        let label = format!("{label} @ {workers} workers / {shard_map}");
        let (live, live_responses) = run_live(&spec);

        // Byte-identical outcomes, including every fault counter.
        assert_eq!(
            sim_responses, live_responses,
            "{label}: answered-query counts"
        );
        assert_eq!(sim.faults, live.faults, "{label}: fault counters diverged");
        assert_eq!(
            sim.dropped_messages, live.dropped_messages,
            "{label}: dropped-message totals diverged"
        );
        assert_eq!(sim.stats, live.stats, "{label}: protocol counters diverged");
        assert_eq!(
            sim.cached_by, live.cached_by,
            "{label}: caching sets diverged"
        );
        assert_eq!(sim.hops, live.hops, "{label}: hop counts diverged");
        assert_eq!(
            (sim.justified, sim.tracked),
            (live.justified, live.tracked),
            "{label}: justification diverged"
        );
        assert_eq!(
            sim.routing_failures, live.routing_failures,
            "{label}: routing failures diverged"
        );
        // The recovery counters are inside `stats`, but they are the
        // point of the virtual clock — name them in the comparison.
        assert_eq!(
            sim.stats.pfu_retries, live.stats.pfu_retries,
            "{label}: PFU-retry counts diverged"
        );
        assert_eq!(
            (sim.faults.crashes, sim.faults.restarts),
            (live.faults.crashes, live.faults.restarts),
            "{label}: crash-recovery counters diverged"
        );
        // Observability under fire: the latency/staleness histograms
        // must keep agreeing byte-for-byte even when drops and crashes
        // reshuffle delivery — swallowed queries must be *forgotten* by
        // both runtimes, not recorded by one.
        assert_eq!(
            sim.query_latency, live.query_latency,
            "{label}: query-latency histograms diverged under faults"
        );
        assert_eq!(
            sim.stale_age_hist, live.stale_age_hist,
            "{label}: staleness-age histograms diverged under faults"
        );
    }
    // Each fired retry contributed a PFU-age sample.
    assert_eq!(
        sim.stats.pfu_retry_age.count(),
        sim.stats.pfu_retries,
        "{label}: one age sample per PFU retry"
    );
    // The timeout must be live, not parked: with the paper-default 30 s
    // `pfu_timeout`, losses strand Pending-First-Update flags and later
    // queries past the timeout retry upstream.
    assert!(
        sim.stats.pfu_retries > 0,
        "{label}: the 30 s PFU timeout never fired a retry"
    );
}

#[test]
fn sim_and_live_agree_under_faults_on_can() {
    let spec = ConformanceSpec::faulty(OverlayKind::Can);
    // The script must be non-trivial: loss, crash, and partition all
    // fired and all dropped something.
    let (sim, _) = run_sim(&spec);
    assert!(sim.faults.dropped_loss > 0, "loss never bit");
    assert!(sim.faults.dropped_partition > 0, "partition never bit");
    assert_eq!(sim.faults.crashes, 1);
    assert_eq!(sim.faults.restarts, 1);
    assert!(sim.dropped_messages > 0);
    assert_sim_live_agree_under_faults(spec, "can faulty");
}

#[test]
fn sim_and_live_agree_under_faults_on_chord() {
    let spec = ConformanceSpec::faulty(OverlayKind::Chord);
    let (sim, _) = run_sim(&spec);
    assert!(sim.faults.dropped_loss > 0, "loss never bit");
    assert!(sim.faults.dropped_partition > 0, "partition never bit");
    assert_eq!(sim.faults.crashes, 1);
    assert_eq!(sim.faults.restarts, 1);
    assert_sim_live_agree_under_faults(spec, "chord faulty");
}

/// Sim-vs-live agreement under the *timed-window* fault script: a loss
/// window, a latency-spike window, and a crash/restart window at
/// absolute logical times (`drop:…@t=`, `spike:…@t=`, `crash:…@t=A..B`).
/// The DES executes the windows as scheduled events; the live runtime
/// replays the identical `FaultPlan` against its virtual clock — every
/// window edge lands at the same logical instant in both.
fn assert_sim_live_agree_on_timed_windows(kind: OverlayKind) {
    let spec = ConformanceSpec::timed(kind);
    let label = format!("{kind} timed");
    let (sim, _) = run_sim(&spec);
    // Every window must bite: loss dropped messages, the crash cycle
    // completed, and the stranded-PFU recovery path actually ran.
    assert!(sim.faults.dropped_loss > 0, "{label}: loss never bit");
    assert_eq!(sim.faults.crashes, 1, "{label}");
    assert_eq!(sim.faults.restarts, 1, "{label}");
    assert!(sim.dropped_messages > 0, "{label}");
    assert_sim_live_agree_under_faults(spec, &label);
}

#[test]
fn sim_and_live_agree_on_timed_windows_on_can() {
    assert_sim_live_agree_on_timed_windows(OverlayKind::Can);
}

#[test]
fn sim_and_live_agree_on_timed_windows_on_chord() {
    assert_sim_live_agree_on_timed_windows(OverlayKind::Chord);
}

/// Sim-vs-live agreement under the Byzantine cast: a stale-serving node
/// parked on the deletion path upstream of an honest witness, an
/// update-dropper, and a refresh-liar — with the rate-limited sampled
/// cache audit switched on. Both runtimes must agree byte-for-byte on
/// the *attack* (poisoned client answers and their summed staleness age,
/// the behavior-fault counters) and on the *defense* (audit rounds
/// started, probes served, replies processed, repairs executed) — at 1
/// worker and across a 4-way shard split, where audit replies can arrive
/// in different orders.
fn assert_sim_live_agree_under_byzantine(kind: OverlayKind) {
    let spec = ConformanceSpec::byzantine(kind);
    let (sim, sim_responses) = run_sim(&spec);

    // The attack bit: the witness answered clients from poisoned state
    // (the stale server swallowed the deletion before it could arrive),
    // and the maintenance plane was corrupted.
    assert!(
        sim.poisoned_answers > 0,
        "{kind} byzantine: no poisoned answer was ever served"
    );
    assert!(
        sim.poisoned_age_micros > 0,
        "{kind} byzantine: poisoned answers must age past the deletion"
    );
    assert!(
        sim.faults.byz_updates_swallowed > 0,
        "{kind} byzantine: the stale server never swallowed the deletion"
    );
    assert!(
        sim.faults.byz_updates_dropped > 0,
        "{kind} byzantine: the update-dropper never bit a refresh forward"
    );

    // The defense bit: serving poisoned traffic triggered audit rounds,
    // honest co-replica holders dissented, and the witness repaired.
    assert!(
        sim.stats.audits_started > 0,
        "{kind} byzantine: no audit round ever started"
    );
    assert!(
        sim.stats.audit_probes_served > 0,
        "{kind} byzantine: no sampled node served a probe"
    );
    assert!(
        sim.stats.audit_replies > 0,
        "{kind} byzantine: no audit reply came back"
    );
    assert!(
        sim.stats.audit_repairs > 0,
        "{kind} byzantine: the audit never repaired the poisoned cache"
    );

    // The DES is worker- and placement-blind; the live side must match
    // it from the serial pool and from a sharded one under either
    // shard-map mode (audit replies then interleave differently — the
    // repair outcome must not care).
    for &(workers, shard_map) in &FULL_MATRIX {
        let live_spec = ConformanceSpec {
            workers,
            shard_map,
            ..spec
        };
        let label = format!("{kind} byzantine @ {workers} workers / {shard_map}");
        let (live, live_responses) = run_live(&live_spec);

        assert_eq!(
            sim_responses, live_responses,
            "{label}: answered-query counts"
        );
        assert_eq!(
            (sim.poisoned_answers, sim.poisoned_age_micros),
            (live.poisoned_answers, live.poisoned_age_micros),
            "{label}: poisoned-answer accounting diverged"
        );
        assert_eq!(sim.faults, live.faults, "{label}: fault counters diverged");
        assert_eq!(sim.stats, live.stats, "{label}: protocol counters diverged");
        assert_eq!(
            sim.cached_by, live.cached_by,
            "{label}: caching sets diverged"
        );
        assert_eq!(sim.hops, live.hops, "{label}: hop counts diverged");
        assert_eq!(
            (sim.justified, sim.tracked),
            (live.justified, live.tracked),
            "{label}: justification diverged"
        );
        assert_eq!(
            sim.routing_failures, live.routing_failures,
            "{label}: routing failures diverged"
        );
        assert_eq!(
            sim.dropped_messages, live.dropped_messages,
            "{label}: dropped-message totals diverged"
        );
        // Name the adversarial counters individually: they are inside
        // `stats`/`faults`, but they are the point of this plane.
        assert_eq!(
            (sim.stats.audits_started, sim.stats.audit_repairs),
            (live.stats.audits_started, live.stats.audit_repairs),
            "{label}: audit round/repair counters diverged"
        );
        assert_eq!(
            (
                sim.faults.byz_updates_swallowed,
                sim.faults.byz_updates_dropped,
                sim.faults.byz_refresh_lies
            ),
            (
                live.faults.byz_updates_swallowed,
                live.faults.byz_updates_dropped,
                live.faults.byz_refresh_lies
            ),
            "{label}: behavior-fault counters diverged"
        );
    }
}

#[test]
fn sim_and_live_agree_under_byzantine_on_can() {
    assert_sim_live_agree_under_byzantine(OverlayKind::Can);
}

#[test]
fn sim_and_live_agree_under_byzantine_on_chord() {
    assert_sim_live_agree_under_byzantine(OverlayKind::Chord);
}
