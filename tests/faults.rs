//! Fault-plane integration: determinism, recovery, and the economics of
//! CUP on an unreliable network.
//!
//! The paper's setting is flaky peers and lossy links; these suites pin
//! the properties that make the `cup-faults` plane trustworthy there:
//!
//! * fault runs are **deterministic** — byte-identical
//!   `ExperimentResult`s across reruns, across sweep worker counts, and
//!   (via the conformance script) across live worker-pool sizes;
//! * **recovery works** — a crashed authority rebuilds its directory
//!   from replica refreshes once restarted, and lost Clear-Bits re-send
//!   on the next unwanted update instead of assuming delivery;
//! * the **economics survive loss** — at 5% link loss CUP still buys
//!   strictly more cache hits per hop spent than all-out push.

use cup::prelude::*;
use cup::simnet::sweeps::{
    audit_config_for, audit_grid_with, audit_point_specs, fault_grid_with, fault_point_specs,
};
use cup_testkit::conformance::{run_live, ConformanceSpec};
use cup_testkit::{assert_deterministic, medium, tiny};

/// A lossy, crashy, partitioned scenario over the tiny preset.
fn faulty_scenario(seed: u64) -> Scenario {
    tiny(5.0, seed).with_fault_plan(&[
        "drop:0.1",
        "crash:9@t=600..900",
        "crash:23@t=650..950",
        "partition:2@t=700..800",
        "spike:2@t=400..500",
    ])
}

#[test]
fn fault_runs_are_deterministic_across_reruns() {
    let result = assert_deterministic(&ExperimentConfig::cup(faulty_scenario(3)));
    assert!(result.net.faults.dropped_loss > 0);
    assert!(result.net.faults.dropped_partition > 0);
    assert_eq!(result.net.faults.crashes, 2);
    assert_eq!(result.net.faults.restarts, 2);
    assert!(
        result.net.client_responses > 0,
        "service survives the faults"
    );
    // Different seeds draw different loss patterns.
    let other = run_experiment(&ExperimentConfig::cup(faulty_scenario(4)));
    assert_ne!(result, other);
}

#[test]
fn fault_sweep_is_identical_across_sweep_worker_counts() {
    let base = tiny(5.0, 11);
    let losses = [0.0, 0.05];
    let crashes = [0, 3];
    let serial = fault_grid_with(&base, &losses, &crashes, 1);
    let parallel = fault_grid_with(&base, &losses, &crashes, 4);
    assert_eq!(
        serial, parallel,
        "sweep rows must not depend on the pool size"
    );
}

/// A Byzantine stale-serve attack over the tiny preset with replica
/// churn, so the audit has deletions to detect.
fn audited_attacked_config(seed: u64) -> ExperimentConfig {
    let base = Scenario {
        replica_mean_life: Some(SimDuration::from_secs(600)),
        ..tiny(5.0, seed)
    };
    let audit = audit_config_for(&base, 30);
    let scenario = Scenario {
        fault_plan: audit_point_specs(&base, 4),
        ..base
    };
    ExperimentConfig {
        node_config: NodeConfig::cup_default().with_audit(audit),
        ..ExperimentConfig::cup(scenario)
    }
}

#[test]
fn audit_runs_are_deterministic_across_reruns() {
    // The audit's sampling draws (counter-mode over node, key, round)
    // and its repair decisions are part of the byte-identical result —
    // rerunning the same seed replays the same probes, replies, and
    // evictions.
    let result = assert_deterministic(&audited_attacked_config(3));
    assert!(result.nodes.audits_started > 0, "the audit must run");
    assert!(result.nodes.audit_replies > 0);
    assert!(result.audit_overhead() > 0);
    assert!(
        result.net.faults.byz_updates_swallowed > 0,
        "the attack must bite"
    );
    // Different seeds sample different targets and land different
    // workloads.
    let other = run_experiment(&audited_attacked_config(4));
    assert_ne!(result, other);
}

#[test]
fn audit_sweep_is_identical_across_sweep_worker_counts() {
    let base = Scenario {
        replica_mean_life: Some(SimDuration::from_secs(600)),
        ..tiny(5.0, 11)
    };
    let serial = audit_grid_with(&base, &[0, 4], 30, 1);
    let parallel = audit_grid_with(&base, &[0, 4], 30, 4);
    assert_eq!(
        serial, parallel,
        "audit sweep rows must not depend on the pool size"
    );
}

#[test]
fn live_fault_outcomes_are_identical_across_worker_counts() {
    // The same fault conformance script on 1 worker and on 4: the
    // sharded pool must make the very same drop decisions and reach the
    // very same final state as the serial pool.
    for kind in OverlayKind::ALL {
        let spec_serial = ConformanceSpec {
            workers: 1,
            ..ConformanceSpec::faulty(kind)
        };
        let spec_pool = ConformanceSpec {
            workers: 4,
            ..ConformanceSpec::faulty(kind)
        };
        let (serial, serial_responses) = run_live(&spec_serial);
        let (pool, pool_responses) = run_live(&spec_pool);
        assert_eq!(serial_responses, pool_responses, "{kind}");
        assert_eq!(serial, pool, "{kind}: worker count leaked into the outcome");
        assert!(serial.faults.dropped() > 0, "{kind}: the script must bite");
    }
}

#[test]
fn timed_window_live_outcomes_are_identical_across_worker_counts() {
    // The timed-window script (`drop:…@t=`, `spike:…@t=`, `crash:…@t=A..B`)
    // replayed against the virtual clock: the sharded pool must reach
    // the very same final state as the serial pool, including the
    // PFU-retry counts the 30 s timeout now produces live.
    for kind in OverlayKind::ALL {
        let spec_serial = ConformanceSpec {
            workers: 1,
            ..ConformanceSpec::timed(kind)
        };
        let spec_pool = ConformanceSpec {
            workers: 4,
            ..ConformanceSpec::timed(kind)
        };
        let (serial, serial_responses) = run_live(&spec_serial);
        let (pool, pool_responses) = run_live(&spec_pool);
        assert_eq!(serial_responses, pool_responses, "{kind}");
        assert_eq!(serial, pool, "{kind}: worker count leaked into the outcome");
        assert!(serial.faults.dropped() > 0, "{kind}: the windows must bite");
        assert_eq!(serial.faults.crashes, 1, "{kind}: the crash window fired");
        assert_eq!(serial.faults.restarts, 1, "{kind}: the restart edge fired");
        assert!(
            serial.stats.pfu_retries > 0,
            "{kind}: the un-parked PFU timeout must fire retries live"
        );
    }
}

#[test]
fn cup_beats_all_out_push_on_hit_rate_per_cost_at_5_percent_loss() {
    // The pinned economic claim on an unreliable network: at 5% link
    // loss, second-chance CUP buys strictly more cache hits per hop of
    // total cost than all-out push. (Push delivers a few more hits — it
    // refreshes everything — but pays for them far past the break-even.)
    // The regime matters: with several replicas per key each refresh
    // cycle multiplies (every replica keeps its own lease), so feeding a
    // tree that queries no longer justify gets expensive fast — §3.6's
    // many-replica setting is exactly where controlled propagation pays.
    // A Zipf catalog adds the cold tail whose subscriptions second-
    // chance prunes and all-out push keeps watering. Margin is 5–8%
    // across seeds.
    let base = Scenario {
        nodes: 128,
        keys: 16,
        replicas_per_key: 6,
        entry_lifetime: SimDuration::from_secs(100),
        key_distribution: cup::workload::scenario::KeyDistribution::Zipf { exponent: 0.9 },
        ..medium(10.0, 7)
    };
    let grid = fault_grid_with(&base, &[0.05], &[0], 2);
    assert_eq!(grid.len(), 2);
    let (cup, push) = (&grid[0], &grid[1]);
    assert_eq!(cup.policy, "second-chance");
    assert_eq!(push.policy, "always");
    assert!(cup.dropped > 0 && push.dropped > 0, "loss must bite both");
    assert!(
        cup.hits_per_kilocost() > push.hits_per_kilocost(),
        "CUP hit-rate-per-cost {:.4} (hit {:.3} / cost {}) must strictly beat \
         all-out push {:.4} (hit {:.3} / cost {})",
        cup.hits_per_kilocost(),
        cup.hit_rate,
        cup.total_cost,
        push.hits_per_kilocost(),
        push.hit_rate,
        push.total_cost
    );
}

/// Reconstructs the overlay `run_experiment` will build for `scenario`,
/// to find a key's authority before the run.
fn authority_for(scenario: &Scenario, overlay: OverlayKind, key: u32) -> usize {
    let root = DetRng::seed_from(scenario.seed);
    let mut overlay_rng = root.derive(1);
    let built = AnyOverlay::build(overlay, scenario.nodes, &mut overlay_rng).unwrap();
    built.authority(KeyId(key)).index()
}

#[test]
fn restarted_authority_rebuilds_its_directory_from_refreshes() {
    // Crash the single key's authority mid-window. While it is down the
    // key is unservable upstream; after the restart its directory is
    // empty — but replicas keep refreshing at entry-lifetime cadence,
    // and a refresh of an unknown replica acts as a birth, so service
    // returns. A permanent crash never recovers: the restart run must
    // answer strictly more queries.
    let base = Scenario {
        keys: 1,
        ..tiny(5.0, 21)
    };
    let authority = authority_for(&base, OverlayKind::Can, 0);
    let restart = Scenario {
        fault_plan: vec![format!("crash:{authority}@t=500..700")],
        ..base.clone()
    };
    let permanent = Scenario {
        fault_plan: vec![format!("crash:{authority}@t=500")],
        ..base.clone()
    };
    let restarted = run_experiment(&ExperimentConfig::cup(restart));
    let dead = run_experiment(&ExperimentConfig::cup(permanent));
    assert!(
        restarted.net.faults.replica_at_crashed > 0,
        "refreshes were lost while down"
    );
    assert_eq!(restarted.net.faults.restarts, 1);
    assert_eq!(dead.net.faults.restarts, 0);
    assert!(
        restarted.net.client_responses > dead.net.client_responses,
        "restart must restore service: {} answered vs {} with a permanent crash",
        restarted.net.client_responses,
        dead.net.client_responses
    );
    // Pre-crash counters are conserved, not lost with the wiped state.
    assert!(restarted.nodes.client_queries > 0);
}

#[test]
fn lost_clear_bits_resend_instead_of_assuming_delivery() {
    // The recovery rule for pruning: a node whose Clear-Bit was lost
    // does not wait — every further unwanted update re-triggers the
    // cut-off decision and re-sends the Clear-Bit. Driven directly on
    // the protocol state machine (the fault plane models the loss by
    // simply never delivering the first Clear-Bit upstream).
    use cup::protocol::{CupNode, NodeConfig};
    let mut node = CupNode::new(NodeId(1), NodeConfig::cup_with_policy(CutoffPolicy::Never));
    let refresh = |at: u64| Update {
        key: KeyId(1),
        kind: UpdateKind::Refresh,
        entries: vec![IndexEntry::new(
            KeyId(1),
            ReplicaId(0),
            SimDuration::from_secs(300),
            SimTime::from_secs(at),
        )],
        replica: ReplicaId(0),
        depth: 2,
        origin: SimTime::from_secs(at),
        window_end: SimTime::MAX,
    };
    let first = node.handle_update(SimTime::from_secs(10), NodeId(9), refresh(10));
    assert_eq!(
        first,
        vec![Action::send(NodeId(9), Message::ClearBit { key: KeyId(1) })],
        "unwanted update draws a Clear-Bit"
    );
    // The Clear-Bit was dropped: the parent pushes again. The node must
    // re-send rather than assume the first one arrived.
    let second = node.handle_update(SimTime::from_secs(300), NodeId(9), refresh(300));
    assert_eq!(
        second,
        vec![Action::send(NodeId(9), Message::ClearBit { key: KeyId(1) })],
        "a lost Clear-Bit is re-sent on the next unwanted update"
    );
    assert_eq!(node.stats.clear_bits_sent, 2);
}

#[test]
fn stale_answers_surface_under_loss_when_deletes_go_missing() {
    // With replica deaths in the workload and heavy loss, some caches
    // never hear the delete and keep serving the dead replica until
    // expiry — the staleness metrics must catch it, and the loss-free
    // run must stay clean.
    let base = Scenario {
        replica_mean_life: Some(SimDuration::from_secs(400)),
        ..tiny(10.0, 13)
    };
    let lossy = Scenario {
        fault_plan: vec!["drop:0.4".into()],
        ..base.clone()
    };
    let clean = run_experiment(&ExperimentConfig::cup(base));
    let lossy = run_experiment(&ExperimentConfig::cup(lossy));
    assert_eq!(
        clean.net.stale_answers, 0,
        "staleness is only tracked under faults"
    );
    assert!(
        lossy.net.stale_answers > 0,
        "40% loss with dying replicas must produce stale answers"
    );
    assert!(lossy.stale_rate() > 0.0 && lossy.stale_rate() < 1.0);
    assert!(
        lossy.recovery_latency_secs() > 0.0,
        "stale answers have a positive staleness age"
    );
}

#[test]
fn fault_specs_compose_with_policy_classes_and_chord() {
    // The plane is orthogonal to the rest of the scenario surface:
    // mixed policies, Chord, and a fault plan in one run.
    let specs = fault_point_specs(&tiny(5.0, 17), 0.05, 2);
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let scenario = tiny(5.0, 17)
        .with_policy_classes(&["second-chance", "always"])
        .with_fault_plan(&spec_refs);
    let mut config = ExperimentConfig::cup(scenario);
    config.overlay = OverlayKind::Chord;
    config.track_justification = true;
    let result = assert_deterministic(&config);
    assert!(result.net.faults.dropped() > 0);
    assert!(result.tracked_updates > 0);
    assert!(result.justified_updates <= result.tracked_updates);
}
