//! Quickstart: CUP versus standard caching on one scenario.
//!
//! Builds a 256-node 2-D CAN, runs the same Poisson query workload under
//! plain expiration-based caching and under CUP with the second-chance
//! cut-off policy, and prints the paper's cost metrics side by side.
//!
//! Run with: `cargo run --example quickstart`

use cup::prelude::*;

fn main() {
    let scenario = Scenario {
        nodes: 256,
        keys: 8,
        query_rate: 10.0,
        query_start: SimTime::from_secs(300),
        query_end: SimTime::from_secs(3_300),
        sim_end: SimTime::from_secs(22_000),
        seed: 2026,
        ..Scenario::default()
    };
    println!(
        "network: {} nodes (2-D CAN), {} keys, {} q/s for {}s, entry lifetime {}s",
        scenario.nodes,
        scenario.keys,
        scenario.query_rate,
        scenario.query_window().as_secs_f64(),
        scenario.entry_lifetime.as_secs_f64(),
    );

    let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));

    let mut cup_config = ExperimentConfig::cup(scenario);
    cup_config.track_justification = true;
    let cup = run_experiment(&cup_config);

    println!("\n{:<28}{:>16}{:>16}", "", "standard", "CUP");
    let rows: [(&str, f64, f64); 6] = [
        (
            "total cost (hops)",
            std.total_cost() as f64,
            cup.total_cost() as f64,
        ),
        (
            "miss cost (hops)",
            std.miss_cost() as f64,
            cup.miss_cost() as f64,
        ),
        (
            "overhead (hops)",
            std.overhead() as f64,
            cup.overhead() as f64,
        ),
        ("client misses", std.misses() as f64, cup.misses() as f64),
        ("avg hops per miss", std.miss_latency(), cup.miss_latency()),
        (
            "coalesced queries",
            std.nodes.coalesced_queries as f64,
            cup.nodes.coalesced_queries as f64,
        ),
    ];
    for (name, s, c) in rows {
        println!("{name:<28}{s:>16.1}{c:>16.1}");
    }
    println!(
        "\nCUP total cost is {:.2}x standard caching; {:.0}% of pushed updates were justified.",
        cup.total_cost() as f64 / std.total_cost() as f64,
        cup.justified_fraction() * 100.0
    );
    println!(
        "Each CUP overhead hop saved {:.2} miss hops (saved-miss/overhead ratio).",
        cup.saved_miss_overhead_ratio(std.miss_cost())
    );
}
