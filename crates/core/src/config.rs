//! Per-node protocol configuration.

use cup_des::SimDuration;

use crate::policy::{CutoffPolicy, PropagationPolicy};
use crate::popularity::ResetMode;

/// Which protocol a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full CUP: coalescing query channels, interest tracking, controlled
    /// update propagation.
    Cup,
    /// The baseline of every experiment in the paper: plain pull caching
    /// with expiration times. Queries are forwarded individually (no
    /// coalescing — this is the "open connection" model of
    /// Gnutella/Freenet-style systems, §4), responses are cached along the
    /// reverse path, and no maintenance updates are ever propagated.
    StandardCaching,
}

/// The rate-limited sampled cache audit (the LOCKSS defense).
///
/// CUP's economics assume peers relay honestly; a Byzantine peer that
/// swallows deletions keeps serving retired entries forever, and nothing
/// in the base protocol ever corrects it. The defense is the LOCKSS
/// design (Maniatis et al., by the same Roussopoulos): each caching node
/// periodically polls a small *random sample* of the population about a
/// key it serves, compares knowledge, and repairs its cache when enough
/// pollees contradict it. Sampling must be population-wide — polling
/// only one's own update tree fails, because a poisoned subtree agrees
/// with itself.
///
/// Audits are traffic-driven (a node only audits keys it actually
/// serves hits from) and rate-limited: at most one audit per key per
/// node per `interval` of the virtual clock, which bounds the audit
/// overhead regardless of query rate. Peer selection is a counter-mode
/// hash of `(seed, node, key, round, draw)`, so the DES and any
/// M-worker live run poll identical peers in identical rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Minimum virtual-clock time between two audits of the same key at
    /// the same node (the rate limit).
    pub interval: SimDuration,
    /// How many peers are polled per audit round.
    pub sample: u32,
    /// How many pollees must contradict a served replica before the
    /// auditor evicts it and adopts their entries.
    pub quorum: u32,
    /// Population size to sample peers from (dense node indices
    /// `0..population`); the node has no overlay view, so the embedding
    /// passes it in.
    pub population: u32,
    /// Seed of the peer-selection hash.
    pub seed: u64,
}

impl AuditConfig {
    /// A small-sample audit suitable for the test scenarios: poll 8
    /// peers at most once per key per `interval`, repair on a single
    /// contradiction (tombstones are firsthand knowledge, so one honest
    /// dissenter suffices; raise `quorum` to tolerate lying dissenters).
    pub fn sampled(interval: SimDuration, population: u32, seed: u64) -> Self {
        AuditConfig {
            interval,
            sample: 8,
            quorum: 1,
            population,
            seed,
        }
    }
}

/// Configuration of one CUP node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Protocol mode (CUP or the standard-caching baseline).
    pub mode: Mode,
    /// Per-key cut-off policy assignment for incoming updates (§3.4).
    /// A uniform table is the paper's homogeneous configuration; a
    /// per-class table gives different key classes different policies.
    pub policies: PropagationPolicy,
    /// When popularity decision windows reset (§3.6).
    pub reset_mode: ResetMode,
    /// If `true`, outgoing updates pass through the bounded §2.8 queues
    /// and are released by `service_outgoing`; if `false` the node has
    /// full capacity and pushes updates immediately.
    pub capacity_limited: bool,
    /// How long a Pending-First-Update flag may coalesce queries before a
    /// retry is pushed. Guards against responses lost to churn; the paper
    /// assumes reliable channels, so this only matters under failure
    /// injection.
    pub pfu_timeout: SimDuration,
    /// §3.6 overhead reduction: with many replicas per key, the authority
    /// may "selectively choose to propagate a subset of the replica
    /// refreshes and suppress others". A value of `k` propagates every
    /// k-th refresh per key; 1 propagates all (the paper's base
    /// behaviour).
    pub refresh_keep_one_in: u32,
    /// §3.6 overhead reduction: the authority may "aggregate replica
    /// refreshes ... batch all updates that arrive within that time and
    /// propagate them together as one update". `Some(window)` enables
    /// batching with that threshold ("a function of the lifetime of a
    /// replica"); `None` disables it.
    pub refresh_batch_window: Option<SimDuration>,
    /// The rate-limited sampled cache audit; `None` (the default)
    /// disables auditing entirely — no probes, no extra state.
    pub audit: Option<AuditConfig>,
}

impl NodeConfig {
    /// Full-capacity CUP with the paper's best policy (second-chance).
    pub fn cup_default() -> Self {
        NodeConfig {
            mode: Mode::Cup,
            policies: PropagationPolicy::uniform(CutoffPolicy::second_chance()),
            reset_mode: ResetMode::ReplicaIndependent,
            capacity_limited: false,
            pfu_timeout: SimDuration::from_secs(30),
            refresh_keep_one_in: 1,
            refresh_batch_window: None,
            audit: None,
        }
    }

    /// This configuration with the sampled cache audit enabled.
    pub fn with_audit(self, audit: AuditConfig) -> Self {
        NodeConfig {
            audit: Some(audit),
            ..self
        }
    }

    /// The standard-caching baseline.
    pub fn standard_caching() -> Self {
        NodeConfig {
            mode: Mode::StandardCaching,
            policies: PropagationPolicy::uniform(CutoffPolicy::Never),
            ..NodeConfig::cup_default()
        }
    }

    /// CUP with one cut-off policy for every key.
    pub fn cup_with_policy(policy: CutoffPolicy) -> Self {
        NodeConfig {
            policies: PropagationPolicy::uniform(policy),
            ..NodeConfig::cup_default()
        }
    }

    /// CUP with a per-key-class policy table.
    pub fn cup_with_policies(policies: PropagationPolicy) -> Self {
        NodeConfig {
            policies,
            ..NodeConfig::cup_default()
        }
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig::cup_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cup_des::KeyId;

    #[test]
    fn defaults_are_cup_second_chance() {
        let c = NodeConfig::default();
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(
            c.policies,
            PropagationPolicy::uniform(CutoffPolicy::second_chance())
        );
        assert_eq!(c.reset_mode, ResetMode::ReplicaIndependent);
        assert!(!c.capacity_limited);
        assert_eq!(c.audit, None, "auditing is strictly opt-in");
    }

    #[test]
    fn audit_knob_rides_along() {
        let audit = AuditConfig::sampled(SimDuration::from_secs(60), 64, 9);
        let c = NodeConfig::cup_with_policy(CutoffPolicy::Always).with_audit(audit);
        assert_eq!(c.audit, Some(audit));
        assert_eq!(audit.sample, 8);
        assert_eq!(audit.quorum, 1);
        // Struct-update constructors preserve it.
        let d = NodeConfig {
            capacity_limited: true,
            ..c
        };
        assert_eq!(d.audit, Some(audit));
    }

    #[test]
    fn baseline_never_receives_updates() {
        let c = NodeConfig::standard_caching();
        assert_eq!(c.mode, Mode::StandardCaching);
        assert_eq!(c.policies, PropagationPolicy::uniform(CutoffPolicy::Never));
    }

    #[test]
    fn with_policy_overrides_policy_only() {
        let c = NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha: 0.1 });
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(
            c.policies.policy_for(KeyId(9)),
            CutoffPolicy::Linear { alpha: 0.1 }
        );
    }

    #[test]
    fn per_class_tables_reach_the_node_config() {
        let table =
            PropagationPolicy::per_class(&[CutoffPolicy::Always, CutoffPolicy::second_chance()]);
        let c = NodeConfig::cup_with_policies(table);
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(c.policies.policy_for(KeyId(0)), CutoffPolicy::Always);
        assert_eq!(
            c.policies.policy_for(KeyId(1)),
            CutoffPolicy::second_chance()
        );
    }
}
