//! Golden-result lock on the paper reproduction.
//!
//! Runs the `repro` binary at `--scale bench` and byte-compares its full
//! stdout against the checked-in fixture. The fixture was generated from
//! the original `BinaryHeap` scheduler + map-based node table, so this
//! test is the contract that the calendar-queue scheduler, the node
//! arena, and every future engine rewrite change *nothing* about the
//! simulated results.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cup-bench --test golden_repro
//! ```
//!
//! then inspect the diff of `tests/golden/` like any other code review.

use std::path::PathBuf;
use std::process::Command;

/// Path of one golden fixture within the crate.
fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs the repro binary with `args` and returns its stdout.
fn run_repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} failed with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

/// Byte-compares `actual` against the fixture `name`, or rewrites the
/// fixture when `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated golden fixture {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "repro output diverged from golden fixture {}.\n\
         If the change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff.\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

/// The full bench-scale reproduction — every table and figure — must be
/// byte-identical run over run and across engine refactors.
#[test]
fn repro_bench_scale_matches_golden() {
    let out = run_repro(&["--scale", "bench", "all"]);
    assert_golden("repro_bench.txt", &out);
}

/// Two in-process invocations must agree byte-for-byte (no hidden
/// global state, time-of-day seeding, or map-iteration dependence).
#[test]
fn repro_bench_scale_is_reproducible() {
    let a = run_repro(&["--scale", "bench", "table1"]);
    let b = run_repro(&["--scale", "bench", "table1"]);
    assert_eq!(a, b, "same invocation must print identical bytes");
}
