//! The token-level determinism rules.
//!
//! Each rule scans the masked (code-only) view of the files in its
//! scope, so a banned construct quoted in a doc comment or an error
//! string never fires. Scopes are workspace-relative path prefixes —
//! the protocol crates (`cup-core`, `cup-simnet`, `cup-runtime`) are
//! policed; bench crates and shims measure wall time for a living and
//! stay out of scope.

use crate::engine::{masked_lines, Finding, PreparedFile, Rule, Workspace};

/// Scope of the wall-clock ban: the crates whose state machines must
/// take "now" exclusively from `cup_core::clock::Clock`.
pub const WALL_CLOCK_SCOPE: &[&str] = &["crates/core/src", "crates/runtime/src"];

/// The one module allowed to touch the wall clock (it *implements* the
/// clock abstraction).
pub const WALL_CLOCK_DESIGNATED: &str = "clock.rs";

/// Banned wall-time constructs. `Instant::now(` covers every way of
/// reading the monotonic clock; sleeping and `SystemTime` are banned
/// outright (a sleeping worker is a timing-dependent flake waiting to
/// happen; protocol state never needs calendar time). Mirrored by
/// `clippy.toml`'s `disallowed-methods` as an independent second layer.
pub const WALL_CLOCK_BANNED: &[&str] = &["Instant::now(", "thread::sleep", "SystemTime"];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| path.starts_with(s))
}

/// Rule 1: **wall-clock** — no wall-time reads in protocol crates.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "protocol crates must take time from cup_core::clock::Clock, never the wall clock"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !in_scope(&file.path, WALL_CLOCK_SCOPE) || file.path.ends_with(WALL_CLOCK_DESIGNATED)
            {
                continue;
            }
            // Tests included: even test code in these crates must not
            // sleep or read the clock (same semantics as the old grep).
            for (line_no, line) in masked_lines(file, true) {
                for token in WALL_CLOCK_BANNED {
                    if line.contains(token) {
                        out.push(Finding::new(
                            self.name(),
                            &file.path,
                            line_no,
                            format!("`{token}` — use cup_core::clock::Clock instead"),
                        ));
                    }
                }
            }
        }
    }
}

/// Scope of the iteration-order rule: everywhere protocol state or
/// metrics are produced.
pub const ITERATION_SCOPE: &[&str] =
    &["crates/core/src", "crates/simnet/src", "crates/runtime/src"];

/// Methods whose results depend on a hash map/set's iteration order.
const ORDER_DEPENDENT: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Rule 2: **unordered-iteration** — iterating a `HashMap`/`HashSet` in
/// a protocol crate. `std`'s hashers are seeded per instance, so any
/// order that leaks into message emission, metrics, or audit sampling
/// breaks sim-vs-live byte-identity. Fix by switching the container to
/// `BTreeMap`/`BTreeSet` or sorting before the drain; allow-pragma the
/// genuinely order-insensitive sites with a reason.
pub struct UnorderedIteration;

impl UnorderedIteration {
    /// Names in this file declared with a hash-ordered container type:
    /// field declarations (`name: HashMap<…>`, possibly wrapped, e.g.
    /// `name: Mutex<HashMap<…>>`) and let-bindings initialized from a
    /// constructor (`let name = HashMap::new()`). A heuristic, not an
    /// alias analysis — good enough to catch every real site in this
    /// workspace, and cheap enough to run as a tier-1 test.
    fn hash_named(file: &PreparedFile) -> Vec<String> {
        let mut names = Vec::new();
        for (_, line) in masked_lines(file, false) {
            if !(line.contains("HashMap") || line.contains("HashSet")) {
                continue;
            }
            if let Some(eq) = line.find('=') {
                let (lhs, rhs) = line.split_at(eq);
                if rhs.contains("HashMap::") || rhs.contains("HashSet::") {
                    if let Some(n) = last_ident(lhs) {
                        if !names.contains(&n) {
                            names.push(n);
                        }
                    }
                }
            } else {
                // Field or parameter declarations: `name: …HashMap<…>…`
                // per comma-separated segment (commas inside generics
                // and parens don't split).
                for seg in split_decl_segments(line) {
                    let Some(at) = first_decl_colon(seg) else {
                        continue;
                    };
                    let (lhs, rhs) = seg.split_at(at);
                    if !(rhs.contains("HashMap<") || rhs.contains("HashSet<")) {
                        continue;
                    }
                    if let Some(n) = last_ident(lhs) {
                        if !names.contains(&n) {
                            names.push(n);
                        }
                    }
                }
            }
        }
        names
    }
}

/// Splits a declaration line at commas that sit outside any bracket
/// pair, so `a: HashMap<K, V>, b: u64` yields two segments with the
/// right types attached.
fn split_decl_segments(line: &str) -> Vec<&str> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'<' | b'(' | b'[' => depth += 1,
            // `->` and `=>` are arrows, not closing angle brackets.
            b'>' if i > 0 && (b[i - 1] == b'-' || b[i - 1] == b'=') => {}
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth <= 0 => {
                out.push(&line[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&line[start..]);
    out
}

/// Index of the first `:` on the line that is not part of `::`.
fn first_decl_colon(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b':' {
            if i + 1 < b.len() && b[i + 1] == b':' {
                i += 2;
                continue;
            }
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Trailing identifier of a fragment, skipping trailing whitespace.
fn last_ident(fragment: &str) -> Option<String> {
    let trimmed = fragment.trim_end();
    let tail: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!tail.is_empty() && !tail.chars().next().unwrap().is_ascii_digit()).then_some(tail)
}

/// True when `text[at]` starts `name` *as a whole identifier* (not a
/// suffix or prefix of a longer one).
fn ident_bounded(text: &str, at: usize, name: &str) -> bool {
    let b = text.as_bytes();
    let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
    let end = at + name.len();
    let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
    before_ok && after_ok
}

impl Rule for UnorderedIteration {
    fn name(&self) -> &'static str {
        "unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "iteration over HashMap/HashSet in protocol crates (hash order is per-instance random)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !in_scope(&file.path, ITERATION_SCOPE) {
                continue;
            }
            let names = Self::hash_named(file);
            if names.is_empty() {
                continue;
            }
            for (line_no, line) in masked_lines(file, false) {
                for name in &names {
                    // `name.keys()`, `self.name.retain(…)`, …
                    for method in ORDER_DEPENDENT {
                        let needle = format!("{name}{method}");
                        let mut from = 0;
                        while let Some(rel) = line[from..].find(&needle) {
                            let at = from + rel;
                            if ident_bounded(line, at, name) {
                                out.push(Finding::new(
                                    self.name(),
                                    &file.path,
                                    line_no,
                                    format!(
                                        "`{name}{method}` iterates a hash-ordered container \
                                         — convert to BTreeMap/BTreeSet or sort first"
                                    ),
                                ));
                            }
                            from = at + needle.len();
                        }
                    }
                    // `for … in &name` / `in &mut name` / `in name` —
                    // direct IntoIterator use without a method call.
                    if line.contains("for ") {
                        for pat in [
                            format!("in &mut self.{name}"),
                            format!("in &self.{name}"),
                            format!("in self.{name}"),
                            format!("in &mut {name}"),
                            format!("in &{name}"),
                            format!("in {name}"),
                        ] {
                            if let Some(at) = line.find(&pat) {
                                let name_at = at + pat.len() - name.len();
                                // A `.` after the name means a method
                                // call — the method list above owns it.
                                let methodish = line
                                    .as_bytes()
                                    .get(name_at + name.len())
                                    .is_some_and(|&c| c == b'.');
                                if ident_bounded(line, name_at, name) && !methodish {
                                    out.push(Finding::new(
                                        self.name(),
                                        &file.path,
                                        line_no,
                                        format!(
                                            "`for … {pat}` iterates a hash-ordered container \
                                             — convert to BTreeMap/BTreeSet or sort first"
                                        ),
                                    ));
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Scope of the atomics rule: the live runtime, whose counters must be
/// exact at every `quiesce()` barrier.
pub const ATOMIC_SCOPE: &[&str] = &["crates/runtime/src"];

/// Atomics that are pure monotone counters: workers only `fetch_add`
/// them, and every read happens after the quiesce barrier's
/// SeqCst release/acquire edge on the in-flight envelope count, which
/// makes all prior worker writes visible. Relaxed is sound *and* the
/// point (no ordering constraint on the hot path).
pub const MONOTONE_COUNTERS: &[&str] = &[
    "hops",
    "cross_shard",
    "batch_flushes",
    "batched_envelopes",
    "routing_failures",
    "stale_answers",
    "stale_age_micros",
    "next_client",
];

/// Rule 3: **relaxed-atomic** — `Ordering::Relaxed` on an atomic that
/// is not a recognized monotone counter. Control-flow flags read by
/// workers (justification tracking, fault arming) must use at least
/// Acquire so a flip before a barrier is seen after it.
pub struct RelaxedAtomic;

impl RelaxedAtomic {
    /// Receiver field of the atomic-op call that `Ordering::Relaxed` at
    /// byte `at` is an argument of: scans back to the call's opening
    /// paren, then reads `receiver.method(` backwards. Works across
    /// rustfmt line wraps because it runs on the whole masked text.
    fn receiver(masked: &str, at: usize) -> Option<String> {
        let b = masked.as_bytes();
        let mut depth = 0i32;
        let mut i = at;
        let open = loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            match b[i] {
                b')' | b']' => depth += 1,
                b'(' | b'[' => {
                    depth -= 1;
                    if depth < 0 {
                        break i;
                    }
                }
                _ => {}
            }
        };
        // `receiver.method(` — method ident directly before the paren.
        let method_end = open;
        let mut j = method_end;
        while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
            j -= 1;
        }
        if j == method_end {
            return None;
        }
        // Skip whitespace (rustfmt may wrap `.method(` onto its own
        // line), then require the `.` of a method call.
        let mut k = j;
        while k > 0 && (b[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        if k == 0 || b[k - 1] != b'.' {
            return None;
        }
        k -= 1;
        while k > 0 && (b[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        let recv_end = k;
        let mut r = recv_end;
        while r > 0 && (b[r - 1].is_ascii_alphanumeric() || b[r - 1] == b'_') {
            r -= 1;
        }
        (r < recv_end).then(|| masked[r..recv_end].to_string())
    }
}

impl Rule for RelaxedAtomic {
    fn name(&self) -> &'static str {
        "relaxed-atomic"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed on a non-monotone-counter atomic in the live runtime"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !in_scope(&file.path, ATOMIC_SCOPE) {
                continue;
            }
            let masked = &file.masked_no_tests;
            let mut from = 0;
            while let Some(rel) = masked[from..].find("Ordering::Relaxed") {
                let at = from + rel;
                let line = masked[..at].bytes().filter(|&c| c == b'\n').count() + 1;
                match Self::receiver(masked, at) {
                    Some(recv) if MONOTONE_COUNTERS.contains(&recv.as_str()) => {}
                    recv => {
                        let what = recv.unwrap_or_else(|| "<unknown receiver>".to_string());
                        out.push(Finding::new(
                            self.name(),
                            &file.path,
                            line,
                            format!(
                                "Relaxed ordering on `{what}` — not a recognized monotone \
                                 counter; use Acquire/Release (or SeqCst) so the quiesce \
                                 barrier sees it"
                            ),
                        ));
                    }
                }
                from = at + "Ordering::Relaxed".len();
            }
        }
    }
}

/// Scope of the panic rule: same as the atomics rule — the live worker
/// dispatch path.
pub const PANIC_SCOPE: &[&str] = &["crates/runtime/src"];

/// Rule 4: **panic-path** — `unwrap`/`expect` in the live runtime's
/// production code. A panicking worker poisons the pool mid-run;
/// degradation must be drop-and-count (`routing_failures`-style) so a
/// live run keeps its books instead of dying. Start-up/shutdown sites
/// carry allow-pragmas: before workers exist and after they join,
/// panicking is the correct report.
pub struct PanicPath;

impl Rule for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect in live-runtime production code (workers must degrade, not die)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !in_scope(&file.path, PANIC_SCOPE) {
                continue;
            }
            for (line_no, line) in masked_lines(file, false) {
                for token in [".unwrap()", ".expect("] {
                    let mut from = 0;
                    while let Some(rel) = line[from..].find(token) {
                        let at = from + rel;
                        out.push(Finding::new(
                            self.name(),
                            &file.path,
                            line_no,
                            format!(
                                "`{token}` on the live path — recover (e.g. \
                                 `unwrap_or_else(|e| e.into_inner())` for poisoned locks) \
                                 or drop-and-count"
                            ),
                        ));
                        from = at + token.len();
                    }
                }
            }
        }
    }
}
