//! Synthetic workload generation for CUP experiments.
//!
//! The paper's evaluation (§3.2) drives the simulator with: the number of
//! overlay nodes, the number of keys owned per node, the distribution of
//! queries over keys, the distribution of query inter-arrival times
//! (Poisson), the number of replicas per key, and the lifetime of replicas.
//! Real traces of fully decentralized peer-to-peer networks were
//! unavailable to the authors (and remain so), so all workloads are
//! synthetic by design — parameters range "from unfavorable to favorable
//! conditions for CUP".
//!
//! This crate provides the corresponding generators:
//!
//! * [`poisson::PoissonProcess`] — exponential inter-arrival times;
//! * [`keysel::KeySelector`] — uniform or Zipf query-key popularity;
//! * [`query::QueryGen`] — the full query workload (when, at which node,
//!   for which key);
//! * [`replica::ReplicaPlan`] — replica lifecycles: birth, refresh at
//!   every entry expiration, optional death;
//! * [`capacity::CapacityProfile`] — the §3.7 Up-And-Down and
//!   Once-Down-Always-Down outgoing-capacity degradation schedules;
//! * [`churn::ChurnSchedule`] — node join/leave sequences;
//! * [`scenario::Scenario`] — a complete experiment configuration.

pub mod capacity;
pub mod churn;
pub mod keysel;
pub mod poisson;
pub mod query;
pub mod replica;
pub mod scenario;

pub use capacity::{CapacityEpoch, CapacityProfile};
pub use churn::{ChurnEvent, ChurnSchedule};
pub use keysel::KeySelector;
pub use poisson::PoissonProcess;
pub use query::QueryGen;
pub use replica::{ReplicaAction, ReplicaPlan};
pub use scenario::Scenario;
