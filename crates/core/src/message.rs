//! Protocol messages exchanged over the query and update channels.
//!
//! CUP maintains two logical channels per neighbor (§1): queries travel
//! *up* the query channel toward a key's authority node, and updates and
//! clear-bit control messages travel *down* the update channel along
//! reverse query paths.

use cup_des::{KeyId, NodeId, ReplicaId, SimDuration, SimTime};

use crate::entry::IndexEntry;

/// Identifies a local client connection waiting for a query response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

/// Who posted a query at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// A neighboring node pushed the query up its query channel.
    Neighbor(NodeId),
    /// A local client posted the query; the node keeps the connection open
    /// until it can return a fresh answer (§2.5).
    Client(ClientId),
}

/// The four update categories of §2.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UpdateKind {
    /// A query response traveling down the reverse query path. Always
    /// justified (it answers a real query), so its justification window is
    /// unbounded.
    FirstTime,
    /// Remove a cached index entry (replica stopped serving or failed).
    Delete,
    /// Keep-alive extending the lifetime of an index entry.
    Refresh,
    /// Add an index entry for a new replica.
    Append,
}

impl UpdateKind {
    /// Push priority under limited capacity (§2.8): "in an application
    /// where query latency and accuracy are of the most importance, one
    /// can push updates in the following order: first-time updates,
    /// deletes, refreshes, and appends". Lower value = pushed first.
    pub fn priority(self) -> u8 {
        match self {
            UpdateKind::FirstTime => 0,
            UpdateKind::Delete => 1,
            UpdateKind::Refresh => 2,
            UpdateKind::Append => 3,
        }
    }
}

/// An update flowing down an update channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// The key the update concerns.
    pub key: KeyId,
    /// Which of the four §2.4 categories this is.
    pub kind: UpdateKind,
    /// Payload entries. A first-time update carries the full fresh entry
    /// set; refresh and append carry the affected entry; delete carries
    /// the stale entry being removed (so receivers know what to drop and
    /// when the delete itself expires).
    pub entries: Vec<IndexEntry>,
    /// The replica the update originated from (meaningful for delete,
    /// refresh, and append; for first-time updates it is the replica of
    /// the first carried entry or `ReplicaId(u32::MAX)` when empty).
    pub replica: ReplicaId,
    /// Distance in hops of the *receiving* node from the authority node.
    /// The authority pushes updates with `depth = 1`; each forwarding step
    /// increments it. Distance-based cut-off policies (§3.4) read this.
    pub depth: u32,
    /// When the update left the authority node.
    pub origin: SimTime,
    /// End of the justification window T (§3.1): a query must arrive
    /// before this instant for the update to be justified.
    /// `SimTime::MAX` for first-time updates.
    pub window_end: SimTime,
}

impl Update {
    /// Returns `true` if the update is no longer worth applying at `now`
    /// (§2.6 case 3: it arrived too late, e.g. after long network delays).
    ///
    /// An update has expired when every entry it carries has expired. A
    /// delete expires when the entry it removes would have expired anyway.
    pub fn is_expired(&self, now: SimTime) -> bool {
        !self.entries.is_empty() && self.entries.iter().all(|e| !e.is_fresh(now))
    }

    /// A copy of this update as forwarded one hop further downstream.
    pub fn forwarded(&self) -> Update {
        let mut next = self.clone();
        next.depth += 1;
        next
    }
}

/// A message between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A query pushed up the query channel toward the authority.
    Query {
        /// The key being looked up.
        key: KeyId,
    },
    /// An update pushed down the update channel.
    Update(Update),
    /// "Stop sending me updates for this key" (§2.7).
    ClearBit {
        /// The key losing interest.
        key: KeyId,
    },
    /// "What do you know about this key?" — one poll of the rate-limited
    /// sampled cache audit (LOCKSS-style; see `config::AuditConfig`).
    AuditProbe {
        /// The key being audited.
        key: KeyId,
        /// The auditor's per-key round number; replies echo it so late
        /// answers from a superseded round are ignored.
        round: u64,
    },
    /// A poll answer: everything the polled node currently knows.
    AuditReply {
        /// The key being audited.
        key: KeyId,
        /// Echo of the probe's round number.
        round: u64,
        /// The fresh entries the polled node holds (cache and, at the
        /// authority, directory knowledge).
        entries: Vec<IndexEntry>,
        /// Replicas the polled node has seen retired (delete tombstones):
        /// the *negative* knowledge a poisoned auditor is missing.
        retired: Vec<ReplicaId>,
    },
}

impl Message {
    /// The key this message concerns.
    pub fn key(&self) -> KeyId {
        match self {
            Message::Query { key } => *key,
            Message::Update(u) => u.key,
            Message::ClearBit { key } => *key,
            Message::AuditProbe { key, .. } => *key,
            Message::AuditReply { key, .. } => *key,
        }
    }
}

/// Events sent by content replicas to the authority node owning their key
/// (§2.1): birth, periodic refresh, and deletion messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaEvent {
    /// The replica announces it serves the content for `lifetime`.
    Birth {
        /// The key served.
        key: KeyId,
        /// The announcing replica.
        replica: ReplicaId,
        /// Validity period of the resulting index entry.
        lifetime: SimDuration,
    },
    /// The replica renews its index entry for another `lifetime`.
    Refresh {
        /// The key served.
        key: KeyId,
        /// The renewing replica.
        replica: ReplicaId,
        /// New validity period.
        lifetime: SimDuration,
    },
    /// The replica stops serving the content (explicit deletion message,
    /// or the authority noticed missing keep-alives).
    Deletion {
        /// The key no longer served.
        key: KeyId,
        /// The departing replica.
        replica: ReplicaId,
    },
}

impl ReplicaEvent {
    /// The key the event concerns.
    pub fn key(&self) -> KeyId {
        match *self {
            ReplicaEvent::Birth { key, .. }
            | ReplicaEvent::Refresh { key, .. }
            | ReplicaEvent::Deletion { key, .. } => key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimDuration;

    fn update(kind: UpdateKind, stamped: u64, life: u64) -> Update {
        Update {
            key: KeyId(1),
            kind,
            entries: vec![IndexEntry::new(
                KeyId(1),
                ReplicaId(0),
                SimDuration::from_secs(life),
                SimTime::from_secs(stamped),
            )],
            replica: ReplicaId(0),
            depth: 1,
            origin: SimTime::from_secs(stamped),
            window_end: SimTime::from_secs(stamped + life),
        }
    }

    #[test]
    fn priority_order_matches_paper() {
        assert!(UpdateKind::FirstTime.priority() < UpdateKind::Delete.priority());
        assert!(UpdateKind::Delete.priority() < UpdateKind::Refresh.priority());
        assert!(UpdateKind::Refresh.priority() < UpdateKind::Append.priority());
    }

    #[test]
    fn update_expiry_follows_entries() {
        let u = update(UpdateKind::Refresh, 100, 300);
        assert!(!u.is_expired(SimTime::from_secs(200)));
        assert!(u.is_expired(SimTime::from_secs(400)));
    }

    #[test]
    fn empty_update_never_expires() {
        let mut u = update(UpdateKind::FirstTime, 100, 300);
        u.entries.clear();
        assert!(!u.is_expired(SimTime::from_secs(10_000)));
    }

    #[test]
    fn forwarding_increments_depth_only() {
        let u = update(UpdateKind::Append, 5, 10);
        let f = u.forwarded();
        assert_eq!(f.depth, u.depth + 1);
        assert_eq!(f.entries, u.entries);
        assert_eq!(f.window_end, u.window_end);
    }

    #[test]
    fn message_key_extraction() {
        assert_eq!(Message::Query { key: KeyId(9) }.key(), KeyId(9));
        assert_eq!(Message::ClearBit { key: KeyId(8) }.key(), KeyId(8));
        assert_eq!(
            Message::AuditProbe {
                key: KeyId(7),
                round: 3
            }
            .key(),
            KeyId(7)
        );
        assert_eq!(
            Message::AuditReply {
                key: KeyId(6),
                round: 3,
                entries: Vec::new(),
                retired: vec![ReplicaId(1)],
            }
            .key(),
            KeyId(6)
        );
        assert_eq!(
            Message::Update(update(UpdateKind::Delete, 0, 1)).key(),
            KeyId(1)
        );
        assert_eq!(
            ReplicaEvent::Deletion {
                key: KeyId(3),
                replica: ReplicaId(0)
            }
            .key(),
            KeyId(3)
        );
    }
}
