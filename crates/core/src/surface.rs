//! The workspace's stable string surface for configuration enums.
//!
//! Overlay kinds, cut-off policies, and fault-event kinds all need the
//! same four things: an `ALL` constant for parametrized tests and
//! benches, a stable lower-case `name` for bench JSON fields and CLI
//! flags, a `parse` inverse for scenario spec strings, and a `Display`
//! that prints the name. The [`string_surface!`] macro generates the
//! whole surface for unit enums (so new kinds cannot drift from the
//! convention), and its `display_via_name` arm covers parameterized
//! enums like [`crate::CutoffPolicy`] that hand-roll `name`/`parse` to
//! embed parameters but still want the canonical `Display`.

/// Generates the workspace's stable string surface.
///
/// For a unit enum, generates `ALL`, `name()`, `parse()`, and `Display`:
///
/// ```
/// #[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// pub enum Fruit { Apple, Pear }
/// cup_core::string_surface!(Fruit { Apple => "apple", Pear => "pear" });
///
/// assert_eq!(Fruit::ALL.len(), 2);
/// assert_eq!(Fruit::parse(Fruit::Apple.name()), Some(Fruit::Apple));
/// assert_eq!(Fruit::Pear.to_string(), "pear");
/// assert_eq!(Fruit::parse("mango"), None);
/// ```
///
/// For a type with a hand-written parameterized `name()` (returning
/// `String`), `string_surface!(display_via_name Type)` generates only
/// the `Display` impl forwarding to it.
#[macro_export]
macro_rules! string_surface {
    ($Ty:ident { $($variant:ident => $name:literal),+ $(,)? }) => {
        impl $Ty {
            /// Every variant once, for parametrized tests and benches.
            pub const ALL: [$Ty; $crate::string_surface!(@count $($variant)+)] =
                [$($Ty::$variant),+];

            /// Stable lower-case name (bench JSON fields, CLI flags,
            /// scenario spec strings).
            pub fn name(self) -> &'static str {
                match self { $($Ty::$variant => $name),+ }
            }

            /// Parses the inverse of `name`.
            pub fn parse(s: &str) -> Option<$Ty> {
                match s { $($name => Some($Ty::$variant),)+ _ => None }
            }
        }
        $crate::string_surface!(display_via_name $Ty);
    };
    (display_via_name $Ty:ident) => {
        impl ::core::fmt::Display for $Ty {
            fn fmt(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {
                f.write_str(&self.name())
            }
        }
    };
    (@count) => { 0usize };
    (@count $head:ident $($tail:ident)*) => {
        1usize + $crate::string_surface!(@count $($tail)*)
    };
}

#[cfg(test)]
mod tests {
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Sample {
        One,
        Two,
        Three,
    }
    crate::string_surface!(Sample { One => "one", Two => "two", Three => "three" });

    #[test]
    fn generated_surface_round_trips() {
        assert_eq!(Sample::ALL, [Sample::One, Sample::Two, Sample::Three]);
        for s in Sample::ALL {
            assert_eq!(Sample::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Sample::parse("four"), None);
        assert_eq!(Sample::parse(""), None);
    }
}
