//! Capacity degradation (§3.7): CUP falls back gracefully when nodes
//! cannot push updates.

use cup::prelude::*;
use cup_testkit::{assert_cheaper, assert_deterministic, medium};

fn scenario() -> Scenario {
    medium(20.0, 404)
}

fn with_profile(profile: CapacityProfile) -> ExperimentConfig {
    let mut config = ExperimentConfig::cup(scenario());
    config.capacity_profile = profile;
    config
}

#[test]
fn degraded_cup_still_beats_standard_caching() {
    // The paper's key claim: "even when the capacity of one fifth of the
    // nodes is reduced to zero percent ... CUP outperforms standard
    // caching."
    let std = run_experiment(&ExperimentConfig::standard_caching(scenario()));
    for profile in [
        CapacityProfile::UpAndDown {
            fraction: 0.2,
            reduced: 0.0,
        },
        CapacityProfile::OnceDownAlwaysDown {
            fraction: 0.2,
            reduced: 0.0,
        },
    ] {
        let cup = run_experiment(&with_profile(profile));
        assert_cheaper(&format!("{profile:?}"), &cup, &std);
    }
}

#[test]
fn performance_degrades_gracefully_with_capacity() {
    // Sweeping c from 0 to 1 must not produce wild swings; the miss cost
    // at full capacity is the best.
    let run_at = |c: f64| {
        run_experiment(&with_profile(CapacityProfile::OnceDownAlwaysDown {
            fraction: 0.2,
            reduced: c,
        }))
    };
    let zero = run_at(0.0);
    let half = run_at(0.5);
    let full = run_experiment(&ExperimentConfig::cup(scenario()));
    assert!(
        full.miss_cost() <= zero.miss_cost(),
        "full capacity should miss least: full {} vs zero {}",
        full.miss_cost(),
        zero.miss_cost()
    );
    // Intermediate capacity lands in a sane band.
    assert!(half.total_cost() <= zero.total_cost().max(full.total_cost()) * 2);
}

#[test]
fn answers_survive_zero_capacity() {
    let result = run_experiment(&with_profile(CapacityProfile::UpAndDown {
        fraction: 0.2,
        reduced: 0.0,
    }));
    // First-time responses pass through the §2.8 queues; at c = 0 the
    // degraded nodes stop answering until recovery, but the Up-And-Down
    // profile recovers them, and PFU retries re-issue lost queries.
    let answered = result.net.client_responses as f64 / result.nodes.client_queries as f64;
    assert!(
        answered > 0.9,
        "queries must eventually be answered, got {answered:.3}"
    );
}

#[test]
fn up_and_down_recovers_between_epochs() {
    let up_down = run_experiment(&with_profile(CapacityProfile::UpAndDown {
        fraction: 0.2,
        reduced: 0.25,
    }));
    let once_down = run_experiment(&with_profile(CapacityProfile::OnceDownAlwaysDown {
        fraction: 0.2,
        reduced: 0.25,
    }));
    // Nodes that recover should do no worse than nodes that stay down.
    assert!(
        up_down.miss_cost() <= once_down.miss_cost() * 12 / 10,
        "up-and-down {} vs once-down {}",
        up_down.miss_cost(),
        once_down.miss_cost()
    );
}

#[test]
fn capacity_runs_are_deterministic() {
    // Degradation epochs draw from their own RNG stream; the whole run
    // must still be byte-identical given the seed.
    assert_deterministic(&with_profile(CapacityProfile::UpAndDown {
        fraction: 0.2,
        reduced: 0.25,
    }));
}
