//! Simulation events.

use cup_core::Message;
use cup_des::{KeyId, NodeId};
use cup_faults::FaultEvent;
use cup_workload::{churn::ChurnEvent, replica::ReplicaAction};

/// Everything that can happen in a simulated CUP network.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A local client posts a query at a node.
    PostQuery {
        /// Dense index of the posting node among the initially built
        /// nodes (mapped to a live node at fire time).
        node_index: usize,
        /// The key queried.
        key: KeyId,
    },
    /// Pull the next query from the workload generator.
    NextQuery,
    /// A protocol message arrives after one hop of latency.
    Deliver {
        /// Sending neighbor.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// A replica lifecycle action reaches its authority node.
    Replica(ReplicaAction),
    /// A capacity-limited node services its outgoing update queues.
    ServiceCapacity {
        /// The node to service.
        node: NodeId,
    },
    /// A scheduled capacity change (§3.7 profiles).
    SetCapacity {
        /// Dense indices of the affected nodes.
        nodes: Vec<usize>,
        /// The new capacity fraction.
        capacity: f64,
    },
    /// A node joins or leaves the overlay.
    Churn(ChurnEvent),
    /// A scripted fault-plane change (loss, latency, crash, partition).
    Fault(FaultEvent),
}
