//! Churn integration: CUP keeps working while nodes come and go (§2.9).

use cup::prelude::*;
use cup::workload::churn::ChurnEvent;
use cup_testkit::assert_deterministic;

fn scenario() -> Scenario {
    cup_testkit::scenario(96, 6, 10.0, 1_200, 31)
}

fn churned_config(graceful_p: f64, period_secs: u64) -> ExperimentConfig {
    let s = scenario();
    let mut rng = DetRng::seed_from(s.seed ^ 0xBEEF);
    let churn = ChurnSchedule::alternating(
        s.query_start,
        s.query_end,
        SimDuration::from_secs(period_secs),
        graceful_p,
        &mut rng,
    );
    let mut config = ExperimentConfig::cup(s);
    config.churn = churn;
    config
}

#[test]
fn queries_still_answered_under_churn() {
    let result = run_experiment(&churned_config(0.5, 30));
    let answered = result.net.client_responses as f64 / result.nodes.client_queries as f64;
    assert!(
        answered > 0.95,
        "most queries must still be answered under churn, got {:.3}",
        answered
    );
}

#[test]
fn graceful_churn_loses_no_more_than_ungraceful() {
    let graceful = run_experiment(&churned_config(1.0, 40));
    let ungraceful = run_experiment(&churned_config(0.0, 40));
    // Both runs must stay functional; graceful hand-over preserves the
    // index directory so it should not answer fewer queries.
    assert!(graceful.net.client_responses > 0);
    assert!(ungraceful.net.client_responses > 0);
    let g = graceful.net.client_responses as f64 / graceful.nodes.client_queries as f64;
    let u = ungraceful.net.client_responses as f64 / ungraceful.nodes.client_queries as f64;
    assert!(g >= u - 0.02, "graceful {g:.3} vs ungraceful {u:.3}");
}

#[test]
fn churn_costs_more_than_calm_but_not_catastrophically() {
    let calm = run_experiment(&ExperimentConfig::cup(scenario()));
    let churned = run_experiment(&churned_config(0.5, 30));
    // "The effect on the overall performance of CUP is limited to that
    // node's neighborhood" — total cost may rise but must stay in the
    // same order of magnitude.
    assert!(
        (churned.total_cost() as f64) < calm.total_cost() as f64 * 3.0,
        "churned {} vs calm {}",
        churned.total_cost(),
        calm.total_cost()
    );
}

#[test]
fn rapid_churn_remains_stable() {
    let result = run_experiment(&churned_config(0.5, 10));
    let answered = result.net.client_responses as f64 / result.nodes.client_queries as f64;
    assert!(
        answered > 0.9,
        "even rapid churn must keep the network serving, got {answered:.3}"
    );
}

#[test]
fn churn_events_change_the_cost_profile_deterministically() {
    // Join/leave processing must not introduce any hidden nondeterminism
    // (e.g. hash-ordered neighbor iteration).
    assert_deterministic(&churned_config(0.5, 30));
}

#[test]
fn churn_schedule_shapes_are_as_configured() {
    let mut rng = DetRng::seed_from(3);
    let schedule = ChurnSchedule::alternating(
        SimTime::from_secs(0),
        SimTime::from_secs(300),
        SimDuration::from_secs(30),
        1.0,
        &mut rng,
    );
    assert_eq!(schedule.len(), 9);
    let leaves = schedule
        .events()
        .iter()
        .filter(|e| matches!(e, ChurnEvent::Leave { .. }))
        .count();
    assert_eq!(leaves, 4);
}
