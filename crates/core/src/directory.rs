//! The local index directory of an authority node (§2.1).
//!
//! Every node owns a partition of the global index; the index entries
//! mapped into its partition form its *local index directory*, disjoint
//! from its cache of other nodes' entries. Replicas send birth, refresh,
//! and deletion messages to the authority, which maintains the directory
//! and propagates the corresponding updates to interested neighbors.

use std::collections::BTreeMap;

use cup_des::{KeyId, SimTime};

use crate::entry::IndexEntry;
use crate::message::ReplicaEvent;

/// What a replica event did to the directory (drives update propagation).
#[derive(Debug, Clone, PartialEq)]
pub enum DirectoryChange {
    /// A new entry was added (propagate as an append).
    Added(IndexEntry),
    /// An existing entry's lifetime was extended (propagate as a refresh).
    Refreshed(IndexEntry),
    /// An entry was removed; carries the removed entry so the delete's
    /// justification window (until the entry would have expired) is known.
    Removed(IndexEntry),
    /// The event had no effect (e.g. deleting an unknown replica).
    Nothing,
}

/// An authority node's slice of the global index.
///
/// Keyed by a `BTreeMap` so `expire()` and `drain_keys()` emit entries
/// in key order: their output order drives delete propagation and
/// ownership hand-over, which must be identical across the DES and any
/// M-worker live run.
#[derive(Debug, Clone, Default)]
pub struct LocalDirectory {
    entries: BTreeMap<KeyId, Vec<IndexEntry>>,
}

impl LocalDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        LocalDirectory::default()
    }

    /// Applies a replica event, returning what changed.
    ///
    /// A birth for an already-known replica acts as a refresh, and a
    /// refresh for an unknown replica acts as a birth (replicas re-appear
    /// after authority hand-overs).
    pub fn apply(&mut self, event: ReplicaEvent, now: SimTime) -> DirectoryChange {
        match event {
            ReplicaEvent::Birth {
                key,
                replica,
                lifetime,
            }
            | ReplicaEvent::Refresh {
                key,
                replica,
                lifetime,
            } => {
                let entry = IndexEntry::new(key, replica, lifetime, now);
                let slot = self.entries.entry(key).or_default();
                match slot.iter_mut().find(|e| e.replica == replica) {
                    Some(existing) => {
                        *existing = entry;
                        DirectoryChange::Refreshed(entry)
                    }
                    None => {
                        slot.push(entry);
                        DirectoryChange::Added(entry)
                    }
                }
            }
            ReplicaEvent::Deletion { key, replica } => {
                let Some(slot) = self.entries.get_mut(&key) else {
                    return DirectoryChange::Nothing;
                };
                match slot.iter().position(|e| e.replica == replica) {
                    Some(i) => {
                        let removed = slot.swap_remove(i);
                        if slot.is_empty() {
                            self.entries.remove(&key);
                        }
                        DirectoryChange::Removed(removed)
                    }
                    None => DirectoryChange::Nothing,
                }
            }
        }
    }

    /// The fresh entries for `key` at `now`.
    pub fn fresh_entries(&self, key: KeyId, now: SimTime) -> Vec<IndexEntry> {
        self.entries
            .get(&key)
            .map(|v| v.iter().filter(|e| e.is_fresh(now)).copied().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if the directory holds any entry (fresh or not) for
    /// `key`.
    pub fn knows(&self, key: KeyId) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes and returns entries whose lifetime elapsed without a
    /// refresh — the authority "notices a replica has stopped sending
    /// keep-alive messages and assumes the replica has failed" (§2.4).
    pub fn expire(&mut self, now: SimTime) -> Vec<IndexEntry> {
        let mut dead = Vec::new();
        self.entries.retain(|_, slot| {
            slot.retain(|e| {
                if e.is_fresh(now) {
                    true
                } else {
                    dead.push(*e);
                    false
                }
            });
            !slot.is_empty()
        });
        dead
    }

    /// Drains entries for keys selected by `predicate` — used when index
    /// ownership moves during node arrivals and departures (§2.9).
    pub fn drain_keys(&mut self, mut predicate: impl FnMut(KeyId) -> bool) -> Vec<IndexEntry> {
        let moving: Vec<KeyId> = self
            .entries
            .keys()
            .copied()
            .filter(|&k| predicate(k))
            .collect();
        let mut out = Vec::new();
        for k in moving {
            if let Some(v) = self.entries.remove(&k) {
                out.extend(v);
            }
        }
        out
    }

    /// Merges entries handed over from another node, eliminating
    /// duplicates (§2.9: "M must then merge its own set of index entries
    /// with N's, by eliminating duplicate entries").
    pub fn merge(&mut self, entries: Vec<IndexEntry>) {
        for e in entries {
            let slot = self.entries.entry(e.key).or_default();
            match slot.iter_mut().find(|x| x.replica == e.replica) {
                // Keep whichever copy lives longer.
                Some(existing) => {
                    if e.expires_at() > existing.expires_at() {
                        *existing = e;
                    }
                }
                None => slot.push(e),
            }
        }
    }

    /// Total number of entries across all keys.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Returns `true` if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates all keys with at least one entry.
    pub fn keys(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::{ReplicaId, SimDuration};

    const LIFE: SimDuration = SimDuration::from_secs(300);

    fn birth(key: u32, replica: u32) -> ReplicaEvent {
        ReplicaEvent::Birth {
            key: KeyId(key),
            replica: ReplicaId(replica),
            lifetime: LIFE,
        }
    }

    #[test]
    fn birth_adds_refresh_extends() {
        let mut dir = LocalDirectory::new();
        let t0 = SimTime::ZERO;
        assert!(matches!(
            dir.apply(birth(1, 0), t0),
            DirectoryChange::Added(_)
        ));
        assert_eq!(dir.len(), 1);
        let t1 = SimTime::from_secs(250);
        let change = dir.apply(
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(0),
                lifetime: LIFE,
            },
            t1,
        );
        assert!(matches!(change, DirectoryChange::Refreshed(_)));
        assert_eq!(dir.len(), 1);
        assert_eq!(
            dir.fresh_entries(KeyId(1), SimTime::from_secs(400)).len(),
            1,
            "refresh extended the lifetime past the original expiry"
        );
    }

    #[test]
    fn refresh_of_unknown_replica_adds() {
        let mut dir = LocalDirectory::new();
        let change = dir.apply(
            ReplicaEvent::Refresh {
                key: KeyId(1),
                replica: ReplicaId(3),
                lifetime: LIFE,
            },
            SimTime::ZERO,
        );
        assert!(matches!(change, DirectoryChange::Added(_)));
    }

    #[test]
    fn deletion_removes_and_reports_entry() {
        let mut dir = LocalDirectory::new();
        dir.apply(birth(1, 0), SimTime::ZERO);
        let change = dir.apply(
            ReplicaEvent::Deletion {
                key: KeyId(1),
                replica: ReplicaId(0),
            },
            SimTime::from_secs(10),
        );
        match change {
            DirectoryChange::Removed(e) => assert_eq!(e.replica, ReplicaId(0)),
            other => panic!("expected removal, got {other:?}"),
        }
        assert!(dir.is_empty());
        // Deleting again is a no-op.
        let change = dir.apply(
            ReplicaEvent::Deletion {
                key: KeyId(1),
                replica: ReplicaId(0),
            },
            SimTime::from_secs(11),
        );
        assert_eq!(change, DirectoryChange::Nothing);
    }

    #[test]
    fn fresh_entries_excludes_expired() {
        let mut dir = LocalDirectory::new();
        dir.apply(birth(1, 0), SimTime::ZERO);
        assert_eq!(
            dir.fresh_entries(KeyId(1), SimTime::from_secs(100)).len(),
            1
        );
        assert_eq!(
            dir.fresh_entries(KeyId(1), SimTime::from_secs(301)).len(),
            0
        );
        assert!(dir.knows(KeyId(1)));
    }

    #[test]
    fn expire_collects_dead_replicas() {
        let mut dir = LocalDirectory::new();
        dir.apply(birth(1, 0), SimTime::ZERO);
        dir.apply(birth(2, 1), SimTime::from_secs(200));
        let dead = dir.expire(SimTime::from_secs(350));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].key, KeyId(1));
        assert!(dir.knows(KeyId(2)));
        assert!(!dir.knows(KeyId(1)));
    }

    #[test]
    fn drain_and_merge_move_ownership() {
        let mut m = LocalDirectory::new();
        m.apply(birth(1, 0), SimTime::ZERO);
        m.apply(birth(2, 0), SimTime::ZERO);
        let moved = m.drain_keys(|k| k == KeyId(1));
        assert_eq!(moved.len(), 1);
        assert!(!m.knows(KeyId(1)));

        let mut n = LocalDirectory::new();
        n.merge(moved.clone());
        n.merge(moved); // duplicate hand-over must not duplicate entries
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn merge_keeps_longer_lived_duplicate() {
        let mut dir = LocalDirectory::new();
        let short = IndexEntry::new(KeyId(1), ReplicaId(0), LIFE, SimTime::ZERO);
        let long = IndexEntry::new(KeyId(1), ReplicaId(0), LIFE, SimTime::from_secs(100));
        dir.merge(vec![short]);
        dir.merge(vec![long]);
        assert_eq!(dir.len(), 1);
        assert_eq!(
            dir.fresh_entries(KeyId(1), SimTime::from_secs(350)).len(),
            1
        );
    }
}
