//! Rule engine: file loading, pragma resolution, findings, `LINT.json`.
//!
//! The engine prepares every source file once (raw text, masked code
//! view, masked-with-tests-blanked view, pragmas), hands the whole
//! [`Workspace`] to each [`Rule`], then resolves the raw findings against
//! the pragmas: a finding whose rule has a matching
//! `// cup-lint: allow(rule, "reason")` on its own line or the line above
//! is *allowed* (kept in the report, with the reason); everything else is
//! *denied* and fails the run. A pragma without a reason is itself a
//! denied finding — suppressions must say why.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Pragma};

/// A source file prepared for linting.
pub struct PreparedFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// and what scopes and reports are keyed on).
    pub path: String,
    /// Original text, exactly as on disk.
    pub text: String,
    /// Code-only view: comments and literals blanked (same length/lines).
    pub masked: String,
    /// Code-only view with `#[cfg(test)]` bodies additionally blanked.
    pub masked_no_tests: String,
    /// Inline allow-pragmas, in line order.
    pub pragmas: Vec<Pragma>,
}

impl PreparedFile {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into();
        let text = text.into();
        let masked = lexer::mask(&text);
        let masked_no_tests = lexer::mask_cfg_test(&masked);
        let pragmas = lexer::pragmas(&text);
        PreparedFile {
            path,
            text,
            masked,
            masked_no_tests,
            pragmas,
        }
    }
}

/// The set of files a lint run sees.
pub struct Workspace {
    pub files: Vec<PreparedFile>,
}

impl Workspace {
    /// Loads every `.rs` file under the given roots (workspace-relative
    /// directories), recursively.
    pub fn load(root: &Path, trees: &[&str]) -> Workspace {
        let mut files = Vec::new();
        for tree in trees {
            let dir = root.join(tree);
            let mut paths = Vec::new();
            collect_rs(&dir, &mut paths);
            paths.sort();
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let text =
                    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
                files.push(PreparedFile::new(rel, text));
            }
        }
        Workspace { files }
    }

    /// Builds a workspace from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(p, t)| PreparedFile::new(*p, *t))
                .collect(),
        }
    }

    pub fn file(&self, path: &str) -> Option<&PreparedFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One rule violation (or suppressed violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when an allow-pragma covers this finding.
    pub allowed: Option<String>,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
            allowed: None,
        }
    }
}

/// A lint rule. Rules see the whole workspace so cross-file rules
/// (conformance-parity) and single-file token rules share one interface.
pub trait Rule {
    fn name(&self) -> &'static str;
    /// One-line description for reports and docs.
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// The result of a full engine run.
pub struct Report {
    pub files_scanned: usize,
    pub rules: Vec<(&'static str, &'static str)>,
    /// Every finding, allowed and denied, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by an allow-pragma: these fail the run.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Findings suppressed by a pragma (with its stated reason).
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_some())
    }

    /// Serializes the report as `LINT.json` (hand-rolled: this crate is
    /// std-only by design).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            s,
            "  \"denied\": {},",
            self.findings.iter().filter(|f| f.allowed.is_none()).count()
        );
        let _ = writeln!(
            s,
            "  \"allowed\": {},",
            self.findings.iter().filter(|f| f.allowed.is_some()).count()
        );
        s.push_str("  \"rules\": [\n");
        for (i, (name, desc)) in self.rules.iter().enumerate() {
            let comma = if i + 1 < self.rules.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": {}, \"description\": {}}}{comma}",
                json_str(name),
                json_str(desc)
            );
        }
        s.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let allowed = match &f.allowed {
                Some(reason) => json_str(reason),
                None => "null".to_string(),
            };
            let _ = writeln!(
                s,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
                 \"allowed\": {allowed}}}{comma}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable rendering for the CLI's text mode.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            match &f.allowed {
                Some(reason) => {
                    let _ = writeln!(
                        s,
                        "allowed  {}:{} [{}] {} (reason: {reason})",
                        f.path, f.line, f.rule, f.message
                    );
                }
                None => {
                    let _ = writeln!(
                        s,
                        "DENIED   {}:{} [{}] {}",
                        f.path, f.line, f.rule, f.message
                    );
                }
            }
        }
        let denied = self.denied().count();
        let _ = writeln!(
            s,
            "{} files scanned, {} rules, {} denied, {} allowed",
            self.files_scanned,
            self.rules.len(),
            denied,
            self.allowed().count()
        );
        s
    }
}

fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every rule over the workspace and resolves pragmas.
pub fn run(ws: &Workspace, rules: &[&dyn Rule]) -> Report {
    let mut findings = Vec::new();
    for rule in rules {
        rule.check(ws, &mut findings);
    }

    // Resolve pragmas: a pragma covers findings of its rule on its own
    // line or the line directly below (pragma-above-the-statement being
    // the common layout).
    for f in &mut findings {
        let Some(file) = ws.file(&f.path) else {
            continue;
        };
        f.allowed = file
            .pragmas
            .iter()
            .find(|p| {
                p.rule == f.rule
                    && if p.own_line {
                        p.line + 1 == f.line
                    } else {
                        p.line == f.line
                    }
            })
            .and_then(|p| p.reason.clone());
    }

    // A pragma with no reason is a violation in its own right, and a
    // denied one at that (the `pragma` pseudo-rule has no allow form).
    for file in &ws.files {
        for p in &file.pragmas {
            if p.reason.is_none() {
                findings.push(Finding::new(
                    "pragma",
                    &file.path,
                    p.line,
                    format!(
                        "allow({}) pragma has no reason — write \
                         `// cup-lint: allow({}, \"why this is sound\")`",
                        p.rule, p.rule
                    ),
                ));
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    Report {
        files_scanned: ws.files.len(),
        rules: rules.iter().map(|r| (r.name(), r.description())).collect(),
        findings,
    }
}

/// Iterates lines of a masked view with 1-based numbers — the shared
/// shape of every token rule.
pub fn masked_lines(
    file: &PreparedFile,
    include_tests: bool,
) -> impl Iterator<Item = (usize, &str)> {
    let view = if include_tests {
        &file.masked
    } else {
        &file.masked_no_tests
    };
    view.lines().enumerate().map(|(i, l)| (i + 1, l))
}
