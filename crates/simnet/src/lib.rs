//! Simulated CUP networks: the experiment harness.
//!
//! This crate glues the pieces together inside the discrete-event engine:
//! a structured overlay (`cup-overlay`) carries protocol messages between
//! [`cup_core::CupNode`]s with per-hop latency, while workload generators
//! (`cup-workload`) post queries and drive replica lifecycles. Every
//! message delivery is one overlay hop and is charged to the paper's cost
//! model (§3.3):
//!
//! * **miss cost** — hops of queries traveling upstream plus hops of
//!   first-time updates (query responses) traveling downstream;
//! * **overhead** — hops of refresh/delete/append updates plus clear-bit
//!   hops (clear-bits are conservatively *not* piggybacked, exactly like
//!   the paper's accounting);
//! * **total cost** = miss cost + overhead.
//!
//! A [`cup_core::justify::JustificationTracker`] (shared with the live
//! runtime) measures the fraction of pushed updates whose cost is
//! recovered by a subsequent query in the receiving node's virtual
//! subtree (§3.1), using the determinism of overlay routing to enumerate
//! virtual query paths exactly.
//!
//! [`experiment::run_experiment`] runs one configuration end to end;
//! [`sweeps`] contains the parameter sweeps behind every table and figure
//! of the paper — each grid point is an independent deterministic run, so
//! [`par::parallel_map`] farms them across worker threads with stable
//! output ordering; [`report`] renders them in the paper's format.

pub mod arena;
pub mod event;
pub mod experiment;
pub mod metrics;
pub mod network;
pub mod par;
pub mod report;
pub mod sweeps;

pub use cup_core::justify;

pub use arena::NodeArena;
pub use event::Ev;
pub use experiment::{run_experiment, ExperimentConfig};
pub use metrics::{ExperimentResult, NetMetrics};
pub use network::Network;
