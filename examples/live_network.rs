//! A live CUP network on the sharded worker pool — no simulator involved.
//!
//! The protocol core is a pure state machine, so the same code that runs
//! inside the discrete-event harness also runs across real OS threads:
//! the population is cut into contiguous shards, one worker thread per
//! shard, with per-shard mailboxes carrying the paper's query/update
//! channels across shard boundaries. This example starts a 512-node
//! network, registers replicas, posts queries from several nodes,
//! withdraws a replica, and shows the delete propagating — synchronizing
//! on `quiesce()` (the live "run until the event queue drains") instead
//! of sleeping.
//!
//! Run with: `cargo run --example live_network`

use cup::prelude::*;

fn main() {
    let mut rng = DetRng::seed_from(1);
    let net = LiveNetwork::start(OverlayKind::Can, 512, NodeConfig::cup_default(), &mut rng)
        .expect("failed to start network");
    println!(
        "started {} nodes on {} worker thread(s)",
        net.nodes().len(),
        net.workers()
    );

    // Two replicas announce themselves for key 7.
    let key = KeyId(7);
    net.replica_birth(key, ReplicaId(0), SimDuration::from_secs(120));
    net.replica_birth(key, ReplicaId(1), SimDuration::from_secs(120));
    net.quiesce();

    for &node in &net.nodes()[..5] {
        let entries = net.query(node, key).expect("query must be answered");
        println!(
            "query at {node}: {} replica(s) -> {:?}",
            entries.len(),
            entries.iter().map(|e| e.replica).collect::<Vec<_>>()
        );
    }
    let hops_before = net.hops();
    println!(
        "peer messages so far: {hops_before} ({} crossed shards)",
        net.cross_shard_messages()
    );

    // Re-query the same nodes: answers now come from nearby caches.
    for &node in &net.nodes()[..5] {
        net.query(node, key).expect("cached query must be answered");
    }
    println!(
        "5 repeat queries cost {} additional peer messages (cache hits)",
        net.hops() - hops_before
    );

    // Replica 0 stops serving; the delete propagates to the caches.
    net.replica_deletion(key, ReplicaId(0));
    net.quiesce();
    let entries = net.query(net.nodes()[2], key).expect("query after delete");
    println!(
        "after deletion, fresh answers carry {} replica(s): {:?}",
        entries.len(),
        entries.iter().map(|e| e.replica).collect::<Vec<_>>()
    );

    let nodes = net.shutdown();
    let total: u64 = nodes.iter().map(|n| n.stats.client_queries).sum();
    println!("shut down cleanly; {total} client queries were served");
}
