//! The sharded worker pool behind [`crate::LiveNetwork`].
//!
//! The node population is cut into shards by a [`crate::ShardMap`]
//! (balanced contiguous ranges by default, overlay-locality runs in
//! [`crate::ShardMapMode::OverlayAware`] mode); one OS worker thread
//! owns each shard's [`CupNode`]s. A message whose target lives on the
//! same shard is handled inline through a local FIFO (no queue
//! round-trip); a cross-shard message is *batched*: the sending worker
//! accumulates envelopes into per-destination `Vec` buffers during
//! dispatch and flushes whole batches into per-(sender, receiver)
//! swap-buffer slots at loop boundaries, so queue locking and the
//! atomic in-flight counter are paid once per batch, not once per
//! envelope. Control traffic from the runtime handle (client queries,
//! replica events, crash resets) goes through a small per-shard inbox
//! queue next to the slots.
//!
//! The in-flight counter still brackets every envelope from enqueue to
//! fully-dispatched — one `fetch_add(batch_len)` when a batch is
//! deposited, one `fetch_sub(consumed)` after the receiver dispatched a
//! round — which keeps the [`Shared::wait_quiescent`] barrier exact:
//! zero means every slot and inbox is drained *and* no worker is
//! mid-dispatch. Two orderings make that true under batching: a worker
//! flushes its outbound buffers *before* decrementing the counter for
//! the work it consumed (children are in flight before the parent
//! retires), and *before* parking (a parked worker never sits on a
//! partial batch, so the barrier cannot deadlock).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cup_core::clock::Clock;
use cup_core::justify::JustificationTracker;
use cup_core::obs::{Hist, TraceBuf, TraceEvent, TraceKind};
use cup_core::stats::NodeStats;
use cup_core::{
    Action, ClientId, CupNode, IndexEntry, Message, NodeConfig, ReplicaEvent, Requester, UpdateKind,
};
use cup_des::{KeyId, NodeId, ReplicaId, SimTime};
use cup_faults::{DropVerdict, FaultState};
use cup_overlay::{AnyOverlay, Overlay};

use crate::shard_map::ShardMap;

/// What a shard's inbox (or a transfer slot) can carry.
pub(crate) enum Envelope {
    /// A protocol message for `to` from peer `from`.
    Peer {
        /// Receiving node (owned by this shard).
        to: NodeId,
        /// Sending neighbor.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A local client query posted at `at`; the response goes to the
    /// registered client channel.
    Client {
        /// The posting node.
        at: NodeId,
        /// The key queried.
        key: KeyId,
        /// Who is waiting for the answer.
        client: ClientId,
    },
    /// A replica lifecycle message for `at`, the key's authority.
    Replica {
        /// The authority node.
        at: NodeId,
        /// Birth, refresh, or deletion.
        event: ReplicaEvent,
    },
    /// Fault plane: wipe `at`'s protocol state (a crash). The node comes
    /// back cold; its counters are folded into the crash-retained
    /// aggregate so network-wide statistics stay conserved.
    CrashReset {
        /// The crashing node (owned by this shard).
        at: NodeId,
    },
}

/// A shard's control inbox: the queue the runtime handle posts into
/// (client queries, replica events, crash resets), plus the flags that
/// park and wake the worker. Batched peer traffic does *not* travel
/// through here — it sits in [`TransferSlot`]s and only raises `dirty`.
pub(crate) struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
}

#[derive(Default)]
struct InboxState {
    /// Handle-posted control envelopes, FIFO.
    control: VecDeque<Envelope>,
    /// Some sender deposited a batch into one of this shard's transfer
    /// slots since the worker last scanned them. Set under this mutex
    /// *after* the deposit and cleared before the scan, so a deposit
    /// racing the scan re-arms the flag and the worker rescans instead
    /// of parking on unseen work (no missed wakeups).
    dirty: bool,
    /// The pool is stopping. Checked only when no work remains, so a
    /// worker always drains before exiting.
    shutdown: bool,
}

impl Inbox {
    fn new() -> Inbox {
        Inbox {
            state: Mutex::new(InboxState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, InboxState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push_control(&self, env: Envelope) {
        self.lock().control.push_back(env);
        self.cv.notify_one();
    }

    fn signal_dirty(&self) {
        self.lock().dirty = true;
        self.cv.notify_one();
    }

    pub(crate) fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }
}

/// One (sender shard → receiver shard) swap-buffer batch queue. The
/// sender deposits a whole `Vec` of envelopes per flush (a swap when the
/// slot is empty, an append when the receiver is behind); the receiver
/// swaps the slot out against an empty scratch vector. The two sides
/// ping-pong the same allocations, so steady-state transfer allocates
/// nothing.
struct TransferSlot {
    buf: Mutex<Vec<Envelope>>,
}

/// Marker for a failed overlay routing lookup: the message carrying the
/// lookup is dropped (and counted) instead of panicking the worker.
pub(crate) struct RoutingFailed;

/// Latency histograms shared across workers. Recorded under one mutex —
/// every site fires at most once per client answer or per batch flush,
/// orders of magnitude below the per-envelope hot path, and a histogram
/// is a multiset summary, so concurrent recording in any worker
/// interleaving yields byte-identical state to a serial run.
#[derive(Default)]
pub(crate) struct ObsState {
    /// µs from a client posting its query to the `RespondClient` answer
    /// (the live mirror of `NetMetrics::query_latency`).
    pub(crate) query_latency: Hist,
    /// µs a served dead replica had been globally deleted (the live
    /// mirror of `NetMetrics::stale_age_hist`).
    pub(crate) stale_age: Hist,
    /// Envelopes per non-empty cross-shard batch flush (live-only: the
    /// DES has no batching, so this never enters conformance outcomes).
    pub(crate) batch_sizes: Hist,
}

/// State shared between the runtime handle and every worker.
pub(crate) struct Shared {
    /// Per-shard control inboxes, indexed by shard.
    pub(crate) inboxes: Vec<Inbox>,
    /// The (sender, receiver) transfer slots, row-major by sender:
    /// `slots[sender * shards + receiver]`.
    slots: Vec<TransferSlot>,
    /// The frozen node→shard assignment (and its O(1) lookup tables).
    pub(crate) map: ShardMap,
    /// The static overlay all routing decisions come from.
    pub(crate) overlay: AnyOverlay,
    /// Client response channels, keyed by the id carried in the query.
    pub(crate) clients: Mutex<HashMap<ClientId, Sender<Vec<IndexEntry>>>>,
    /// Where "now" comes from: wall-mapped for real deployments,
    /// virtual (stepped at quiesce barriers) for deterministic runs —
    /// see [`cup_core::clock`].
    pub(crate) clock: Clock,
    /// Total peer messages delivered (the live equivalent of hop counts).
    pub(crate) hops: AtomicU64,
    /// Peer messages that crossed a shard boundary (subset of `hops`).
    /// Charged at flush time, one bump of `batch_len` per deposited
    /// batch, so the count still reflects individual envelopes while the
    /// atomic is paid per batch.
    pub(crate) cross_shard: AtomicU64,
    /// Batches deposited into transfer slots (non-empty flushes).
    pub(crate) batch_flushes: AtomicU64,
    /// Envelopes that traveled inside those batches. Equals
    /// `cross_shard` today (only peer traffic batches); kept separate so
    /// batch-size accounting survives if control traffic ever batches.
    pub(crate) batched_envelopes: AtomicU64,
    /// Messages dropped because the overlay failed to route them.
    pub(crate) routing_failures: AtomicU64,
    /// §3.1 justified-update accounting, shared with the DES through
    /// [`cup_core::justify`]. Gated by `justify_on` so the disabled path
    /// costs one relaxed load per event, not a lock.
    pub(crate) justify: Mutex<JustificationTracker>,
    /// Whether the justification tracker records events.
    pub(crate) justify_on: AtomicBool,
    /// The node configuration every node was built with (crash resets
    /// rebuild cold nodes from it).
    pub(crate) config: NodeConfig,
    /// The fault plane, shared with the DES through [`cup_faults`]:
    /// drops are decided here *before* a message enters a mailbox, so a
    /// dropped message never becomes in-flight work and `wait_quiescent`
    /// stays exact. Gated by `faults_on` so the fault-free path costs
    /// one relaxed load per send, not a lock.
    pub(crate) faults: Mutex<FaultState>,
    /// Whether the fault plane vets sends.
    pub(crate) faults_on: AtomicBool,
    /// Whether a fault plane was ever armed this run. Unlike `faults_on`
    /// (which tracks *current* activity and heals back to false), this
    /// latches: staleness ground truth keeps being recorded after the
    /// fault window closes, exactly like the DES's `faults.is_some()`.
    pub(crate) faults_armed: AtomicBool,
    /// Ground truth for staleness: globally deleted replicas and when
    /// they died (tracked only while a fault plane is armed — the live
    /// mirror of the DES network's map).
    pub(crate) dead_replicas: Mutex<HashMap<(KeyId, ReplicaId), SimTime>>,
    /// Client answers that served a globally dead replica.
    pub(crate) stale_answers: AtomicU64,
    /// Summed staleness age of those answers (µs since the deletion).
    pub(crate) stale_age_micros: AtomicU64,
    /// Counters retained from crashed nodes (the live mirror of the
    /// DES arena's departed-stats aggregate).
    pub(crate) crash_retained: Mutex<NodeStats>,
    /// Shared latency histograms (see [`ObsState`]).
    pub(crate) obs: Mutex<ObsState>,
    /// When each outstanding client query was posted, keyed by the raw
    /// client id — the live mirror of the DES network's `query_posted`
    /// map. Inserted handle-side at post time, consumed by the worker
    /// that answers (or dropped when a crashed node swallows the query,
    /// which the DES models by never inserting).
    pub(crate) query_posted: Mutex<HashMap<u64, SimTime>>,
    /// Whether structured event tracing is on. Acquire pairs with the
    /// SeqCst store in `enable_trace`, so a worker that observes the
    /// flag also observes the buffer installed before the flip; off
    /// costs one load per emission site.
    trace_on: AtomicBool,
    /// The trace ring buffer (present iff tracing was enabled).
    trace: Mutex<Option<TraceBuf>>,
    /// In-flight envelopes: incremented before an envelope (or a whole
    /// batch of them) enters an inbox or transfer slot, decremented
    /// after the receiving worker fully dispatched it — including its
    /// inline intra-shard cascade *and* the flush of any cross-shard
    /// children it produced (flush-before-decrement).
    pending: AtomicU64,
    /// Set when a worker unwinds mid-dispatch; `wait_quiescent` turns
    /// it into a panic instead of waiting forever on an in-flight
    /// counter that will never reach zero.
    panicked: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    pub(crate) fn new(
        map: ShardMap,
        overlay: AnyOverlay,
        config: NodeConfig,
        clock: Clock,
    ) -> Self {
        let shards = map.shards();
        Shared {
            inboxes: (0..shards).map(|_| Inbox::new()).collect(),
            slots: (0..shards * shards)
                .map(|_| TransferSlot {
                    buf: Mutex::new(Vec::new()),
                })
                .collect(),
            map,
            overlay,
            clients: Mutex::new(HashMap::new()),
            clock,
            hops: AtomicU64::new(0),
            cross_shard: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            batched_envelopes: AtomicU64::new(0),
            routing_failures: AtomicU64::new(0),
            justify: Mutex::new(JustificationTracker::new()),
            justify_on: AtomicBool::new(false),
            config,
            faults: Mutex::new(FaultState::new(0)),
            faults_on: AtomicBool::new(false),
            faults_armed: AtomicBool::new(false),
            dead_replicas: Mutex::new(HashMap::new()),
            stale_answers: AtomicU64::new(0),
            stale_age_micros: AtomicU64::new(0),
            crash_retained: Mutex::new(NodeStats::default()),
            obs: Mutex::new(ObsState::default()),
            query_posted: Mutex::new(HashMap::new()),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
            pending: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    /// The live clock's current time (wall-mapped or virtual).
    pub(crate) fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shard owning `node` — an O(1) [`ShardMap`] table lookup.
    pub(crate) fn shard_of(&self, node: NodeId) -> usize {
        self.map.shard_of(node)
    }

    /// Posts one control envelope to `shard`'s inbox, tracking it as
    /// in-flight work for the quiesce barrier. This is the handle-side
    /// path (scripted events, not the hot path), so it stays
    /// per-envelope.
    pub(crate) fn post(&self, shard: usize, env: Envelope) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.inboxes[shard].push_control(env);
    }

    /// The (sender → receiver) transfer slot's buffer.
    fn slot(&self, sender: usize, receiver: usize) -> &Mutex<Vec<Envelope>> {
        &self.slots[sender * self.map.shards() + receiver].buf
    }

    /// Deposits a whole outbound batch into the (sender → receiver)
    /// transfer slot and wakes the receiver. The in-flight counter is
    /// bumped by the full batch length *before* the deposit — one
    /// amortized `fetch_add` per flush — so the barrier can never
    /// observe a deposited envelope it has not counted. `buf` comes
    /// back empty but with capacity (the slot's previous vector when
    /// the swap path was taken).
    fn deposit(&self, sender: usize, receiver: usize, buf: &mut Vec<Envelope>) {
        let n = buf.len() as u64;
        self.pending.fetch_add(n, Ordering::SeqCst);
        // Cross-shard accounting: charged at flush, still counting
        // individual envelopes.
        self.cross_shard.fetch_add(n, Ordering::Relaxed);
        self.batched_envelopes.fetch_add(n, Ordering::Relaxed);
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        self.obs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .batch_sizes
            .record(n);
        {
            let mut slot = self
                .slot(sender, receiver)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if slot.is_empty() {
                std::mem::swap(&mut *slot, buf);
            } else {
                slot.append(buf);
            }
        }
        self.inboxes[receiver].signal_dirty();
    }

    /// Collects whatever the (sender → receiver) slot holds into `buf`
    /// (expected empty), leaving the slot's allocation behind for the
    /// sender to refill.
    fn collect(&self, sender: usize, receiver: usize, buf: &mut Vec<Envelope>) {
        let mut slot = self
            .slot(sender, receiver)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        std::mem::swap(&mut *slot, buf);
    }

    /// Marks `n` in-flight envelopes as fully dispatched, waking
    /// quiescing threads when the network drains. Callers must have
    /// flushed their outbound buffers first (flush-before-decrement).
    pub(crate) fn finish_n(&self, n: u64) {
        if n > 0 && self.pending.fetch_sub(n, Ordering::SeqCst) == n {
            let _idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.idle_cv.notify_all();
        }
    }

    /// Flags a worker unwind and wakes every quiescing thread so the
    /// failure surfaces instead of hanging.
    pub(crate) fn flag_panic(&self) {
        self.panicked.store(true, Ordering::SeqCst);
        let _idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.idle_cv.notify_all();
    }

    /// Blocks until every mailbox is drained and no worker is
    /// mid-dispatch. Exact, not heuristic: see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked — the counter can then never
    /// drain, and a loud failure beats a silent permanent hang.
    pub(crate) fn wait_quiescent(&self) {
        let mut idle = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            assert!(
                !self.panicked.load(Ordering::SeqCst),
                "a live-runtime worker panicked (see its message above); the network cannot quiesce"
            );
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            idle = self.idle_cv.wait(idle).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Next hop from `at` toward `key`'s authority (`None` at the
    /// authority itself). A failed lookup bumps the failure counter and
    /// tells the caller to drop the message — one bad route must not
    /// take a whole shard of nodes down.
    pub(crate) fn upstream_of(
        &self,
        at: NodeId,
        key: KeyId,
    ) -> Result<Option<NodeId>, RoutingFailed> {
        if self.overlay.authority(key) == at {
            return Ok(None);
        }
        match self.overlay.next_hop(at, key) {
            Ok(hop) => Ok(hop),
            Err(_) => {
                self.routing_failures.fetch_add(1, Ordering::Relaxed);
                Err(RoutingFailed)
            }
        }
    }

    /// Whether justification accounting is live. Acquire pairs with the
    /// SeqCst store in `track_justification`: a worker that observes the
    /// flag also observes the tracker state installed before the flip.
    pub(crate) fn justify_enabled(&self) -> bool {
        self.justify_on.load(Ordering::Acquire)
    }

    /// Whether the fault plane vets sends. Acquire pairs with the SeqCst
    /// store in `enable_faults`, so a worker that sees the flag also
    /// sees the fault state it guards.
    pub(crate) fn faults_enabled(&self) -> bool {
        self.faults_on.load(Ordering::Acquire)
    }

    /// Sender-side fault verdict for one message (call exactly once per
    /// send, before any enqueue — see [`cup_faults::FaultState::roll`]).
    pub(crate) fn fault_roll(&self, from: NodeId, to: NodeId) -> DropVerdict {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .roll(from, to)
    }

    /// Sender-side behavior-fault pass over one outgoing message (call
    /// before [`Shared::fault_roll`], exactly like the DES applies
    /// [`FaultState::behavior_send`] before its loss roll). Returns
    /// `false` when the sender's behavior fault suppressed the message.
    pub(crate) fn behavior_send(&self, from: NodeId, msg: &mut Message) -> bool {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .behavior_send(from, msg)
    }

    /// Receiver-side behavior-fault pass (after the hop was charged,
    /// before the protocol handler — the DES interception point).
    /// Returns `false` when the receiver's behavior fault swallowed it.
    pub(crate) fn behavior_recv(&self, to: NodeId, msg: &Message) -> bool {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .behavior_recv(to, msg)
    }

    /// Whether staleness ground truth is being recorded (a fault plane
    /// was armed at some point this run). Acquire for the same reason as
    /// [`Shared::faults_enabled`]: the flag guards the dead-replica map.
    pub(crate) fn faults_armed(&self) -> bool {
        self.faults_armed.load(Ordering::Acquire)
    }

    /// Records a replica as globally dead from `now` (first death wins,
    /// matching the DES's `or_insert`).
    pub(crate) fn note_dead_replica(&self, key: KeyId, replica: ReplicaId, now: SimTime) {
        self.dead_replicas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry((key, replica))
            .or_insert(now);
    }

    /// Staleness check on one client answer: if any served entry names a
    /// globally dead replica, the answer is poisoned — count it and its
    /// age, byte-for-byte like the DES's `RespondClient` accounting.
    pub(crate) fn note_client_answer(&self, entries: &[IndexEntry], now: SimTime) {
        let dead = self.dead_replicas.lock().unwrap_or_else(|e| e.into_inner());
        if dead.is_empty() {
            return;
        }
        let stale_since = entries
            .iter()
            .filter_map(|e| dead.get(&(e.key, e.replica)))
            .min();
        if let Some(&died) = stale_since {
            let age = now.saturating_since(died).as_micros();
            self.stale_answers.fetch_add(1, Ordering::Relaxed);
            self.stale_age_micros.fetch_add(age, Ordering::Relaxed);
            self.obs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .stale_age
                .record(age);
        }
    }

    /// Installs a fresh trace ring buffer of `cap` events and turns
    /// emission on (off by default; see [`Shared::trace_event`]).
    pub(crate) fn enable_trace(&self, cap: usize) {
        *self.trace.lock().unwrap_or_else(|e| e.into_inner()) = Some(TraceBuf::new(cap));
        self.trace_on.store(true, Ordering::SeqCst);
    }

    /// Detaches the trace buffer, turning emission back off.
    pub(crate) fn take_trace(&self) -> Option<TraceBuf> {
        self.trace_on.store(false, Ordering::SeqCst);
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Whether trace emission is on (the zero-cost-when-disabled gate:
    /// one Acquire load per emission site, no lock).
    pub(crate) fn trace_enabled(&self) -> bool {
        self.trace_on.load(Ordering::Acquire)
    }

    /// Records one trace event. Callers gate on
    /// [`Shared::trace_enabled`] first, so the disabled path never
    /// reaches this lock.
    pub(crate) fn trace_event(
        &self,
        t: SimTime,
        node: NodeId,
        kind: TraceKind,
        key: KeyId,
        detail: u64,
    ) {
        if let Some(buf) = self
            .trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            buf.record(TraceEvent {
                t,
                node,
                kind,
                key,
                detail,
            });
        }
    }

    /// Remembers when `client`'s query was posted (handle-side, at post
    /// time, so wall-clock latency includes queue wait).
    pub(crate) fn note_posted_query(&self, client: ClientId, now: SimTime) {
        self.query_posted
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(client.0, now);
    }

    /// Drops `client`'s posted-time record without a sample (a crashed
    /// node swallowed the query — the DES never inserts one there).
    pub(crate) fn forget_posted_query(&self, client: ClientId) {
        self.query_posted
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&client.0);
    }

    /// Records `client`'s answer latency, consuming its posted-time
    /// record — one sample per answered query, exactly like the DES's
    /// `RespondClient` accounting.
    pub(crate) fn record_query_latency(&self, client: ClientId, now: SimTime) {
        let t0 = self
            .query_posted
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&client.0);
        if let Some(t0) = t0 {
            self.obs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .query_latency
                .record(now.saturating_since(t0).as_micros());
        }
    }

    /// Returns `true` if the fault plane currently marks `node` crashed.
    pub(crate) fn fault_is_crashed(&self, node: NodeId) -> bool {
        self.faults_enabled()
            && self
                .faults
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_crashed(node)
    }

    /// Runs `f` on the locked fault plane (counter bumps).
    pub(crate) fn with_faults(&self, f: impl FnOnce(&mut FaultState)) {
        f(&mut self.faults.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// Records a delivered maintenance update with the shared tracker.
    pub(crate) fn justify_update(&self, to: NodeId, key: KeyId, now: SimTime, closes: SimTime) {
        self.justify
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_update_delivered(to, key, now, closes);
    }

    /// Records a posted client query's virtual path with the tracker
    /// (mirrors the DES harness: one `on_query` per posted query, never
    /// per forwarded hop).
    pub(crate) fn justify_query(&self, at: NodeId, key: KeyId, now: SimTime) {
        if let Ok(path) = self.overlay.route(at, key) {
            self.justify
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .on_query(key, now, &path);
        }
    }

    /// Delivers a query answer to a waiting client, if it still waits.
    /// A poisoned registry is recovered, not propagated: the map only
    /// holds channel senders, so it is valid after any panic, and a
    /// worker must keep dispatching (the barrier reports the panic).
    fn respond_client(&self, client: ClientId, entries: Vec<IndexEntry>) {
        if let Some(tx) = self
            .clients
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&client)
        {
            let _ = tx.send(entries);
        }
    }
}

/// One worker thread's state: its shard of nodes plus reusable buffers.
struct Worker {
    shard: usize,
    /// This shard's nodes, indexed by [`ShardMap::slot_of`].
    nodes: Vec<CupNode>,
    shared: Arc<Shared>,
    /// Intra-shard messages handled inline, FIFO (to, from, msg).
    local: VecDeque<(NodeId, NodeId, Message)>,
    /// Reusable action buffer for the allocation-free `_into` handlers.
    actions: Vec<Action>,
    /// Control envelopes swapped out of the inbox for this round.
    control: VecDeque<Envelope>,
    /// Scratch vector batches are collected into (ping-pongs allocations
    /// with the transfer slots).
    incoming: Vec<Envelope>,
    /// Per-destination outbound buffers, flushed at loop boundaries.
    outbox: Vec<Vec<Envelope>>,
}

/// Flags the unwind of a worker that panics mid-dispatch, so quiescing
/// threads fail loudly instead of waiting forever ([`Shared::flag_panic`]);
/// `shutdown()`'s join then surfaces the original panic payload.
struct PanicGuard(Arc<Shared>);

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.flag_panic();
        }
    }
}

/// Control envelopes a worker dispatches per round before it re-scans
/// its transfer slots and flushes — the dispatch quantum. Bounding the
/// round keeps the protocol's *feedback* latency low: a replica-event
/// storm posted to an authority's shard would otherwise be consumed as
/// one giant round, pumping every update downstream before a single
/// cross-shard clear-bit (a cut-off policy's unsubscribe, §3.4) gets
/// applied, defeating the very mechanism that collapses unjustified
/// propagation. Chunking lets clear-bits prune the interest tree while
/// the storm is still being injected — the same behavior a serial run
/// gets for free from its inline FIFO — and pipelines output to the
/// other shards instead of sitting on it until the storm ends.
const CONTROL_QUANTUM: usize = 64;

/// The worker thread body: rounds of (park until work → pull in control
/// envelopes and batch slots → dispatch incoming, then one control
/// quantum → flush outbound batches → retire the consumed count) until
/// shutdown, then hand the shard's final node states back.
pub(crate) fn worker_main(shard: usize, nodes: Vec<CupNode>, shared: Arc<Shared>) -> Vec<CupNode> {
    let guard = PanicGuard(Arc::clone(&shared));
    let shards = shared.map.shards();
    let mut worker = Worker {
        shard,
        nodes,
        shared: Arc::clone(&shared),
        local: VecDeque::new(),
        actions: Vec::new(),
        control: VecDeque::new(),
        incoming: Vec::new(),
        outbox: (0..shards).map(|_| Vec::new()).collect(),
    };
    loop {
        let stop = {
            let inbox = &shared.inboxes[shard];
            let mut st = inbox.lock();
            loop {
                if !st.control.is_empty() || st.dirty {
                    // Fresh control queues behind any quantum remainder
                    // from the last round, preserving FIFO order.
                    worker.control.append(&mut st.control);
                    st.dirty = false;
                    break false;
                }
                if !worker.control.is_empty() {
                    // A quantum remainder is still in hand: keep
                    // working, never park on unconsumed envelopes.
                    break false;
                }
                if st.shutdown {
                    break true;
                }
                // Flush-before-park already happened (end of the last
                // round), so waiting here cannot strand a partial batch.
                st = inbox.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if stop {
            break;
        }
        let consumed = worker.drain_round();
        // Flush-before-decrement: cross-shard children enter the
        // in-flight count before their parents retire, so the barrier
        // can never observe zero while this round's output is in hand.
        worker.flush();
        shared.finish_n(consumed);
    }
    drop(guard);
    worker.nodes
}

impl Worker {
    fn node_mut(&mut self, id: NodeId) -> &mut CupNode {
        &mut self.nodes[self.shared.map.slot_of(id)]
    }

    fn owns(&self, id: NodeId) -> bool {
        self.shared.shard_of(id) == self.shard
    }

    /// Dispatches one round's work: every sender's transfer slot first
    /// — peer traffic carries the protocol's feedback (clear-bits,
    /// query answers), so it is applied before new control work is
    /// started — then at most [`CONTROL_QUANTUM`] control envelopes;
    /// any remainder stays in hand for the next round. Returns the
    /// number of in-flight envelopes consumed.
    fn drain_round(&mut self) -> u64 {
        let mut consumed = 0u64;
        let shards = self.outbox.len();
        for sender in 0..shards {
            if sender == self.shard {
                continue;
            }
            let mut batch = std::mem::take(&mut self.incoming);
            self.shared.collect(sender, self.shard, &mut batch);
            for env in batch.drain(..) {
                self.dispatch(env);
                consumed += 1;
            }
            self.incoming = batch;
        }
        for _ in 0..CONTROL_QUANTUM {
            let Some(env) = self.control.pop_front() else {
                break;
            };
            self.dispatch(env);
            consumed += 1;
        }
        consumed
    }

    /// Flushes the round's accumulated output: the per-destination
    /// outbound batches into their transfer slots. Runs before
    /// `finish_n` and before parking — see the module docs for why both
    /// orderings are load-bearing.
    fn flush(&mut self) {
        for dest in 0..self.outbox.len() {
            if self.outbox[dest].is_empty() {
                continue;
            }
            let mut buf = std::mem::take(&mut self.outbox[dest]);
            self.shared.deposit(self.shard, dest, &mut buf);
            self.outbox[dest] = buf;
        }
    }

    /// Handles one envelope plus the whole intra-shard cascade it sets
    /// off. Cross-shard children are only *buffered* here; the caller
    /// flushes them at the round boundary.
    fn dispatch(&mut self, env: Envelope) {
        match env {
            Envelope::CrashReset { at } => {
                let idx = self.shared.map.slot_of(at);
                let cold = CupNode::new(at, self.shared.config);
                let dead = std::mem::replace(&mut self.nodes[idx], cold);
                self.shared
                    .crash_retained
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .merge(&dead.stats);
            }
            Envelope::Peer { to, from, msg } => self.handle_peer(to, from, msg),
            Envelope::Client { at, key, client } => {
                // A crashed node accepts no connections: the query is
                // swallowed exactly like the DES harness swallows it
                // (the waiting client observes no answer).
                if self.shared.fault_is_crashed(at) {
                    self.shared.with_faults(FaultState::note_query_at_crashed);
                    self.shared.forget_posted_query(client);
                    return;
                }
                let now = self.shared.now();
                if self.shared.trace_enabled() {
                    self.shared
                        .trace_event(now, at, TraceKind::ClientQuery, key, client.0);
                }
                match self.shared.upstream_of(at, key) {
                    Ok(upstream) => {
                        // Justification bookkeeping first, exactly like
                        // the DES harness: the posted query covers every
                        // node on its virtual path (§3.1).
                        if self.shared.justify_enabled() {
                            self.shared.justify_query(at, key, now);
                        }
                        let mut actions = std::mem::take(&mut self.actions);
                        self.node_mut(at).handle_query_into(
                            now,
                            key,
                            Requester::Client(client),
                            upstream,
                            &mut actions,
                        );
                        self.deliver(at, &mut actions);
                        self.actions = actions;
                    }
                    // The query is dead on arrival; answer the client
                    // empty now rather than letting it stew until its
                    // timeout (the counter records the failure).
                    Err(RoutingFailed) => self.shared.respond_client(client, Vec::new()),
                }
            }
            Envelope::Replica { at, event } => {
                // Ground truth for the staleness metric, recorded before
                // the crashed-authority gate like the DES: the replica
                // is globally dead from this instant whether or not its
                // deletion reaches (or survives at) the authority.
                if self.shared.faults_armed() {
                    if let ReplicaEvent::Deletion { key, replica } = event {
                        self.shared
                            .note_dead_replica(key, replica, self.shared.now());
                    }
                }
                // A crashed authority hears nothing from its replicas.
                if self.shared.fault_is_crashed(at) {
                    self.shared.with_faults(FaultState::note_replica_at_crashed);
                    return;
                }
                let now = self.shared.now();
                if self.shared.trace_enabled() {
                    let (kind, key, replica) = match event {
                        ReplicaEvent::Birth { key, replica, .. } => {
                            (TraceKind::ReplicaBirth, key, replica)
                        }
                        ReplicaEvent::Refresh { key, replica, .. } => {
                            (TraceKind::ReplicaRefresh, key, replica)
                        }
                        ReplicaEvent::Deletion { key, replica } => {
                            (TraceKind::ReplicaDeletion, key, replica)
                        }
                    };
                    self.shared
                        .trace_event(now, at, kind, key, replica.0 as u64);
                }
                let mut actions = std::mem::take(&mut self.actions);
                self.node_mut(at)
                    .handle_replica_event_into(now, event, &mut actions);
                self.deliver(at, &mut actions);
                self.actions = actions;
            }
        }
        while let Some((to, from, msg)) = self.local.pop_front() {
            self.handle_peer(to, from, msg);
        }
    }

    /// Runs one peer message through its target node. A message whose
    /// routing lookup fails is dropped (counted in `routing_failures`).
    fn handle_peer(&mut self, to: NodeId, from: NodeId, msg: Message) {
        // In flight when its receiver crashed (the sender's verdict
        // predates the crash): a crashed node processes nothing.
        if self.shared.fault_is_crashed(to) {
            self.shared
                .with_faults(|f| f.counters.dropped_to_crashed += 1);
            return;
        }
        // Byzantine receivers: a stale-serve node swallows inbound
        // deletions and audit repairs after the hop was paid (the hop
        // was counted at the sender in `deliver`).
        if self.shared.faults_enabled() && !self.shared.behavior_recv(to, &msg) {
            return;
        }
        let now = self.shared.now();
        // Trace only messages that actually reach a handler — the same
        // gate the DES applies, so the two multisets match.
        if self.shared.trace_enabled() {
            let (kind, key) = match &msg {
                Message::Query { key } => (TraceKind::Query, *key),
                Message::Update(u) => (
                    match u.kind {
                        UpdateKind::FirstTime => TraceKind::UpdateFirstTime,
                        UpdateKind::Refresh => TraceKind::UpdateRefresh,
                        UpdateKind::Delete => TraceKind::UpdateDelete,
                        UpdateKind::Append => TraceKind::UpdateAppend,
                    },
                    u.key,
                ),
                Message::ClearBit { key } => (TraceKind::ClearBit, *key),
                Message::AuditProbe { key, .. } => (TraceKind::AuditProbe, *key),
                Message::AuditReply { key, .. } => (TraceKind::AuditReply, *key),
            };
            self.shared.trace_event(now, to, kind, key, from.0 as u64);
        }
        let mut actions = std::mem::take(&mut self.actions);
        match msg {
            Message::Query { key } => {
                if let Ok(upstream) = self.shared.upstream_of(to, key) {
                    self.node_mut(to).handle_query_into(
                        now,
                        key,
                        Requester::Neighbor(from),
                        upstream,
                        &mut actions,
                    );
                }
            }
            Message::Update(update) => {
                if update.kind != UpdateKind::FirstTime && self.shared.justify_enabled() {
                    self.shared
                        .justify_update(to, update.key, now, update.window_end);
                }
                self.node_mut(to)
                    .handle_update_into(now, from, update, &mut actions);
            }
            Message::ClearBit { key } => {
                if let Ok(upstream) = self.shared.upstream_of(to, key) {
                    self.node_mut(to)
                        .handle_clear_bit_into(now, key, from, upstream, &mut actions);
                }
            }
            Message::AuditProbe { key, round } => {
                self.node_mut(to)
                    .handle_audit_probe_into(now, key, round, from, &mut actions);
            }
            Message::AuditReply {
                key,
                round,
                entries,
                retired,
            } => {
                self.node_mut(to)
                    .handle_audit_reply(now, key, round, &entries, &retired);
            }
        }
        self.deliver(to, &mut actions);
        self.actions = actions;
    }

    /// Turns `from`'s protocol actions into traffic: intra-shard sends
    /// join the inline FIFO, cross-shard sends join the per-destination
    /// outbound buffers (flushed at the round boundary), client
    /// responses go to their waiting channel.
    fn deliver(&mut self, from: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, mut msg } => {
                    // Decide-before-enqueue: a fault-plane drop never
                    // enters a buffer (the quiesce barrier stays exact)
                    // and never counts as a hop — exactly like the DES,
                    // which never schedules the delivery. Behavior
                    // faults run first: a suppressed (or rewritten) send
                    // never advances the per-link loss counter, in
                    // either runtime. Verdicts are rolled here at
                    // dispatch time, in send order, so batching does not
                    // move them.
                    if self.shared.faults_enabled() {
                        if !self.shared.behavior_send(from, &mut msg) {
                            continue;
                        }
                        if self.shared.fault_roll(from, to) != DropVerdict::Deliver {
                            continue;
                        }
                    }
                    // Hops stay per-envelope (a relaxed add, not the
                    // SeqCst barrier counter): a client answer can
                    // unblock its caller mid-round, and callers may read
                    // `hops()` immediately — a round-deferred count
                    // would lag behind answers derived from it.
                    self.shared.hops.fetch_add(1, Ordering::Relaxed);
                    if self.owns(to) {
                        self.local.push_back((to, from, msg));
                    } else {
                        let shard = self.shared.shard_of(to);
                        self.outbox[shard].push(Envelope::Peer { to, from, msg });
                    }
                }
                Action::RespondClient {
                    client,
                    key,
                    entries,
                } => {
                    let now = self.shared.now();
                    self.shared.record_query_latency(client, now);
                    if self.shared.trace_enabled() {
                        self.shared.trace_event(
                            now,
                            from,
                            TraceKind::Respond,
                            key,
                            entries.len() as u64,
                        );
                    }
                    if self.shared.faults_armed() {
                        self.shared.note_client_answer(&entries, now);
                    }
                    self.shared.respond_client(client, entries);
                }
            }
        }
    }
}
