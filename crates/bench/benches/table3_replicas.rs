//! Table 3: naive versus replica-independent cut-off across replica
//! counts.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::Scale;
use cup_simnet::{report, sweeps};

fn table3(c: &mut Criterion) {
    let scale = Scale::Bench;
    let base = scale.base_scenario();
    let counts = scale.replica_counts();

    let rows = sweeps::replica_sweep(&base, &counts);
    println!("\n{}", report::render_replica_table(&rows));

    let mut group = c.benchmark_group("table3_replicas");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| sweeps::replica_sweep(&base, &counts))
    });
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
