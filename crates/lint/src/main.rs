//! `cup-lint` CLI: run the determinism lint pass over the workspace.
//!
//! ```text
//! cargo run -p cup-lint                      # human-readable report
//! cargo run -p cup-lint -- --format json     # LINT.json to stdout + disk
//! cargo run -p cup-lint -- --out report.json # choose the report path
//! ```
//!
//! Exit status is non-zero when any finding is *denied* (no matching
//! `// cup-lint: allow(rule, "reason")` pragma), which is what fails
//! the CI `lint` job.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format_json = false;
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("--format expects `json` or `text`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--out" => {
                let Some(p) = args.next() else {
                    eprintln!("--out expects a path");
                    return ExitCode::from(2);
                };
                out_path = Some(p);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: cup-lint [--format json|text] [--out LINT.json]");
                return ExitCode::from(2);
            }
        }
    }

    let report = cup_lint::run_workspace();
    let json = report.to_json();

    // JSON mode always leaves LINT.json on disk (the CI artifact);
    // --out overrides the location in either mode.
    let out_path = out_path.or_else(|| format_json.then(|| "LINT.json".to_string()));
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if format_json {
        print!("{json}");
    } else {
        print!("{}", report.to_text());
    }

    let denied = report.denied().count();
    if denied > 0 {
        eprintln!("cup-lint: {denied} denied finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
