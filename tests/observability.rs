//! The observability plane across both runtimes: trace equality and
//! histogram agreement, end to end.
//!
//! The conformance suite (`tests/conformance.rs`) already pins the
//! histogram *state* byte-for-byte. This suite exercises the structured
//! event-trace layer on top of it:
//!
//! * the DES and the live runtime emit the **same event multiset** for
//!   the same scripted scenario — after canonical sorting, `trace_diff`
//!   finds no divergence and the JSONL exports are identical bytes;
//! * a perturbed run (different `script_seed`) is *detectably*
//!   different — `trace_diff` reports the first diverging event rather
//!   than a vague checksum mismatch;
//! * tracing is off by default and capturing it does not change the
//!   protocol outcome (observer effect check);
//! * the ring buffer keeps the tail and counts what it dropped.

use cup::prelude::*;
use cup_testkit::conformance::{
    run_live, run_live_traced, run_sim, run_sim_traced, ConformanceSpec,
};

/// Plenty for the small scenarios: every event fits, nothing dropped.
const TRACE_CAP: usize = 1 << 16;

fn assert_traces_agree(spec: ConformanceSpec) {
    let label = format!("{} x {} nodes", spec.kind, spec.nodes);
    let (sim_out, _, sim_trace) = run_sim_traced(&spec, TRACE_CAP);
    let (live_out, _, live_trace) = run_live_traced(&spec, TRACE_CAP);

    assert_eq!(sim_trace.dropped(), 0, "{label}: sim trace overflowed");
    assert_eq!(live_trace.dropped(), 0, "{label}: live trace overflowed");
    assert!(!sim_trace.is_empty(), "{label}: sim trace captured nothing");
    assert_eq!(
        sim_trace.len(),
        live_trace.len(),
        "{label}: event counts diverged"
    );

    // Canonical order: the live runtime records events in worker-arrival
    // order, the DES in delivery order; `trace_diff` sorts both by
    // (t, node, kind, key, detail), which collapses them to the same
    // sequence iff the multisets match.
    assert_eq!(
        trace_diff(&sim_trace, &live_trace),
        None,
        "{label}: traces diverged"
    );

    // The JSONL exports are byte-identical, so `diff` on the artifact
    // files is a meaningful CI check.
    assert_eq!(
        sim_trace.export_jsonl(),
        live_trace.export_jsonl(),
        "{label}: JSONL exports diverged"
    );

    // Observer effect: tracing must not change the outcome.
    let (sim_plain, _) = run_sim(&spec);
    let (live_plain, _) = run_live(&spec);
    assert_eq!(sim_out, sim_plain, "{label}: tracing changed the sim run");
    assert_eq!(
        live_out, live_plain,
        "{label}: tracing changed the live run"
    );
}

#[test]
fn traces_agree_on_can() {
    assert_traces_agree(ConformanceSpec::small(OverlayKind::Can));
}

#[test]
fn traces_agree_on_chord() {
    assert_traces_agree(ConformanceSpec::small(OverlayKind::Chord));
}

#[test]
fn traces_agree_under_faults_on_chord() {
    assert_traces_agree(ConformanceSpec::faulty(OverlayKind::Chord));
}

/// A perturbed workload produces a *located* divergence: `trace_diff`
/// names the first event where the runs part ways instead of merely
/// failing an aggregate comparison.
#[test]
fn trace_diff_pinpoints_a_perturbed_run() {
    let base = ConformanceSpec::small(OverlayKind::Can);
    let perturbed = ConformanceSpec {
        script_seed: base.script_seed + 1,
        ..base
    };
    let (_, _, a) = run_sim_traced(&base, TRACE_CAP);
    let (_, _, b) = run_sim_traced(&perturbed, TRACE_CAP);
    let div = trace_diff(&a, &b).expect("perturbing the script seed must move some event");
    // The divergence names a real position in at least one trace, and
    // the events there genuinely differ.
    let (sa, sb) = (a.sorted(), b.sorted());
    assert!(div.index <= sa.len() && div.index <= sb.len());
    assert_ne!(
        sa.get(div.index),
        sb.get(div.index),
        "reported divergence must hold at the reported index"
    );
    assert_eq!(div.left, sa.get(div.index).copied());
    assert_eq!(div.right, sb.get(div.index).copied());
}

/// Identical runs diff clean even when compared against themselves
/// re-run from scratch: the trace is a pure function of the spec.
#[test]
fn traces_are_reproducible_across_reruns() {
    let spec = ConformanceSpec::small(OverlayKind::Chord);
    let (_, _, a) = run_sim_traced(&spec, TRACE_CAP);
    let (_, _, b) = run_sim_traced(&spec, TRACE_CAP);
    assert_eq!(a.sorted(), b.sorted());
    let (_, _, c) = run_live_traced(&spec, TRACE_CAP);
    let (_, _, d) = run_live_traced(&spec, TRACE_CAP);
    assert_eq!(c.sorted(), d.sorted());
}

/// The ring buffer under pressure: a tiny capacity keeps the most
/// recent events and reports exactly how many fell off the front.
#[test]
fn tiny_trace_capacity_keeps_the_tail() {
    let spec = ConformanceSpec::small(OverlayKind::Can);
    let (_, _, full) = run_sim_traced(&spec, TRACE_CAP);
    let cap = 32;
    let (_, _, small) = run_sim_traced(&spec, cap);
    assert_eq!(small.len(), cap, "ring must be full");
    assert_eq!(
        small.dropped() + cap as u64,
        full.len() as u64,
        "dropped + kept must account for every event"
    );
    // The kept events are the *last* `cap` in emission order — their
    // multiset is a subset of the full trace's.
    let full_sorted = full.sorted();
    for ev in small.sorted() {
        assert!(
            full_sorted.binary_search(&ev).is_ok(),
            "tail event missing from the full trace: {ev:?}"
        );
    }
}

/// Latency histograms carry real (non-degenerate) samples once the
/// clock advances between post and respond: the simnet experiment path
/// records wall-clock-equivalent virtual latencies.
#[test]
fn experiment_latency_histograms_are_non_degenerate() {
    let scenario = Scenario {
        nodes: 64,
        keys: 4,
        query_rate: 10.0,
        query_start: SimTime::from_secs(300),
        query_end: SimTime::from_secs(800),
        sim_end: SimTime::from_secs(1_500),
        ..Scenario::default()
    };
    let r = run_experiment(&ExperimentConfig::cup(scenario));
    let hist = &r.net.query_latency;
    assert!(hist.count() > 0, "no latency samples recorded");
    // Cache hits answer locally in zero virtual time, so the *median*
    // may be zero; the tail must not be — first-time misses traverse
    // overlay hops under the latency model.
    assert!(
        hist.quantile(1000) > 0,
        "max query latency must be positive"
    );
    let p50 = r.query_latency_us(500);
    let p99 = r.query_latency_us(990);
    assert!(p99 >= p50, "p99 must dominate p50 ({p99} < {p50})");
}
