//! The overlay abstraction CUP runs on.

use cup_des::{KeyId, NodeId};

/// Errors returned by overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The referenced node is not alive in the overlay.
    NodeNotAlive(NodeId),
    /// Routing failed to make progress (should not happen on well-formed
    /// topologies; surfaced instead of looping forever).
    RoutingStuck {
        /// Where routing stalled.
        at: NodeId,
        /// The key being routed.
        key: KeyId,
    },
    /// A join could not find a splittable zone (coordinate space exhausted).
    SpaceExhausted,
    /// The overlay would become empty or the operation needs more nodes.
    TooFewNodes,
}

impl core::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OverlayError::NodeNotAlive(n) => write!(f, "node {n} is not alive"),
            OverlayError::RoutingStuck { at, key } => {
                write!(f, "routing for {key} stuck at {at}")
            }
            OverlayError::SpaceExhausted => write!(f, "coordinate space exhausted"),
            OverlayError::TooFewNodes => write!(f, "operation requires more nodes"),
        }
    }
}

impl std::error::Error for OverlayError {}

/// A structured overlay with deterministic greedy routing.
///
/// Implementations must guarantee that repeatedly following
/// [`Overlay::next_hop`] from any live node reaches the key's authority in
/// a bounded number of hops, and that `next_hop` is a pure function of the
/// current topology (same topology + same arguments ⇒ same answer). CUP
/// relies on this determinism: it is what makes the *virtual query tree*
/// V(A, K) of the paper's cost model well defined.
pub trait Overlay {
    /// Number of live nodes.
    fn len(&self) -> usize;

    /// Returns `true` if the overlay has no live nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `node` is currently part of the overlay.
    fn is_alive(&self, node: NodeId) -> bool;

    /// All live node ids, in ascending order.
    fn nodes(&self) -> Vec<NodeId>;

    /// The authority node owning `key`.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is empty.
    fn authority(&self, key: KeyId) -> NodeId;

    /// The next hop from `from` toward the authority of `key`, or `None`
    /// if `from` is itself the authority.
    fn next_hop(&self, from: NodeId, key: KeyId) -> Result<Option<NodeId>, OverlayError>;

    /// The current neighbors of `node`.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// The full virtual path from `from` to the authority of `key`
    /// (inclusive of both endpoints).
    ///
    /// This is the path a query would take if no intermediate cache
    /// answered it, and is used by the cost model to attribute queries to
    /// virtual subtrees.
    fn route(&self, from: NodeId, key: KeyId) -> Result<Vec<NodeId>, OverlayError> {
        let mut path = vec![from];
        let mut at = from;
        // Any simple path visits each node at most once.
        let bound = self.len() + 1;
        for _ in 0..bound {
            match self.next_hop(at, key)? {
                None => return Ok(path),
                Some(next) => {
                    at = next;
                    path.push(next);
                }
            }
        }
        Err(OverlayError::RoutingStuck { at, key })
    }

    /// Number of hops from `from` to the authority of `key`.
    fn distance(&self, from: NodeId, key: KeyId) -> Result<usize, OverlayError> {
        Ok(self.route(from, key)?.len() - 1)
    }
}
