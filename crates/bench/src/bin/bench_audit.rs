//! Emits `BENCH_audit.json`: the Byzantine attacker-count × audit
//! sweep — stale-serve attackers against CUP with and without the
//! rate-limited sampled cache audit.
//!
//! Usage:
//!
//! ```text
//! bench_audit [--scale bench|small|paper] [--attackers 0,2,8]
//!             [--interval SECS] [--mean-life SECS] [--workers N]
//!             [--seed 42] [--out BENCH_audit.json] [--budget-secs N]
//! ```
//!
//! `--mean-life` gives replicas finite lives: the deletions that churn
//! generates are what stale-serve attackers swallow, so without it the
//! poisoned-answer columns are trivially zero. `--interval` is the
//! audit's per-key-per-node rate limit — the knob trading detection
//! latency against the audit's own hop bill.
//!
//! The grid runs twice (serial, then across the sweep pool) and the
//! binary asserts the rows are byte-identical — the audit's sampling
//! draws must not depend on the worker count. With `--budget-secs`, the
//! process exits non-zero if either pass exceeds the wall-clock budget.

use cup_bench::audit_bench::{render_json, run_audit_bench};
use cup_bench::cli::{parse_or_exit, value_of};
use cup_bench::Scale;
use cup_des::SimDuration;
use cup_simnet::par::default_workers;
use cup_workload::Scenario;

fn main() {
    let mut scale = Scale::Small;
    let mut attackers: Vec<u32> = vec![0, 2, 8];
    let mut interval: u64 = 30;
    let mut mean_life: Option<u64> = Some(500);
    let mut workers = default_workers();
    let mut seed: u64 = 42;
    let mut out_path = String::from("BENCH_audit.json");
    let mut budget_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let value = value_of(&mut it, "--scale");
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (use bench|small|paper)");
                    std::process::exit(2);
                });
            }
            "--attackers" => {
                attackers = value_of(&mut it, "--attackers")
                    .split(',')
                    .map(|s| parse_or_exit(s, "--attackers"))
                    .collect();
            }
            "--interval" => {
                interval = parse_or_exit(&value_of(&mut it, "--interval"), "--interval");
            }
            "--mean-life" => {
                mean_life = Some(parse_or_exit(
                    &value_of(&mut it, "--mean-life"),
                    "--mean-life",
                ));
            }
            "--workers" => workers = parse_or_exit(&value_of(&mut it, "--workers"), "--workers"),
            "--seed" => seed = parse_or_exit(&value_of(&mut it, "--seed"), "--seed"),
            "--out" => out_path = value_of(&mut it, "--out"),
            "--budget-secs" => {
                budget_secs = Some(parse_or_exit(
                    &value_of(&mut it, "--budget-secs"),
                    "--budget-secs",
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_audit [--scale bench|small|paper] [--attackers A,A,..] \
                     [--interval SECS] [--mean-life SECS] [--workers N] [--seed N] \
                     [--out PATH] [--budget-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if interval == 0 {
        eprintln!("--interval must be positive");
        std::process::exit(2);
    }

    let base = Scenario {
        seed,
        replica_mean_life: mean_life.map(SimDuration::from_secs),
        ..scale.base_scenario()
    };
    let report = run_audit_bench(&base, &attackers, interval, workers);

    for p in &report.points {
        println!(
            "attackers {:>3}  audit {:>5}  poisoned {:>6} ({:.4})  repairs {:>5}  \
             audits {:>6}  audit_hops {:>8}  hit {:.3}  exposure {:>6.1}s  \
             p99 {:>6.1}s  cost {:>9}",
            p.attackers,
            if p.audited { "on" } else { "off" },
            p.poisoned,
            p.poisoned_rate,
            p.repairs,
            p.audits,
            p.audit_hops,
            p.hit_rate,
            p.poisoned_exposure_secs,
            p.poisoned_age_p99_secs,
            p.total_cost,
        );
    }
    println!(
        "{} points  serial {:.2} s  parallel {:.2} s ({:.2} points/s, {:.2}x on {} workers)",
        report.points.len(),
        report.wall_serial.as_secs_f64(),
        report.wall_parallel.as_secs_f64(),
        report.parallel_points_per_sec(),
        report.speedup(),
        report.workers,
    );

    let json = render_json(&report, &base, interval, seed);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if let Some(budget) = budget_secs {
        let mut failed = false;
        for (name, wall) in [
            ("serial", report.wall_serial),
            ("parallel", report.wall_parallel),
        ] {
            if wall.as_secs() >= budget {
                eprintln!(
                    "BUDGET EXCEEDED: {name} sweep took {:.2} s (budget {budget} s)",
                    wall.as_secs_f64()
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
