//! Network-level cost accounting (the paper's §3.3 cost model).

use cup_core::obs::Hist;
use cup_core::stats::NodeStats;
use cup_faults::FaultCounters;

/// Hop counters accumulated while the simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Hops traveled by queries (upstream).
    pub query_hops: u64,
    /// Hops traveled by first-time updates (query responses, downstream).
    pub first_time_hops: u64,
    /// Hops traveled by refresh updates.
    pub refresh_hops: u64,
    /// Hops traveled by delete updates.
    pub delete_hops: u64,
    /// Hops traveled by append updates.
    pub append_hops: u64,
    /// Hops traveled by clear-bit control messages.
    pub clear_bit_hops: u64,
    /// Client queries answered (responses handed to local clients).
    pub client_responses: u64,
    /// Messages dropped because the destination had departed.
    pub dropped_messages: u64,
    /// Fault-plane drop/crash counters (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Client responses that served a globally dead replica (a deletion
    /// the cache had not yet learned about — only tracked while a fault
    /// plan is active, since loss is what makes deletes go missing).
    pub stale_answers: u64,
    /// Summed staleness age of those answers (µs since the deletion),
    /// the numerator of the mean recovery-latency metric.
    pub stale_age_micros: u64,
    /// Hops traveled by audit probes and replies. Kept out of the paper's
    /// §3.3 `total_cost` so CUP-vs-baseline numbers stay comparable; the
    /// audit bench reports it as the defense's own overhead.
    pub audit_hops: u64,
    /// Distribution of client-query latency: µs from the client posting
    /// the query to its `RespondClient` answer, one sample per response.
    /// Logical (virtual-clock) time in the DES and under the live
    /// runtime's virtual clock; wall µs under a wall clock.
    pub query_latency: Hist,
    /// Distribution of the staleness ages summed in `stale_age_micros`:
    /// one sample (µs since the deletion) per stale answer, so loss and
    /// Byzantine sweeps report recovery *tails*, not just the mean.
    pub stale_age_hist: Hist,
}

impl NetMetrics {
    /// Miss cost: "the total number of hops incurred by all misses, i.e.
    /// freshness and first-time misses" — queries up plus responses down.
    pub fn miss_cost(&self) -> u64 {
        self.query_hops + self.first_time_hops
    }

    /// CUP overhead: "the total number of hops traveled by all updates
    /// sent downstream plus the total number of hops traveled by all
    /// clear-bit messages upstream".
    pub fn overhead(&self) -> u64 {
        self.refresh_hops + self.delete_hops + self.append_hops + self.clear_bit_hops
    }

    /// Total cost = miss cost + overhead. For standard caching this
    /// equals the miss cost (no updates, no clear-bits).
    pub fn total_cost(&self) -> u64 {
        self.miss_cost() + self.overhead()
    }

    /// Maintenance update transmissions (everything except first-time).
    pub fn maintenance_hops(&self) -> u64 {
        self.refresh_hops + self.delete_hops + self.append_hops
    }
}

/// The outcome of one experiment run.
///
/// Every field is integral, so `==` is byte-exact — the comparison
/// `cup-testkit::assert_deterministic` relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExperimentResult {
    /// Network hop counters.
    pub net: NetMetrics,
    /// Aggregated per-node protocol counters.
    pub nodes: NodeStats,
    /// Maintenance updates delivered whose cost was recovered by a
    /// subsequent query in the receiver's virtual subtree (§3.1).
    pub justified_updates: u64,
    /// Total maintenance updates delivered (justification denominator).
    pub tracked_updates: u64,
    /// Number of overlay nodes at the start of the run.
    pub node_count: usize,
    /// Discrete events processed by the engine (the scheduler-throughput
    /// denominator reported by the benchmark harness).
    pub events: u64,
}

impl ExperimentResult {
    /// Total cost in hops.
    pub fn total_cost(&self) -> u64 {
        self.net.total_cost()
    }

    /// Miss cost in hops.
    pub fn miss_cost(&self) -> u64 {
        self.net.miss_cost()
    }

    /// Overhead in hops.
    pub fn overhead(&self) -> u64 {
        self.net.overhead()
    }

    /// Number of client-visible misses (first-time + freshness).
    pub fn misses(&self) -> u64 {
        self.nodes.client_misses()
    }

    /// Average hops per miss — the paper's query-latency metric ("query
    /// latency measured by average number of hops needed to handle a
    /// miss", Table 2).
    pub fn miss_latency(&self) -> f64 {
        let misses = self.misses();
        if misses == 0 {
            0.0
        } else {
            self.miss_cost() as f64 / misses as f64
        }
    }

    /// The "investment return per update push": saved miss cost relative
    /// to a baseline, per overhead hop (Table 2's
    /// `SavedMissOverheadRatio`).
    pub fn saved_miss_overhead_ratio(&self, baseline_miss_cost: u64) -> f64 {
        let overhead = self.overhead();
        if overhead == 0 {
            0.0
        } else {
            baseline_miss_cost.saturating_sub(self.miss_cost()) as f64 / overhead as f64
        }
    }

    /// Fraction of tracked maintenance updates that were justified.
    pub fn justified_fraction(&self) -> f64 {
        if self.tracked_updates == 0 {
            0.0
        } else {
            self.justified_updates as f64 / self.tracked_updates as f64
        }
    }

    /// Client cache-hit rate (hits per posted client query).
    pub fn hit_rate(&self) -> f64 {
        if self.nodes.client_queries == 0 {
            0.0
        } else {
            self.nodes.client_hits as f64 / self.nodes.client_queries as f64
        }
    }

    /// Fraction of client responses that served a globally dead replica
    /// (see [`NetMetrics::stale_answers`]).
    pub fn stale_rate(&self) -> f64 {
        if self.net.client_responses == 0 {
            0.0
        } else {
            self.net.stale_answers as f64 / self.net.client_responses as f64
        }
    }

    /// Mean staleness age of stale answers, in seconds — how long a lost
    /// deletion lingered before the answer was served. Zero when no
    /// answer was stale; the fault bench reports it as recovery latency.
    pub fn recovery_latency_secs(&self) -> f64 {
        if self.net.stale_answers == 0 {
            0.0
        } else {
            self.net.stale_age_micros as f64 / self.net.stale_answers as f64 / 1e6
        }
    }

    /// Messages the run dropped, for any reason: fault-plane drops plus
    /// deliveries to churned-away nodes.
    pub fn dropped_messages(&self) -> u64 {
        self.net.faults.dropped() + self.net.dropped_messages
    }

    /// Poisoned-answer rate: fraction of client responses that served a
    /// globally dead replica. Under behavior faults this is the attack's
    /// yield (the same counter `stale_rate` reads under crash faults —
    /// named separately because the cause is malice, not loss).
    pub fn poisoned_rate(&self) -> f64 {
        self.stale_rate()
    }

    /// Audit overhead in hops (probes + replies). The defense is paying
    /// for itself while this stays below the update savings CUP buys.
    pub fn audit_overhead(&self) -> u64 {
        self.net.audit_hops
    }

    /// Audit message overhead as a fraction of the paper's total cost —
    /// the "is the defense cheaper than the disease" ratio.
    pub fn audit_overhead_ratio(&self) -> f64 {
        let total = self.total_cost();
        if total == 0 {
            0.0
        } else {
            self.net.audit_hops as f64 / total as f64
        }
    }

    /// Audit repairs applied across all nodes (evict-and-refetch events).
    pub fn audit_repairs(&self) -> u64 {
        self.nodes.audit_repairs
    }

    /// Client-query latency quantile in µs (`permille`/1000, integer
    /// arithmetic; see [`NetMetrics::query_latency`]).
    pub fn query_latency_us(&self, permille: u32) -> u64 {
        self.net.query_latency.quantile(permille)
    }

    /// Staleness-age quantile in µs (`permille`/1000) — the tail
    /// companion of the mean [`ExperimentResult::recovery_latency_secs`].
    pub fn stale_age_us(&self, permille: u32) -> u64 {
        self.net.stale_age_hist.quantile(permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_sums() {
        let m = NetMetrics {
            query_hops: 10,
            first_time_hops: 8,
            refresh_hops: 5,
            delete_hops: 1,
            append_hops: 2,
            clear_bit_hops: 3,
            ..NetMetrics::default()
        };
        assert_eq!(m.miss_cost(), 18);
        assert_eq!(m.overhead(), 11);
        assert_eq!(m.total_cost(), 29);
        assert_eq!(m.maintenance_hops(), 8);
    }

    #[test]
    fn audit_hops_ride_outside_the_paper_cost_model() {
        let mut r = ExperimentResult::default();
        r.net.query_hops = 40;
        r.net.first_time_hops = 40;
        r.net.refresh_hops = 20;
        r.net.audit_hops = 10;
        // §3.3 total cost is unchanged by auditing …
        assert_eq!(r.total_cost(), 100);
        // … and the defense's own bill is reported separately.
        assert_eq!(r.audit_overhead(), 10);
        assert!((r.audit_overhead_ratio() - 0.1).abs() < 1e-12);
        r.net.client_responses = 200;
        r.net.stale_answers = 3;
        assert_eq!(r.poisoned_rate(), r.stale_rate());
    }

    #[test]
    fn latency_quantiles_read_from_the_histograms() {
        let mut r = ExperimentResult::default();
        assert_eq!(r.query_latency_us(999), 0);
        for us in [100u64, 200, 400, 100_000] {
            r.net.query_latency.record(us);
            r.net.stale_age_hist.record(us * 10);
        }
        // Bucket floors: within the histogram's 25% quantization below
        // the true value, never above it.
        let p50 = r.query_latency_us(500);
        assert!(p50 > 150 && p50 <= 200, "p50 {p50} off the 200µs sample");
        assert!(r.query_latency_us(999) >= p50);
        assert!(r.stale_age_us(999) >= r.stale_age_us(500));
        assert!(r.stale_age_us(500) > r.query_latency_us(500));
    }

    #[test]
    fn result_ratios() {
        let mut r = ExperimentResult::default();
        r.net.query_hops = 50;
        r.net.first_time_hops = 50;
        r.net.refresh_hops = 20;
        r.nodes.first_time_misses = 10;
        r.nodes.freshness_misses = 10;
        assert_eq!(r.miss_latency(), 5.0);
        // Baseline missed 300 hops; we missed 100 with 20 overhead.
        assert_eq!(r.saved_miss_overhead_ratio(300), 10.0);
        assert_eq!(r.justified_fraction(), 0.0);
        r.tracked_updates = 4;
        r.justified_updates = 3;
        assert_eq!(r.justified_fraction(), 0.75);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = ExperimentResult::default();
        assert_eq!(r.miss_latency(), 0.0);
        assert_eq!(r.saved_miss_overhead_ratio(100), 0.0);
    }
}
