//! Offline, API-compatible subset of [criterion.rs].
//!
//! The workspace builds without network access, so the real criterion
//! crate is unavailable; this shim implements exactly the surface the
//! `cup-bench` targets use. Measurements are simple wall-clock samples
//! (median-free mean plus minimum) printed to stdout — good enough to
//! compare runs by eye, with none of criterion's statistics, plotting,
//! or baseline machinery.
//!
//! [criterion.rs]: https://github.com/bheisler/criterion.rs

// Wall-clock sampling is this shim's purpose: exempt from clippy.toml's
// disallowed-methods wall.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time per sample; iteration counts adapt to it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards harness flags such as `--bench`; accept
        // and ignore anything flag-like, keep the first free argument as
        // a substring filter like the real harness does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id, sample_size, f);
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate how many iterations fit in one sample window.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {:>12} min {:>12} ({} samples)",
            format_duration(mean),
            format_duration(min),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn groups_prefix_benchmark_names() {
        let mut c = Criterion {
            filter: Some("never-matches-anything".into()),
            sample_size: 1,
        };
        let mut group = c.benchmark_group("g");
        // Filtered out: the closure must not run.
        group.bench_function("x", |_| panic!("filtered benchmarks must not run"));
        group.finish();
    }

    #[test]
    fn format_duration_scales_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
