//! Per-node protocol counters.
//!
//! These are local bookkeeping only (no network cost); the experiment
//! harness aggregates them across nodes and combines them with hop counts
//! measured at the network layer.

use crate::obs::Hist;

/// Counters maintained by one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Queries posted by local clients.
    pub client_queries: u64,
    /// Client queries answered immediately from fresh cache or the local
    /// directory (no miss).
    pub client_hits: u64,
    /// Client queries that missed because the key had never been cached.
    pub first_time_misses: u64,
    /// Client queries that missed because every cached entry had expired
    /// (the paper's *freshness misses*).
    pub freshness_misses: u64,
    /// Queries received from neighbors.
    pub neighbor_queries: u64,
    /// Queries absorbed by an already-pending first-time update (the
    /// query-channel coalescing win of §1).
    pub coalesced_queries: u64,
    /// Updates received from upstream.
    pub updates_received: u64,
    /// Updates dropped on arrival because they had already expired (§2.6
    /// case 3).
    pub updates_expired_on_arrival: u64,
    /// Update transmissions pushed downstream (per neighbor copy).
    pub updates_forwarded: u64,
    /// Clear-bit messages sent upstream.
    pub clear_bits_sent: u64,
    /// Clear-bit messages received from downstream.
    pub clear_bits_received: u64,
    /// Cut-off decisions that ended our subscription for some key.
    pub cutoffs: u64,
    /// Queries re-pushed after a pending-first-update timeout.
    pub pfu_retries: u64,
    /// Sampled-audit rounds this node opened (rate-limited per key).
    pub audits_started: u64,
    /// Audit probes this node answered for other auditors.
    pub audit_probes_served: u64,
    /// Audit replies this node received for its own rounds.
    pub audit_replies: u64,
    /// Audit repairs applied: rounds where a dissent quorum made this
    /// node evict condemned replicas and adopt the quorum's entries.
    pub audit_repairs: u64,
    /// Distribution of how long each retried Pending-First-Update flag
    /// had been stranded when the retry fired (µs since `pfu_since`) —
    /// the tail companion of the `pfu_retries` count.
    pub pfu_retry_age: Hist,
    /// Distribution of audit round-trips: µs from opening a sampled
    /// audit round to each reply of that round arriving back.
    pub audit_rtt: Hist,
}

impl NodeStats {
    /// Total client misses (first-time plus freshness).
    pub fn client_misses(&self) -> u64 {
        self.first_time_misses + self.freshness_misses
    }

    /// Adds another node's counters into this one (aggregation).
    pub fn merge(&mut self, other: &NodeStats) {
        self.client_queries += other.client_queries;
        self.client_hits += other.client_hits;
        self.first_time_misses += other.first_time_misses;
        self.freshness_misses += other.freshness_misses;
        self.neighbor_queries += other.neighbor_queries;
        self.coalesced_queries += other.coalesced_queries;
        self.updates_received += other.updates_received;
        self.updates_expired_on_arrival += other.updates_expired_on_arrival;
        self.updates_forwarded += other.updates_forwarded;
        self.clear_bits_sent += other.clear_bits_sent;
        self.clear_bits_received += other.clear_bits_received;
        self.cutoffs += other.cutoffs;
        self.pfu_retries += other.pfu_retries;
        self.audits_started += other.audits_started;
        self.audit_probes_served += other.audit_probes_served;
        self.audit_replies += other.audit_replies;
        self.audit_repairs += other.audit_repairs;
        self.pfu_retry_age.merge(&other.pfu_retry_age);
        self.audit_rtt.merge(&other.audit_rtt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_sum_and_merge() {
        let mut a = NodeStats {
            first_time_misses: 2,
            freshness_misses: 3,
            client_queries: 10,
            ..NodeStats::default()
        };
        assert_eq!(a.client_misses(), 5);
        let b = NodeStats {
            client_queries: 4,
            coalesced_queries: 1,
            ..NodeStats::default()
        };
        a.merge(&b);
        assert_eq!(a.client_queries, 14);
        assert_eq!(a.coalesced_queries, 1);
        assert_eq!(a.client_misses(), 5);
    }

    #[test]
    fn merge_folds_the_latency_histograms() {
        let mut a = NodeStats::default();
        a.pfu_retry_age.record(31_000_000);
        let mut b = NodeStats::default();
        b.pfu_retry_age.record(45_000_000);
        b.audit_rtt.record(900);
        a.merge(&b);
        assert_eq!(a.pfu_retry_age.count(), 2);
        assert_eq!(a.audit_rtt.count(), 1);
    }
}
