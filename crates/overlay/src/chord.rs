//! A Chord identifier ring with finger tables.
//!
//! The CUP paper lists Chord as an equally valid substrate (§2.2): all CUP
//! needs is deterministic bounded-hop routing toward a key's authority.
//! This implementation keeps the classic structure — nodes placed on a
//! 2⁶⁴ ring by hashing, each key owned by its *successor* node, greedy
//! routing via closest-preceding-finger — but maintains finger tables by
//! global recomputation on churn, which is exact and is all a simulation
//! needs (the paper's focus is cache maintenance, not routing-table
//! maintenance).

use std::collections::BTreeSet;

use cup_des::{KeyId, NodeId};

use crate::churn::{ChurnReport, NeighborChange};
use crate::hashing::{key_to_ring, node_to_ring};
use crate::traits::{Overlay, OverlayError};

/// Number of finger-table entries (ring is 2⁶⁴).
const FINGER_BITS: usize = 64;

/// One Chord participant.
#[derive(Debug, Clone)]
struct ChordNode {
    /// Position on the identifier ring.
    position: u64,
    /// Alive flag (dead nodes keep their slot; ids are never reused).
    alive: bool,
    /// Finger table: entry `i` is the first node at or after
    /// `position + 2^i`.
    fingers: Vec<NodeId>,
    /// The node immediately before us on the ring.
    predecessor: NodeId,
}

/// A Chord overlay.
#[derive(Debug, Clone)]
pub struct ChordOverlay {
    nodes: Vec<ChordNode>,
    /// Live nodes sorted by ring position: `(position, id)`.
    ring: Vec<(u64, NodeId)>,
}

/// Returns `true` if `x` lies in the half-open ring interval `(from, to]`.
fn in_interval_open_closed(from: u64, to: u64, x: u64) -> bool {
    if from < to {
        from < x && x <= to
    } else {
        // Wrapping interval.
        x > from || x <= to
    }
}

/// Returns `true` if `x` lies in the open ring interval `(from, to)`.
fn in_interval_open_open(from: u64, to: u64, x: u64) -> bool {
    if from < to {
        from < x && x < to
    } else {
        x > from || x < to
    }
}

impl ChordOverlay {
    /// Builds a ring of `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::TooFewNodes`] when `n` is zero.
    pub fn build(n: usize) -> Result<Self, OverlayError> {
        if n == 0 {
            return Err(OverlayError::TooFewNodes);
        }
        let mut overlay = ChordOverlay {
            nodes: (0..n)
                .map(|i| ChordNode {
                    position: node_to_ring(i as u32),
                    alive: true,
                    fingers: Vec::new(),
                    predecessor: NodeId(0),
                })
                .collect(),
            ring: Vec::new(),
        };
        overlay.rebuild();
        Ok(overlay)
    }

    /// Adds one node to the ring, returning the neighbor-set deltas.
    pub fn join(&mut self) -> ChurnReport {
        let before = self.snapshot_neighbors();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(ChordNode {
            position: node_to_ring(id.0),
            alive: true,
            fingers: Vec::new(),
            predecessor: NodeId(0),
        });
        self.rebuild();
        ChurnReport {
            joined: Some(id),
            departed: None,
            counterpart: Some(self.successor_of_position(self.nodes[id.index()].position, id)),
            neighbor_changes: self.diff_neighbors(&before),
        }
    }

    /// Removes `node` from the ring.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::NodeNotAlive`] if the node is not alive, or
    /// [`OverlayError::TooFewNodes`] when it is the last node.
    pub fn leave(&mut self, node: NodeId) -> Result<ChurnReport, OverlayError> {
        if !self.is_alive(node) {
            return Err(OverlayError::NodeNotAlive(node));
        }
        if self.ring.len() <= 1 {
            return Err(OverlayError::TooFewNodes);
        }
        let before = self.snapshot_neighbors();
        // The departing node's keys are taken over by its successor.
        let takeover = self.successor_of_position(self.nodes[node.index()].position, node);
        self.nodes[node.index()].alive = false;
        self.rebuild();
        Ok(ChurnReport {
            joined: None,
            departed: Some(node),
            counterpart: Some(takeover),
            neighbor_changes: self.diff_neighbors(&before),
        })
    }

    /// Recomputes the sorted ring, every finger table, and predecessors.
    fn rebuild(&mut self) {
        self.ring = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (n.position, NodeId(i as u32)))
            .collect();
        self.ring.sort_unstable();
        let live_ids: Vec<NodeId> = self.ring.iter().map(|&(_, id)| id).collect();
        for &id in &live_ids {
            let pos = self.nodes[id.index()].position;
            let fingers = (0..FINGER_BITS)
                .map(|i| {
                    let target = pos.wrapping_add(1u64.checked_shl(i as u32).unwrap_or(0));
                    self.successor_of_position(target.wrapping_sub(1), id)
                })
                .collect();
            // `successor_of_position(x)` below returns the first node with
            // position strictly after x, so pass `target - 1` to make the
            // bound inclusive.
            self.nodes[id.index()].fingers = fingers;
            self.nodes[id.index()].predecessor = self.predecessor_of(id);
        }
    }

    /// First live node whose position is strictly after `pos` on the ring
    /// (wrapping); `_hint` is unused but keeps call sites explicit about
    /// who is asking.
    ///
    /// Binary search over the sorted ring: at 100k nodes the previous
    /// linear scan made every finger-table rebuild O(n²).
    fn successor_of_position(&self, pos: u64, _hint: NodeId) -> NodeId {
        debug_assert!(!self.ring.is_empty());
        // First index with position > pos; among equal positions this is
        // the lowest id, exactly what the linear scan returned.
        let idx = self.ring.partition_point(|&(p, _)| p <= pos);
        match self.ring.get(idx) {
            Some(&(_, id)) => id,
            None => self.ring[0].1,
        }
    }

    /// The live node immediately preceding `node` on the ring.
    fn predecessor_of(&self, node: NodeId) -> NodeId {
        let pos = self.nodes[node.index()].position;
        let idx = self
            .ring
            .binary_search(&(pos, node))
            .expect("live node must be on the ring");
        let prev = if idx == 0 {
            self.ring.len() - 1
        } else {
            idx - 1
        };
        self.ring[prev].1
    }

    fn snapshot_neighbors(&self) -> Vec<(NodeId, BTreeSet<NodeId>)> {
        self.nodes()
            .into_iter()
            .map(|id| (id, self.neighbors(id).into_iter().collect()))
            .collect()
    }

    fn diff_neighbors(&self, before: &[(NodeId, BTreeSet<NodeId>)]) -> Vec<NeighborChange> {
        let mut changes = Vec::new();
        // Nodes present before: diff old vs new.
        for (id, old) in before {
            let new: BTreeSet<NodeId> = if self.is_alive(*id) {
                self.neighbors(*id).into_iter().collect()
            } else {
                BTreeSet::new()
            };
            let added: Vec<NodeId> = new.difference(old).copied().collect();
            let removed: Vec<NodeId> = old.difference(&new).copied().collect();
            if !added.is_empty() || !removed.is_empty() {
                changes.push(NeighborChange {
                    node: *id,
                    added,
                    removed,
                });
            }
        }
        // Newly joined nodes (not in `before`).
        for id in self.nodes() {
            if before.iter().any(|(b, _)| *b == id) {
                continue;
            }
            let added: Vec<NodeId> = self.neighbors(id);
            if !added.is_empty() {
                changes.push(NeighborChange {
                    node: id,
                    added,
                    removed: Vec::new(),
                });
            }
        }
        changes
    }
}

impl Overlay for ChordOverlay {
    fn len(&self) -> usize {
        self.ring.len()
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.index()).is_some_and(|n| n.alive)
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.ring.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    fn authority(&self, key: KeyId) -> NodeId {
        assert!(!self.ring.is_empty(), "empty overlay has no authority");
        // A key is owned by the first node at or after its ring position.
        self.successor_of_position(key_to_ring(key).wrapping_sub(1), NodeId(0))
    }

    fn next_hop(&self, from: NodeId, key: KeyId) -> Result<Option<NodeId>, OverlayError> {
        if !self.is_alive(from) {
            return Err(OverlayError::NodeNotAlive(from));
        }
        let k = key_to_ring(key);
        let me = &self.nodes[from.index()];
        // We own the key if it lies in (predecessor, us].
        let pred_pos = self.nodes[me.predecessor.index()].position;
        if self.ring.len() == 1 || in_interval_open_closed(pred_pos, me.position, k) {
            return Ok(None);
        }
        // If the key lies between us and our successor, the successor owns
        // it.
        let succ = me.fingers[0];
        let succ_pos = self.nodes[succ.index()].position;
        if in_interval_open_closed(me.position, succ_pos, k) {
            return Ok(Some(succ));
        }
        // Otherwise forward to the closest finger preceding the key.
        let mut best = succ;
        for &f in me.fingers.iter().rev() {
            let fpos = self.nodes[f.index()].position;
            if in_interval_open_open(me.position, k, fpos) {
                best = f;
                break;
            }
        }
        Ok(Some(best))
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        if !self.is_alive(node) {
            return Vec::new();
        }
        let me = &self.nodes[node.index()];
        let mut set: BTreeSet<NodeId> = me.fingers.iter().copied().collect();
        set.insert(me.predecessor);
        set.remove(&node);
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_places_all_nodes() {
        let overlay = ChordOverlay::build(32).unwrap();
        assert_eq!(overlay.len(), 32);
        assert_eq!(overlay.nodes().len(), 32);
    }

    #[test]
    fn authority_is_successor_of_key() {
        let overlay = ChordOverlay::build(16).unwrap();
        for k in 0..50 {
            let key = KeyId(k);
            let auth = overlay.authority(key);
            let kpos = key_to_ring(key);
            let apos = overlay.nodes[auth.index()].position;
            // No live node lies strictly between the key and its authority.
            for id in overlay.nodes() {
                let pos = overlay.nodes[id.index()].position;
                assert!(
                    !in_interval_open_open(kpos.wrapping_sub(1), apos, pos) || pos == apos,
                    "node {id} at {pos} is closer successor than {auth}"
                );
            }
        }
    }

    #[test]
    fn routing_reaches_authority_in_log_hops() {
        let overlay = ChordOverlay::build(256).unwrap();
        for k in 0..60 {
            let key = KeyId(k);
            let auth = overlay.authority(key);
            let path = overlay.route(NodeId(3), key).unwrap();
            assert_eq!(*path.last().unwrap(), auth);
            assert!(
                path.len() <= 20,
                "path for {key} too long: {} hops",
                path.len() - 1
            );
        }
    }

    #[test]
    fn routing_from_authority_is_empty() {
        let overlay = ChordOverlay::build(8).unwrap();
        let key = KeyId(5);
        let auth = overlay.authority(key);
        assert_eq!(overlay.next_hop(auth, key).unwrap(), None);
    }

    #[test]
    fn churn_preserves_routability() {
        let mut overlay = ChordOverlay::build(32).unwrap();
        overlay.leave(NodeId(4)).unwrap();
        overlay.leave(NodeId(9)).unwrap();
        let report = overlay.join();
        assert!(report.joined.is_some());
        for k in 0..20 {
            let key = KeyId(k);
            let start = *overlay.nodes().first().unwrap();
            let path = overlay.route(start, key).unwrap();
            assert_eq!(*path.last().unwrap(), overlay.authority(key));
        }
    }

    #[test]
    fn leave_moves_authority_to_successor() {
        let mut overlay = ChordOverlay::build(16).unwrap();
        // Find a key and remove its authority; ownership must move to the
        // takeover node named in the report.
        let key = KeyId(3);
        let auth = overlay.authority(key);
        let report = overlay.leave(auth).unwrap();
        assert_eq!(overlay.authority(key), report.counterpart.unwrap());
    }

    #[test]
    fn single_node_owns_everything() {
        let overlay = ChordOverlay::build(1).unwrap();
        for k in 0..10 {
            assert_eq!(overlay.authority(KeyId(k)), NodeId(0));
            assert_eq!(overlay.next_hop(NodeId(0), KeyId(k)).unwrap(), None);
        }
    }

    #[test]
    fn neighbors_exclude_self_and_are_live() {
        let mut overlay = ChordOverlay::build(16).unwrap();
        overlay.leave(NodeId(7)).unwrap();
        for id in overlay.nodes() {
            let nbs = overlay.neighbors(id);
            assert!(!nbs.contains(&id));
            assert!(nbs.iter().all(|&n| overlay.is_alive(n)));
        }
    }

    #[test]
    fn interval_logic() {
        assert!(in_interval_open_closed(5, 10, 7));
        assert!(in_interval_open_closed(5, 10, 10));
        assert!(!in_interval_open_closed(5, 10, 5));
        // Wrapping interval (from > to).
        assert!(in_interval_open_closed(10, 5, 12));
        assert!(in_interval_open_closed(10, 5, 3));
        assert!(!in_interval_open_closed(10, 5, 7));
        assert!(!in_interval_open_open(5, 10, 10));
    }
}
